"""The shared backend dispatch registry (repro.engine.dispatch).

Covers the family registry (the three facades register their ``backend``
switch choices once), the :class:`BackendDispatcher` fallback contract the
facades delegate to, and the numpy-independence of the dispatch layer
(importing it must not load the vectorized engine modules).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.bist import POWER_BACKENDS, BistController
from repro.bist.controller import BistError
from repro.core.session import BACKENDS, SessionError, TestSession
from repro.engine.dispatch import (
    BACKEND_CHOICES,
    BackendDispatcher,
    EngineError,
    backend_choices,
    backend_families,
    register_backend_family,
)
from repro.faults import FAULT_BACKENDS, FaultSimulator
from repro.faults.simulator import FaultSimulationError
from repro.sram.geometry import ArrayGeometry


# ----------------------------------------------------------------------
# Family registry
# ----------------------------------------------------------------------
def test_facade_families_are_registered():
    families = backend_families()
    assert {"session", "faults", "bist"} <= set(families)
    assert families["session"] == BACKEND_CHOICES
    assert families["faults"] == BACKEND_CHOICES
    assert families["bist"] == BACKEND_CHOICES


def test_facade_constants_come_from_the_registry():
    assert BACKENDS == backend_choices("session")
    assert FAULT_BACKENDS == backend_choices("faults")
    assert POWER_BACKENDS == backend_choices("bist")
    assert BACKENDS == FAULT_BACKENDS == POWER_BACKENDS == BACKEND_CHOICES


def test_reregistration_is_idempotent_but_conflicts_raise():
    assert register_backend_family("session") == BACKEND_CHOICES
    with pytest.raises(ValueError):
        register_backend_family("session", ("reference",))
    with pytest.raises(KeyError):
        backend_choices("no-such-family")


# ----------------------------------------------------------------------
# BackendDispatcher
# ----------------------------------------------------------------------
class _StubError(Exception):
    pass


def _dispatcher(factory, error=_StubError):
    return BackendDispatcher("session", factory, error=error)


def test_dispatcher_engine_is_lazy_and_cached():
    builds = []
    dispatcher = _dispatcher(lambda: builds.append(1) or "engine")
    assert not dispatcher.engine_built
    assert not builds  # nothing built before first use
    assert dispatcher.engine == "engine"
    assert dispatcher.engine == "engine"
    assert builds == [1]  # one build, then cached
    dispatcher.invalidate()
    assert dispatcher.engine == "engine"
    assert builds == [1, 1]


def test_dispatcher_validate_raises_the_facade_error():
    dispatcher = _dispatcher(lambda: "engine")
    assert dispatcher.validate("auto") == "auto"
    with pytest.raises(_StubError, match="unknown backend 'bogus'"):
        dispatcher.validate("bogus")


def test_dispatcher_reference_never_builds_the_engine():
    dispatcher = _dispatcher(lambda: pytest.fail("must not build"))
    result = dispatcher.call("reference",
                             vectorized=lambda engine: "vectorized",
                             reference=lambda: "reference")
    assert result == "reference"


def test_dispatcher_auto_falls_back_on_engine_error():
    dispatcher = _dispatcher(lambda: "engine")

    def failing(engine):
        raise EngineError("unsupported")

    assert dispatcher.call("auto", vectorized=failing,
                           reference=lambda: "fallback") == "fallback"
    with pytest.raises(EngineError):
        dispatcher.call("vectorized", vectorized=failing,
                        reference=lambda: "fallback")


def test_dispatcher_invalidate_on_fallback_drops_the_engine():
    builds = []
    dispatcher = _dispatcher(lambda: builds.append(1) or "engine")

    def failing(engine):
        raise EngineError("unsupported")

    dispatcher.call("auto", vectorized=failing, reference=lambda: None,
                    invalidate_on_fallback=True)
    assert not dispatcher.engine_built
    dispatcher.call("auto", vectorized=lambda engine: "ok",
                    reference=lambda: None)
    assert builds == [1, 1]  # rebuilt after the invalidating fallback


def test_dispatcher_other_exceptions_propagate_even_on_auto():
    dispatcher = _dispatcher(lambda: "engine")

    def broken(engine):
        raise RuntimeError("a real bug, not an engine rejection")

    with pytest.raises(RuntimeError):
        dispatcher.call("auto", vectorized=broken, reference=lambda: None)


# ----------------------------------------------------------------------
# Facade integration: each facade raises its own error type
# ----------------------------------------------------------------------
def test_facades_validate_backend_with_their_own_error():
    geometry = ArrayGeometry(4, 4)
    with pytest.raises(SessionError, match="unknown backend"):
        TestSession(geometry, backend="bogus")
    with pytest.raises(FaultSimulationError, match="unknown backend"):
        FaultSimulator(geometry, backend="bogus")
    with pytest.raises(BistError, match="unknown backend"):
        BistController(geometry, backend="bogus")


def test_session_reports_last_backend_used():
    geometry = ArrayGeometry(4, 16)
    session = TestSession(geometry, backend="vectorized")
    assert session.last_backend_used is None
    from repro.march import get_algorithm
    from repro.sram.memory import OperatingMode

    session.run(get_algorithm("MATS+"), OperatingMode.FUNCTIONAL)
    assert session.last_backend_used == "vectorized"
    session.run(get_algorithm("MATS+"), OperatingMode.FUNCTIONAL,
                backend="reference")
    assert session.last_backend_used == "reference"


def test_last_backend_used_is_thread_local():
    # One facade shared by a worker pool: each thread's run must see its
    # own provenance, not whichever run happened to finish last globally.
    import threading

    from repro.march import get_algorithm
    from repro.sram.memory import OperatingMode

    geometry = ArrayGeometry(4, 16)
    session = TestSession(geometry, backend="vectorized")
    algorithm = get_algorithm("MATS+")
    session.run(algorithm, OperatingMode.FUNCTIONAL)
    assert session.last_backend_used == "vectorized"

    seen = {}

    def probe():
        seen["before"] = session.last_backend_used  # fresh thread: unset
        session.run(algorithm, OperatingMode.FUNCTIONAL, backend="reference")
        seen["after"] = session.last_backend_used

    worker = threading.Thread(target=probe)
    worker.start()
    worker.join()
    assert seen == {"before": None, "after": "reference"}
    # ...and the worker's run did not clobber the main thread's view.
    assert session.last_backend_used == "vectorized"


def test_facade_provenance_is_thread_local_everywhere():
    # BistController and FaultSimulator carry the same per-thread seam.
    import threading

    geometry = ArrayGeometry(4, 16)
    controller = BistController(geometry, backend="vectorized")
    simulator = FaultSimulator(geometry, backend="reference")
    assert controller.last_backend_used is None
    assert simulator.last_backend_used is None
    controller.last_backend_used = "vectorized"
    simulator.last_backend_used = "reference"

    observed = {}

    def probe():
        observed["controller"] = controller.last_backend_used
        observed["simulator"] = simulator.last_backend_used

    worker = threading.Thread(target=probe)
    worker.start()
    worker.join()
    assert observed == {"controller": None, "simulator": None}
    assert controller.last_backend_used == "vectorized"
    assert simulator.last_backend_used == "reference"


# ----------------------------------------------------------------------
# numpy independence of the dispatch layer
# ----------------------------------------------------------------------
def test_dispatch_imports_without_loading_vectorized_modules():
    """Catching EngineError / consulting the registry must not need numpy."""
    code = (
        "import sys\n"
        "from repro.engine import EngineError, backend_families\n"
        "from repro.engine.dispatch import BackendDispatcher\n"
        "import repro.sweep.journal\n"
        "loaded = [m for m in sys.modules\n"
        "          if m in ('numpy', 'repro.engine.vectorized',\n"
        "                   'repro.engine.fault_campaign',\n"
        "                   'repro.engine.power_campaign')]\n"
        "assert not loaded, f'eagerly loaded: {loaded}'\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run([sys.executable, "-c", code], env=env,
                               capture_output=True, text=True)
    assert completed.returncode == 0, completed.stderr
