"""The batched grid strategy: record equivalence, resolution, fallbacks.

``strategy="batched"`` evaluates a sweep grid through per-geometry stacked
flat-kernel passes (:class:`repro.engine.grid.BatchedGridEngine`) instead
of per-case work units.  Its contract is strict: **every** record — power,
PRR and coverage alike — must be field-for-field identical to what
``strategy="percase"`` measures for the same grid (``elapsed_s``, a
wall-clock observation, is the one exempt field).  These tests pin that
contract across the full standard library, both planners (both operating
modes of every scenario), several array sizes and all three record kinds,
plus the strategy-resolution rules, the journal's run-metadata header and
the per-case fallback for scenarios the stacked pass cannot represent.
"""

from __future__ import annotations

import json

import pytest

from repro.march.library import PAPER_TABLE1_ALGORITHMS
from repro.sweep.journal import RunJournal, load_journal
from repro.sweep.runner import (
    CoverageCase,
    PrrCase,
    SweepCase,
    SweepError,
    SweepRunner,
    coverage_grid,
    prr_grid,
    sweep_grid,
)

from differential import (
    assert_identical_records,
    run_both_strategies as run_both,
)

ALGORITHMS = [algorithm.name for algorithm in PAPER_TABLE1_ALGORITHMS]
SIZES = ["8x16", "16x64"]


# ----------------------------------------------------------------------
# Field-for-field record equivalence, per record kind
# ----------------------------------------------------------------------
def test_power_records_identical_across_strategies():
    """The whole library x two orders x two sizes, both planners per case."""
    cases = sweep_grid(SIZES, ALGORITHMS,
                       orders=("row-major", "column-major"),
                       backends=("vectorized",))
    assert_identical_records(*run_both(cases))


def test_prr_records_identical_across_strategies():
    """The whole library through the BIST path on two sizes."""
    cases = prr_grid(SIZES, ALGORITHMS, backend="vectorized", seed=3)
    assert_identical_records(*run_both(cases))


def test_coverage_records_identical_across_strategies():
    """Coverage campaigns ride the batched strategy per-case, records
    unchanged."""
    cases = coverage_grid(["8x8", "16x16"], ["MATS+", "March C-"], sample=2)
    assert_identical_records(*run_both(cases))


def test_mixed_grid_identical_and_in_input_order():
    """A grid mixing all three kinds and both backends: identical records,
    emitted (and journaled) in input order despite group stacking."""
    cases = [
        PrrCase(rows=8, columns=64, algorithm="MATS+", backend="vectorized"),
        SweepCase(rows=8, columns=16, algorithm="March C-",
                  backend="vectorized"),
        CoverageCase(rows=8, columns=8, algorithm="MATS+",
                     include_coupling=False, sample=2),
        SweepCase(rows=8, columns=16, algorithm="MATS+", backend="auto"),
        PrrCase(rows=8, columns=64, algorithm="March G", backend="auto"),
        SweepCase(rows=8, columns=16, algorithm="MATS+", backend="reference"),
    ]
    percase, batched = run_both(cases)
    assert_identical_records(percase, batched)


def test_unsupported_low_power_falls_back_per_case():
    """The snake order's low-power run is not bulk-replayable: under
    backend='auto' the per-case path measures it reference+vectorized, and
    the batched strategy must reroute and report exactly the same."""
    cases = sweep_grid(["8x16"], ["March C-", "MATS+"], orders=("snake",),
                       backends=("auto",))
    percase, batched = run_both(cases)
    assert_identical_records(percase, batched)
    assert {record.backend_used for record in batched} == \
        {"reference+vectorized"}


# ----------------------------------------------------------------------
# Strategy resolution
# ----------------------------------------------------------------------
def _vectorized_cases(count: int = 2):
    return sweep_grid(["8x8"], ALGORITHMS[:count], backends=("vectorized",))


def test_strategy_validation():
    with pytest.raises(SweepError, match="unknown strategy"):
        SweepRunner(_vectorized_cases(), strategy="turbo")


def test_auto_resolution_rules():
    cases = _vectorized_cases()
    assert SweepRunner(cases).resolve_strategy() == "batched"
    assert SweepRunner(cases, processes=1).resolve_strategy() == "batched"
    assert SweepRunner(cases, processes=4).resolve_strategy() == "percase"
    assert SweepRunner(cases, strategy="percase").resolve_strategy() == \
        "percase"
    # A grid with per-case-only scenarios keeps the parallel default...
    mixed = cases + coverage_grid(["8x8"], ["MATS+"], sample=2)
    assert SweepRunner(mixed).resolve_strategy() == "percase"
    # ...unless the caller pinned sequential execution.
    assert SweepRunner(mixed, processes=1).resolve_strategy() == "batched"
    # Reference-backend power cases are not stackable either.
    reference = sweep_grid(["8x8"], ["MATS+"], backends=("reference",))
    assert SweepRunner(reference).resolve_strategy() == "percase"


def test_batched_without_numpy_falls_back(monkeypatch):
    import importlib.util

    real_find_spec = importlib.util.find_spec
    monkeypatch.setattr(importlib.util, "find_spec",
                        lambda name, *args: None if name == "numpy"
                        else real_find_spec(name, *args))
    runner = SweepRunner(_vectorized_cases(), strategy="batched")
    assert runner.resolve_strategy() == "percase"
    assert SweepRunner(_vectorized_cases()).resolve_strategy() == "percase"


def test_run_records_strategy_used(tmp_path):
    runner = SweepRunner(_vectorized_cases(), strategy="batched")
    assert runner.strategy_used is None
    runner.run()
    assert runner.strategy_used == "batched"


# ----------------------------------------------------------------------
# Journal header
# ----------------------------------------------------------------------
def test_fresh_journal_records_strategy_header(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _vectorized_cases()
    SweepRunner(cases, strategy="batched", journal=path).run()
    header = RunJournal(path).read_header()
    assert header == {"strategy_requested": "batched",
                      "strategy_used": "batched",
                      "cases": len(cases), "pending": len(cases)}
    # The header is metadata: entry loading and resume ignore it.
    assert len(load_journal(path)) == len(cases)
    resumed = SweepRunner(cases, strategy="batched",
                          journal=path).run(resume=True)
    assert len(resumed) == len(cases)


def test_resume_keeps_the_original_header(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _vectorized_cases()
    SweepRunner(cases, journal=path).run()
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:2]) + "\n")  # header + first case
    SweepRunner(cases, strategy="percase", processes=1,
                journal=path).run(resume=True)
    header = RunJournal(path).read_header()
    assert header is not None and header["cases"] == len(cases)
    assert len(load_journal(path)) == len(cases)
    # Exactly one header line, still the leading one.
    body = path.read_text().splitlines()
    headers = [line for line in body
               if line.startswith('{"format": "repro-sweep-journal-header"')]
    assert headers == [body[0]]


def test_headerless_journals_still_resume(tmp_path):
    """Journals written before the header existed resume unchanged."""
    path = tmp_path / "run.jsonl"
    cases = _vectorized_cases()
    SweepRunner(cases, journal=path).run()
    lines = [line for line in path.read_text().splitlines()
             if not line.startswith('{"format": "repro-sweep-journal-header"')]
    path.write_text("\n".join(lines) + "\n")
    assert RunJournal(path).read_header() is None
    resumed = SweepRunner(cases, journal=path).run(resume=True)
    assert len(resumed) == len(cases)
    records = [json.loads(line)["record"]
               for line in path.read_text().splitlines()
               if line.startswith('{"case"')]
    assert len(records) == len(cases)


def test_measure_batch_requires_a_vectorized_controller():
    """measure_batch is the stacked vectorized API: a reference-backend
    controller must refuse instead of silently running the vectorized
    campaign behind the dispatch contract's back."""
    from repro.bist import BistController
    from repro.bist.controller import BistError
    from repro.march.library import get_algorithm
    from repro.sram import ArrayGeometry

    controller = BistController(ArrayGeometry(8, 16), backend="reference")
    with pytest.raises(BistError, match="reference backend"):
        controller.measure_batch([(get_algorithm("MATS+"), True)])
