"""Regression pins for the real findings the lint pass surfaced.

Every fix the RPR rules forced on ``src/repro`` is pinned here by
behaviour, not just by the lint gate staying clean:

* RPR002 — the backend-family registry and the kernel-tier state
  (``_TIER_CACHE``, ``_DEFAULT_KERNEL``) are lock-guarded and survive
  concurrent hammering;
* RPR003 — sweep JSON/CSV exports and the serve cache publish
  atomically: a failing ``os.replace`` leaves the previous artifact
  intact and no temp litter behind;
* RPR006 — ``TechnologyParameters.as_dict`` exports every declared
  field (the drifted width/temperature fields included).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import fields

import pytest

from repro import durable
from repro.circuit.technology import TechnologyParameters
from repro.engine import vectorized
from repro.engine.dispatch import (backend_choices, backend_families,
                                   register_backend_family)
from repro.serve.cache import ResultCache
from repro.sweep.runner import SweepResult


def hammer(workers):
    """Run every callable concurrently; re-raise the first failure."""
    errors = []

    def guarded(work):
        try:
            work()
        except BaseException as exc:  # noqa: BLE001 - surface to the test
            errors.append(exc)

    threads = [threading.Thread(target=guarded, args=(work,))
               for work in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestRegistryLocking:
    def test_concurrent_family_registration(self):
        families = [f"scratch-family-{i}" for i in range(8)]

        def register(name):
            for _ in range(200):
                register_backend_family(name, ("reference", "auto"))

        try:
            hammer([lambda name=name: register(name) for name in families])
            snapshot = backend_families()
            for name in families:
                assert snapshot[name] == ("reference", "auto")
                assert backend_choices(name) == ("reference", "auto")
        finally:
            from repro.engine import dispatch

            with dispatch._REGISTRY_LOCK:
                for name in families:
                    dispatch._FAMILIES.pop(name, None)

    def test_conflicting_registration_still_raises(self):
        register_backend_family("scratch-conflict", ("a", "b"))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend_family("scratch-conflict", ("a", "c"))
        finally:
            from repro.engine import dispatch

            with dispatch._REGISTRY_LOCK:
                dispatch._FAMILIES.pop("scratch-conflict", None)


class TestKernelStateLocking:
    def test_concurrent_probe_and_reset(self):
        def probe():
            for _ in range(100):
                vectorized.kernel_module("jit")
                vectorized.kernel_available("gpu")

        def reset():
            for _ in range(100):
                vectorized.reset_kernel_state()

        try:
            hammer([probe, probe, reset, probe])
        finally:
            vectorized.reset_kernel_state()

    def test_default_kernel_pins_and_restores(self):
        before = vectorized._DEFAULT_KERNEL
        with vectorized.default_kernel("segmented"):
            assert vectorized._DEFAULT_KERNEL == "segmented"
            with vectorized.default_kernel("flat"):
                assert vectorized._DEFAULT_KERNEL == "flat"
            assert vectorized._DEFAULT_KERNEL == "segmented"
        assert vectorized._DEFAULT_KERNEL == before

    def test_default_kernel_concurrent_swaps_stay_valid(self):
        # Interleaved contexts may restore in any order; the lock's job
        # is that every observed value is a real pinned tier, never a
        # torn/stale read.
        def pin(tier):
            for _ in range(100):
                with vectorized.default_kernel(tier):
                    assert vectorized._DEFAULT_KERNEL in ("flat", "segmented")

        try:
            hammer([lambda: pin("segmented"), lambda: pin("flat")])
        finally:
            with vectorized._KERNEL_STATE_LOCK:
                vectorized._DEFAULT_KERNEL = "flat"


class TestAtomicExports:
    def test_atomic_write_replaces_and_cleans_up(self, tmp_path):
        target = tmp_path / "artifact.json"
        target.write_text("old")
        durable.atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_replace_preserves_previous_content(self, tmp_path,
                                                       monkeypatch):
        target = tmp_path / "artifact.json"
        target.write_text("previous")

        def boom(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(durable.os, "replace", boom)
        with pytest.raises(OSError, match="disk gone"):
            durable.atomic_write_text(target, "next")
        assert target.read_text() == "previous"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_to_json_is_atomic(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.json"
        SweepResult([]).to_json(path)
        assert json.loads(path.read_text())["format"] == "repro-sweep"

        def boom(src, dst):
            raise OSError("torn")

        monkeypatch.setattr(durable.os, "replace", boom)
        with pytest.raises(OSError, match="torn"):
            SweepResult([]).to_json(path)
        assert json.loads(path.read_text())["format"] == "repro-sweep"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_to_csv_is_atomic(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.csv"
        SweepResult([]).to_csv(path)
        header = path.read_text().splitlines()[0]
        assert "rows" in header

        monkeypatch.setattr(durable.os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(
                                OSError("torn")))
        with pytest.raises(OSError, match="torn"):
            SweepResult([]).to_csv(path)
        assert path.read_text().splitlines()[0] == header

    def test_cache_store_survives_failed_publish(self, tmp_path,
                                                 monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        digest = "ab" * 32
        cache.store(digest, {"case_id": "x"}, "power", {"case_id": "x"})
        assert cache.get(digest) is not None

        monkeypatch.setattr(durable.os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(
                                OSError("full")))
        with pytest.raises(OSError, match="full"):
            cache.store(digest, {"case_id": "y"}, "power", {"case_id": "y"})
        entry = cache.get(digest)
        assert entry is not None
        assert entry["record"] == {"case_id": "x"}


class TestTechnologyExportDrift:
    def test_as_dict_exports_every_field(self):
        technology = TechnologyParameters(name="t")
        payload = technology.as_dict()
        assert set(payload) == {spec.name
                                for spec in fields(TechnologyParameters)}
        assert payload["temperature_c"] == technology.temperature_c
        assert payload["write_driver_width_um"] == \
            technology.write_driver_width_um
