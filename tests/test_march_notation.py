"""Unit tests for March operations, elements, algorithms, parser and library."""

import pytest

from repro.march import (
    ALGORITHM_LIBRARY,
    AddressingDirection,
    MARCH_CM,
    MARCH_G,
    MARCH_SR,
    MARCH_SS,
    MATS_PLUS,
    MarchAlgorithm,
    MarchElement,
    MarchOperation,
    MarchSyntaxError,
    MarchValidationError,
    OperationKind,
    PAPER_TABLE1_ALGORITHMS,
    R0, R1, W0, W1,
    all_algorithms,
    get_algorithm,
    parse_march,
    parse_march_detailed,
    round_trip,
)


class TestOperations:
    def test_notation_roundtrip(self):
        for token in ("r0", "r1", "w0", "w1"):
            assert MarchOperation.from_notation(token).to_notation() == token

    def test_case_insensitive(self):
        assert MarchOperation.from_notation("R1") == R1

    def test_invalid_tokens(self):
        for bad in ("x0", "r2", "read", "", "r"):
            with pytest.raises(MarchSyntaxError):
                MarchOperation.from_notation(bad)

    def test_inverted(self):
        assert W0.inverted() == W1
        assert R1.inverted() == R0

    def test_kind_flags(self):
        assert R0.is_read and not R0.is_write
        assert W1.is_write and not W1.is_read


class TestElements:
    def test_direction_symbols(self):
        assert AddressingDirection.from_symbol("⇑") is AddressingDirection.UP
        assert AddressingDirection.from_symbol("d") is AddressingDirection.DOWN
        assert AddressingDirection.from_symbol("⇕") is AddressingDirection.ANY
        with pytest.raises(MarchSyntaxError):
            AddressingDirection.from_symbol("x")

    def test_counts_and_flags(self):
        element = MarchElement(AddressingDirection.UP, (R0, W1, R1))
        assert element.operation_count == 3
        assert element.read_count == 2
        assert element.write_count == 1
        assert not element.is_initialising
        assert element.final_written_value() == 1

    def test_initialising_element(self):
        element = MarchElement(AddressingDirection.ANY, (W0,))
        assert element.is_initialising
        assert element.final_written_value() == 0

    def test_empty_element_rejected(self):
        with pytest.raises(MarchSyntaxError):
            MarchElement(AddressingDirection.UP, ())

    def test_inverted_data_and_direction_change(self):
        element = MarchElement(AddressingDirection.UP, (R0, W1))
        inverted = element.inverted_data()
        assert inverted.operations == (R1, W0)
        down = element.with_direction(AddressingDirection.DOWN)
        assert down.direction is AddressingDirection.DOWN


class TestTable1Statistics:
    """The #elm / #oper / #read / #write columns of the paper's Table 1."""

    @pytest.mark.parametrize("algorithm,elements,operations,reads,writes", [
        (MARCH_CM, 6, 10, 5, 5),
        (MARCH_SS, 6, 22, 13, 9),
        (MATS_PLUS, 3, 5, 2, 3),
        (MARCH_SR, 6, 14, 8, 6),
        (MARCH_G, 7, 23, 10, 13),
    ])
    def test_counts_match_paper(self, algorithm, elements, operations, reads, writes):
        assert algorithm.element_count == elements
        assert algorithm.operation_count == operations
        assert algorithm.read_count == reads
        assert algorithm.write_count == writes
        assert algorithm.read_count + algorithm.write_count == algorithm.operation_count

    def test_paper_list_order(self):
        assert [a.name for a in PAPER_TABLE1_ALGORITHMS] == [
            "March C-", "March SS", "MATS+", "March SR", "March G"]


class TestAlgorithmValidation:
    def test_library_algorithms_are_consistent(self):
        for algorithm in all_algorithms():
            algorithm.validate()
            assert algorithm.is_valid()

    def test_inconsistent_expectation_rejected(self):
        bad = parse_march("{⇕(w0); ⇑(r1,w1)}", name="bad")
        with pytest.raises(MarchValidationError):
            bad.validate()
        assert not bad.is_valid()

    def test_read_before_write_rejected(self):
        bad = parse_march("{⇑(r0,w0)}", name="bad")
        with pytest.raises(MarchValidationError):
            bad.validate()

    def test_cycles_for(self):
        assert MARCH_CM.cycles_for(1024) == 10 * 1024
        with pytest.raises(MarchValidationError):
            MARCH_CM.cycles_for(0)

    def test_complexity_string(self):
        assert MARCH_CM.complexity_string() == "10N"

    def test_inverted_data_still_valid(self):
        MARCH_CM.with_inverted_data().validate()

    def test_empty_algorithm_rejected(self):
        with pytest.raises(MarchValidationError):
            MarchAlgorithm(name="empty", elements=())


class TestParser:
    def test_ascii_and_unicode_equivalent(self):
        unicode_version = parse_march("{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}")
        ascii_version = parse_march("{b(w0); u(r0,w1); d(r1,w0)}")
        assert unicode_version.to_notation() == ascii_version.to_notation()

    def test_braces_optional(self):
        assert parse_march("⇕(w0); ⇑(r0)").element_count == 2

    def test_delay_markers_ignored_but_counted(self):
        result = parse_march_detailed("{⇕(w0); Del; ⇕(r0)}")
        assert result.algorithm.element_count == 2
        assert result.ignored_delays == 1

    def test_round_trip_of_library(self):
        for algorithm in all_algorithms():
            reparsed = round_trip(algorithm)
            assert reparsed.to_notation() == algorithm.to_notation()
            assert reparsed.operation_count == algorithm.operation_count

    @pytest.mark.parametrize("bad", [
        "", "{}", "{⇑()}", "{⇑(r0,w1)", "{x(r0)}", "{⇑(r0, q1)}",
    ])
    def test_malformed_notation_rejected(self, bad):
        with pytest.raises(MarchSyntaxError):
            parse_march(bad)

    def test_summary_row(self):
        row = MARCH_CM.summary_row()
        assert row["algorithm"] == "March C-"
        assert row["operations"] == 10


class TestLibraryLookup:
    def test_get_algorithm_by_loose_name(self):
        assert get_algorithm("march c-") is MARCH_CM
        assert get_algorithm("MATS+") is MATS_PLUS
        assert get_algorithm("marchss") is MARCH_SS

    def test_c_and_c_minus_are_distinct(self):
        assert get_algorithm("March C").operation_count == 11
        assert get_algorithm("March C-").operation_count == 10

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            get_algorithm("March ZZZ")

    def test_library_has_reasonable_breadth(self):
        assert len(ALGORITHM_LIBRARY) >= 15
