"""Integration-level tests of the behavioural SRAM memory model."""

import pytest

from repro.power.sources import PowerSource
from repro.sram import (
    ArrayGeometry,
    MemoryError_,
    OperatingMode,
    PrechargePlan,
    SRAM,
    checkerboard_background,
    solid_background,
)


def make_memory(geometry, mode=OperatingMode.FUNCTIONAL, background=0, **kwargs):
    memory = SRAM(geometry, mode=mode, **kwargs)
    memory.apply_background(solid_background(background))
    return memory


class TestFunctionalAccess:
    def test_write_then_read_roundtrip(self, small_geometry):
        memory = make_memory(small_geometry)
        memory.write(2, 3, 1)
        outcome = memory.read(2, 3)
        assert outcome.value == 1
        assert outcome.read_correct
        assert not outcome.read_hazard

    def test_background_then_read_all(self, tiny_geometry):
        memory = make_memory(tiny_geometry, background=1)
        for row in range(tiny_geometry.rows):
            for word in range(tiny_geometry.words_per_row):
                assert memory.read(row, word).value == 1

    def test_peek_poke_do_not_consume_cycles_or_energy(self, tiny_geometry):
        memory = make_memory(tiny_geometry)
        memory.poke(1, 1, 1)
        assert memory.peek(1, 1) == 1
        assert memory.cycle == 0
        assert memory.ledger.total_energy() == 0.0

    def test_cycle_counter_and_energy_accumulate(self, tiny_geometry):
        memory = make_memory(tiny_geometry)
        memory.write(0, 0, 1)
        memory.read(0, 0)
        assert memory.cycle == 2
        assert memory.ledger.total_energy() > 0.0
        assert memory.average_power() > 0.0

    def test_out_of_range_access(self, tiny_geometry):
        memory = make_memory(tiny_geometry)
        with pytest.raises(ValueError):
            memory.read(tiny_geometry.rows, 0)

    def test_invalid_write_value(self, tiny_geometry):
        memory = make_memory(tiny_geometry)
        with pytest.raises(MemoryError_):
            memory.write(0, 0, 2)

    def test_restricted_plan_rejected_in_functional_mode(self, tiny_geometry):
        memory = make_memory(tiny_geometry)
        with pytest.raises(MemoryError_):
            memory.read(0, 0, plan=PrechargePlan(enabled_columns=frozenset({1})))

    def test_reset_clears_state(self, tiny_geometry):
        memory = make_memory(tiny_geometry)
        memory.write(0, 0, 1)
        memory.reset()
        assert memory.cycle == 0
        assert memory.ledger.total_energy() == 0.0


class TestFunctionalPowerBehaviour:
    def test_every_cycle_stresses_all_unselected_columns(self, small_geometry):
        memory = make_memory(small_geometry)
        memory.read(0, 0)
        assert memory.counters.full_res_column_cycles == small_geometry.columns - 1
        breakdown = memory.energy_breakdown()
        assert breakdown[PowerSource.PRECHARGE_UNSELECTED] > 0
        assert breakdown[PowerSource.CELL_RES] > 0

    def test_cell_res_three_orders_below_precharge_res(self, small_geometry):
        memory = make_memory(small_geometry)
        memory.read(0, 0)
        breakdown = memory.energy_breakdown()
        ratio = breakdown[PowerSource.PRECHARGE_UNSELECTED] / breakdown[PowerSource.CELL_RES]
        assert ratio == pytest.approx(1000.0, rel=0.01)

    def test_write_costs_more_than_read(self, small_geometry):
        memory = make_memory(small_geometry)
        read_energy = memory.read(0, 0).energy
        write_energy = memory.write(0, 1, 1).energy
        assert write_energy > read_energy

    def test_wider_array_spends_more_on_unselected_precharge(self):
        narrow = make_memory(ArrayGeometry(rows=8, columns=8))
        wide = make_memory(ArrayGeometry(rows=8, columns=64))
        narrow.read(0, 0)
        wide.read(0, 0)
        assert (wide.energy_breakdown()[PowerSource.PRECHARGE_UNSELECTED]
                > narrow.energy_breakdown()[PowerSource.PRECHARGE_UNSELECTED])

    def test_pa_property_matches_technology(self, small_geometry, tech):
        memory = make_memory(small_geometry)
        expected = tech.vdd * tech.res_equilibrium_current * memory.clock.operation_duration
        assert memory.res_energy_per_column_cycle == pytest.approx(expected)


class TestLowPowerMode:
    def lpt_plan(self, enabled=(), full_restore=False):
        return PrechargePlan(enabled_columns=frozenset(enabled),
                             full_restore=full_restore)

    def test_only_enabled_columns_sustain_res(self, small_geometry):
        memory = make_memory(small_geometry, mode=OperatingMode.LOW_POWER_TEST)
        memory.read(0, 0, plan=self.lpt_plan(enabled={1}))
        assert memory.counters.full_res_column_cycles == 1
        assert memory.counters.floating_column_cycles == small_geometry.columns - 2

    def test_lpt_cycle_cheaper_than_functional_cycle(self, wide_geometry):
        functional = make_memory(wide_geometry)
        low_power = make_memory(wide_geometry, mode=OperatingMode.LOW_POWER_TEST)
        functional_energy = functional.read(0, 0).energy
        low_power_energy = low_power.read(0, 0, plan=self.lpt_plan(enabled={1})).energy
        assert low_power_energy < functional_energy

    def test_floating_columns_discharge_over_time(self, small_geometry, tech):
        memory = make_memory(small_geometry, mode=OperatingMode.LOW_POWER_TEST)
        # walk along row 0 so column 7 floats for a while
        for word in range(4):
            memory.read(0, word, plan=self.lpt_plan(enabled={word + 1}))
        # column 7 has been floating since cycle 0 with a '0' cell attached
        v_bl, v_blb = memory.columns[7].voltages_at(memory.cycle)
        assert min(v_bl, v_blb) < tech.vdd
        assert max(v_bl, v_blb) == pytest.approx(tech.vdd)

    def test_full_restore_recharges_everything(self, small_geometry, tech):
        memory = make_memory(small_geometry, mode=OperatingMode.LOW_POWER_TEST)
        for word in range(small_geometry.words_per_row - 1):
            memory.read(0, word, plan=self.lpt_plan(enabled={word + 1}))
        last = small_geometry.words_per_row - 1
        memory.read(0, last, plan=self.lpt_plan(enabled=set(), full_restore=True))
        assert memory.counters.full_restores == 1
        breakdown = memory.energy_breakdown()
        assert breakdown[PowerSource.ROW_TRANSITION_RESTORE] > 0
        for column in memory.columns:
            v_bl, v_blb = column.voltages_at(memory.cycle)
            assert v_bl == pytest.approx(tech.vdd)
            assert v_blb == pytest.approx(tech.vdd)

    def test_row_transition_without_restore_causes_faulty_swaps(self, small_geometry):
        memory = make_memory(small_geometry, mode=OperatingMode.LOW_POWER_TEST)
        memory.apply_background(checkerboard_background())
        # Traverse row 0 but "forget" the restoration cycle at the end.
        for word in range(small_geometry.words_per_row):
            nxt = {word + 1} if word + 1 < small_geometry.words_per_row else set()
            memory.write(0, word, 0, plan=self.lpt_plan(enabled=nxt))
        outcome = memory.read(1, 0, plan=self.lpt_plan(enabled={1}))
        assert outcome.faulty_swaps, "skipping the restoration cycle must corrupt row 1"

    def test_row_transition_with_restore_is_safe(self, small_geometry):
        memory = make_memory(small_geometry, mode=OperatingMode.LOW_POWER_TEST)
        memory.apply_background(checkerboard_background())
        last = small_geometry.words_per_row - 1
        for word in range(small_geometry.words_per_row):
            nxt = {word + 1} if word < last else set()
            memory.write(0, word, 0,
                         plan=self.lpt_plan(enabled=nxt, full_restore=(word == last)))
        outcome = memory.read(1, 0, plan=self.lpt_plan(enabled={1}))
        assert not outcome.faulty_swaps
        assert outcome.value == checkerboard_background()(1, 0)

    def test_control_and_lptest_energy_booked(self, small_geometry):
        memory = make_memory(small_geometry, mode=OperatingMode.LOW_POWER_TEST)
        plan = PrechargePlan(enabled_columns=frozenset({1}), control_energy=1e-15,
                             lptest_toggles=1)
        memory.read(0, 0, plan=plan)
        breakdown = memory.energy_breakdown()
        assert breakdown[PowerSource.CONTROL_LOGIC] == pytest.approx(1e-15)
        assert breakdown[PowerSource.LPTEST_DRIVER] > 0

    def test_unknown_column_in_plan_rejected(self, tiny_geometry):
        memory = make_memory(tiny_geometry, mode=OperatingMode.LOW_POWER_TEST)
        with pytest.raises(MemoryError_):
            memory.read(0, 0, plan=self.lpt_plan(enabled={99}))

    def test_switching_back_to_functional_recharges_floating_columns(self, small_geometry, tech):
        memory = make_memory(small_geometry, mode=OperatingMode.LOW_POWER_TEST)
        memory.read(0, 0, plan=self.lpt_plan(enabled={1}))
        memory.set_mode(OperatingMode.FUNCTIONAL)
        memory.read(0, 1)
        for column in memory.columns:
            v_bl, v_blb = column.voltages_at(memory.cycle)
            assert v_bl == pytest.approx(tech.vdd, abs=1e-6)
            assert v_blb == pytest.approx(tech.vdd, abs=1e-6)


class TestWordOrientedExtension:
    def test_word_oriented_access(self):
        geometry = ArrayGeometry(rows=8, columns=16, bits_per_word=4)
        memory = SRAM(geometry)
        memory.apply_background(solid_background(0))
        memory.write(2, 1, 0b1010)
        assert memory.read(2, 1).value == 0b1010
        assert memory.peek(2, 1) == 0b1010

    def test_word_oriented_res_counts_exclude_selected_word(self):
        geometry = ArrayGeometry(rows=8, columns=16, bits_per_word=4)
        memory = SRAM(geometry)
        memory.apply_background(solid_background(0))
        memory.read(0, 0)
        assert memory.counters.full_res_column_cycles == geometry.columns - 4

    def test_word_value_range_checked(self):
        geometry = ArrayGeometry(rows=4, columns=8, bits_per_word=4)
        memory = SRAM(geometry)
        memory.apply_background(solid_background(0))
        with pytest.raises(MemoryError_):
            memory.write(0, 0, 16)
