"""Documentation hygiene: every public symbol carries a docstring.

The docs (README, architecture notes, paper mapping) lean on the package's
docstrings; this test keeps them from rotting by requiring that everything
exported from :mod:`repro` and its subsystem packages documents itself.
Plain data constants and type aliases are exempt — they are documented by
``#:`` comments at their definition site instead.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.circuit",
    "repro.sram",
    "repro.power",
    "repro.march",
    "repro.faults",
    "repro.core",
    "repro.bist",
    "repro.analysis",
    "repro.engine",
    "repro.sweep",
]


def _documentable(obj) -> bool:
    """Only classes and functions can carry their own docstring."""
    return inspect.isclass(obj) or inspect.isroutine(obj)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert inspect.getdoc(module), f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_every_public_symbol_has_docstring(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{module_name} defines no __all__"
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if not _documentable(obj):
            continue
        doc = inspect.getdoc(obj)
        if not doc or not doc.strip():
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name} exports undocumented symbols: {sorted(undocumented)}")


def test_backend_switch_is_documented():
    """The TestSession backend switch is part of the public contract."""
    from repro import TestSession

    doc = inspect.getdoc(TestSession)
    assert doc is not None
    for token in ("backend", "reference", "vectorized", "auto"):
        assert token in doc, f"TestSession docstring does not describe {token!r}"
