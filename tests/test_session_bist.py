"""Integration tests: test sessions, mode comparisons (Table 1 path) and BIST."""

import pytest

from repro.bist import BistController, BistError, BistOrder, Comparator
from repro.core import LowPowerTestPlanner, SessionError, TestSession, compare_modes
from repro.faults import FaultInjection, StuckAtFault, TransitionFault
from repro.march import MARCH_CM, MATS_PLUS, MATS
from repro.power import PowerSource
from repro.sram import (
    ArrayGeometry,
    CellFactory,
    OperatingMode,
    SRAM,
    checkerboard_background,
    solid_background,
)


class FaultyCellFactory(CellFactory):
    """Cell factory that plants a stuck-at-0 cell at a fixed coordinate."""

    def __init__(self, location, tech=None):
        super().__init__(tech=tech)
        self.location = location

    def create(self, row, column):
        cell = super().create(row, column)
        if (row, column) == self.location:
            original_write = cell.write

            def stuck_write(value):
                original_write(0)
            cell.write = stuck_write  # type: ignore[assignment]
        return cell


class TestTestSession:
    def test_both_modes_pass_on_fault_free_memory(self, wide_geometry):
        session = TestSession(wide_geometry)
        comparison = session.compare_modes(MATS_PLUS)
        assert comparison.functional.passed
        assert comparison.low_power.passed
        assert comparison.low_power.read_hazards == 0
        assert comparison.low_power.faulty_swaps == []

    def test_low_power_mode_reduces_average_power(self, wide_geometry):
        comparison = compare_modes(wide_geometry, MATS_PLUS)
        assert comparison.prr > 0.15
        assert comparison.low_power.average_power < comparison.functional.average_power

    def test_prr_larger_on_wider_arrays(self):
        narrow = compare_modes(ArrayGeometry(rows=8, columns=16), MATS_PLUS)
        wide = compare_modes(ArrayGeometry(rows=8, columns=128), MATS_PLUS)
        assert wide.prr > narrow.prr

    def test_cycle_counts_match_algorithm_length(self, wide_geometry):
        session = TestSession(wide_geometry)
        result = session.run(MATS_PLUS, OperatingMode.FUNCTIONAL)
        assert result.cycles == MATS_PLUS.operation_count * wide_geometry.word_count
        assert result.energy_per_cycle > 0

    def test_low_power_run_books_all_overhead_sources(self, wide_geometry):
        session = TestSession(wide_geometry)
        result = session.run(MATS_PLUS, OperatingMode.LOW_POWER_TEST)
        for source in (PowerSource.ROW_TRANSITION_RESTORE, PowerSource.LPTEST_DRIVER,
                       PowerSource.CONTROL_LOGIC):
            assert result.energy_by_source.get(source, 0.0) > 0.0, source
        upper = MATS_PLUS.element_count * wide_geometry.rows
        assert upper - (MATS_PLUS.element_count - 1) <= result.full_restores <= upper

    def test_functional_mode_dominated_by_unselected_precharge(self, wide_geometry):
        session = TestSession(wide_geometry)
        result = session.run(MATS_PLUS, OperatingMode.FUNCTIONAL)
        assert result.source_fraction(PowerSource.PRECHARGE_UNSELECTED) > 0.3

    def test_data_background_independence(self, wide_geometry):
        # Section 3: the restoration rule preserves data-background freedom.
        session = TestSession(wide_geometry, background=checkerboard_background())
        result = session.run(MARCH_CM, OperatingMode.LOW_POWER_TEST)
        assert result.passed
        assert result.faulty_swaps == []

    def test_low_power_planner_requires_low_power_mode(self, wide_geometry):
        session = TestSession(wide_geometry)
        with pytest.raises(SessionError):
            session.run(MATS_PLUS, OperatingMode.FUNCTIONAL,
                        planner=LowPowerTestPlanner(wide_geometry))

    def test_table1_rows_structure(self, wide_geometry):
        session = TestSession(ArrayGeometry(rows=4, columns=16))
        rows = session.table1([MATS_PLUS])
        assert rows[0]["Algorithm"] == "MATS+"
        assert rows[0]["# oper"] == 5
        assert rows[0]["PRR"].endswith("%")

    def test_faulty_memory_detected_in_both_modes(self):
        geometry = ArrayGeometry(rows=8, columns=16)
        session = TestSession(geometry)
        for mode in (OperatingMode.FUNCTIONAL, OperatingMode.LOW_POWER_TEST):
            memory = SRAM(geometry, mode=mode,
                          cell_factory=FaultyCellFactory((3, 5)))
            memory.apply_background(solid_background(0))
            result = session.run(MARCH_CM, mode, memory=memory)
            assert not result.passed
            assert any(m.row == 3 and m.word == 5 for m in result.mismatches)


class TestBist:
    def test_bist_pass_on_fault_free_memory(self, wide_geometry):
        controller = BistController(wide_geometry)
        result = controller.run(MATS_PLUS, low_power=True)
        assert result.passed
        assert result.cycles == MATS_PLUS.operation_count * wide_geometry.word_count
        assert "PASS" in result.describe()

    def test_bist_low_power_saves_energy(self, wide_geometry):
        controller = BistController(wide_geometry)
        functional = controller.run(MATS_PLUS, low_power=False)
        low_power = controller.run(MATS_PLUS, low_power=True)
        assert low_power.total_energy < functional.total_energy

    def test_bist_refuses_low_power_with_fast_row_order(self, wide_geometry):
        controller = BistController(wide_geometry, order=BistOrder.FAST_ROW)
        with pytest.raises(BistError):
            controller.run(MATS_PLUS, low_power=True)
        # functional mode is still fine
        assert controller.run(MATS_PLUS, low_power=False).passed

    def test_bist_detects_injected_fault_in_low_power_mode(self):
        geometry = ArrayGeometry(rows=8, columns=16)
        controller = BistController(geometry)
        memory = SRAM(geometry, mode=OperatingMode.LOW_POWER_TEST,
                      cell_factory=FaultyCellFactory((2, 7)))
        memory.apply_background(solid_background(0))
        result = controller.run(MARCH_CM, low_power=True, memory=memory)
        assert not result.passed
        assert result.failures > 0
        first = result.failure_log[0]
        assert (first.row, first.word) == (2, 7)

    def test_bist_suite_runs_multiple_algorithms(self, small_geometry):
        controller = BistController(small_geometry)
        results = controller.run_suite([MATS, MATS_PLUS], low_power=True)
        assert [r.algorithm for r in results] == ["MATS", "MATS+"]
        assert all(r.passed for r in results)

    def test_bist_result_reports_the_planner(self, wide_geometry):
        controller = BistController(wide_geometry)
        low_power = controller.run(MATS_PLUS, low_power=True)
        functional = controller.run(MATS_PLUS, low_power=False)
        assert low_power.planner == "LowPowerTestPlanner"
        assert functional.planner == "FunctionalModePlanner"
        assert low_power.backend == functional.backend == "reference"
        assert "LowPowerTestPlanner" in low_power.describe()
        # The attribution survives the vectorized engine unchanged.
        vectorized = controller.run(MATS_PLUS, low_power=True,
                                    backend="vectorized")
        assert vectorized.planner == "LowPowerTestPlanner"
        assert vectorized.backend == "vectorized"

    def test_bist_suite_accepts_backend_override(self, small_geometry):
        controller = BistController(small_geometry)
        results = controller.run_suite([MATS, MATS_PLUS], low_power=True,
                                       backend="vectorized")
        assert all(r.backend == "vectorized" for r in results)
        assert controller.last_backend_used == "vectorized"

    def test_address_generator_counter_stepping(self, small_geometry):
        from repro.bist import AddressGenerator
        generator = AddressGenerator(small_geometry)
        assert generator.first() == 0
        assert generator.next(0) == 1
        assert generator.next(small_geometry.word_count - 1) is None
        assert generator.first(ascending=False) == small_geometry.word_count - 1
        assert generator.next(0, ascending=False) is None
        assert generator.coordinate(1) == (0, 1)
        assert generator.supports_low_power_mode()

    def test_comparator_log_is_bounded(self):
        comparator = Comparator(log_limit=2)
        for i in range(5):
            comparator.check(cycle=i, row=0, word=i, expected=0, observed=1)
        assert comparator.failures == 5
        assert len(comparator.log) == 2
        assert comparator.first_failure().word == 0
        comparator.reset()
        assert comparator.passed
