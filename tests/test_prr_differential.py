"""Measured-vs-analytical PRR differential suite (the paper's Table 1 claims).

Three layers of pinning, across the *whole* algorithm library:

* **backend equivalence** — the vectorized BIST power campaign must measure
  what the cycle-accurate behavioural memory measures: per-source energy
  totals up to floating-point summation order, identical cycle counts,
  pass/fail verdicts and comparator logs (the latter exercised through the
  backends directly with deliberately inconsistent March strings, since
  every validated algorithm passes on a fault-free memory by construction);
* **analytical agreement** — the measured PRR must track the Section 5
  closed-form model: within the reconciliation tolerance of the extended
  variant on bit-oriented arrays, and always inside the analytical bracket
  ``[extended, paper equation]`` (the extended variant keeps the secondary
  overheads and the next-column recharge term the paper's equation omits);
* **campaign records** — :func:`repro.sweep.run_prr_case` must report the
  same bracket verdicts and planner/backend attribution the controller
  produced.
"""

from __future__ import annotations

import pytest

from repro.bist import BistController, BistError, POWER_BACKENDS
from repro.bist.backend import ReferencePowerBackend
from repro.core.prr import AnalyticalPowerModel
from repro.engine import VectorizedPowerCampaign
from repro.march.library import PAPER_TABLE1_ALGORITHMS, all_algorithms
from repro.march.ordering import RowMajorOrder
from repro.march.parser import parse_march
from repro.sram import ArrayGeometry, checkerboard_background
from repro.sweep import PRR_BRACKET_SLACK, PrrCase, run_prr_case

from differential import REL_TOL, assert_bist_equivalent, measured_prr

#: Reconciliation tolerance (PRR fraction) between the measured PRR and the
#: extended analytical variant on bit-oriented arrays — the same two
#: percentage points the paper-scale bench holds Table 1 to.
ANALYTICAL_TOLERANCE = 0.02

EQUIVALENCE_GEOMETRY = ArrayGeometry(rows=8, columns=32)

DIFFERENTIAL_GEOMETRIES = (
    ArrayGeometry(rows=8, columns=64),
    ArrayGeometry(rows=16, columns=128),
    ArrayGeometry(rows=8, columns=32, bits_per_word=2),
)

LIBRARY_IDS = [algorithm.name for algorithm in all_algorithms()]


# ----------------------------------------------------------------------
# Backend equivalence on the whole library
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("algorithm", all_algorithms(), ids=LIBRARY_IDS)
    @pytest.mark.parametrize("low_power", [False, True],
                             ids=["functional", "low-power"])
    def test_energy_and_verdict_match_reference(self, algorithm, low_power):
        reference = BistController(EQUIVALENCE_GEOMETRY).run(
            algorithm, low_power=low_power)
        vectorized = BistController(EQUIVALENCE_GEOMETRY,
                                    backend="vectorized").run(
            algorithm, low_power=low_power)
        label = f"{algorithm.name}/{'lpt' if low_power else 'functional'}"
        assert_bist_equivalent(reference, vectorized, label)
        assert reference.backend == "reference"
        assert vectorized.backend == "vectorized"

    def test_measured_prr_identical_across_backends(self):
        for algorithm in PAPER_TABLE1_ALGORITHMS:
            reference = measured_prr(
                BistController(EQUIVALENCE_GEOMETRY, backend="reference"),
                algorithm)
            vectorized = measured_prr(
                BistController(EQUIVALENCE_GEOMETRY, backend="vectorized"),
                algorithm)
            assert vectorized == pytest.approx(reference, rel=REL_TOL), \
                algorithm.name

    def test_last_backend_used_reports_the_engine(self):
        controller = BistController(EQUIVALENCE_GEOMETRY, backend="auto")
        assert controller.last_backend_used is None
        result = controller.run(PAPER_TABLE1_ALGORITHMS[0])
        assert result.backend == controller.last_backend_used == "vectorized"
        result = controller.run(PAPER_TABLE1_ALGORITHMS[0], backend="reference")
        assert result.backend == controller.last_backend_used == "reference"

    def test_vectorized_rejects_custom_memory(self):
        controller = BistController(EQUIVALENCE_GEOMETRY, backend="vectorized")
        memory = controller.build_memory(low_power=True)
        with pytest.raises(BistError):
            controller.run(PAPER_TABLE1_ALGORITHMS[0], memory=memory)

    def test_auto_runs_custom_memory_on_reference_path(self):
        controller = BistController(EQUIVALENCE_GEOMETRY, backend="auto")
        memory = controller.build_memory(low_power=True)
        result = controller.run(PAPER_TABLE1_ALGORITHMS[0], memory=memory)
        assert result.passed
        assert result.backend == controller.last_backend_used == "reference"
        assert memory.cycle == result.cycles  # the supplied memory really ran

    def test_comparator_stays_coherent_across_backends(self):
        """The public comparator always reflects the most recent run."""
        controller = BistController(EQUIVALENCE_GEOMETRY)
        controller.comparator.check(cycle=0, row=0, word=0,
                                    expected=0, observed=1)  # stale failure
        result = controller.run(PAPER_TABLE1_ALGORITHMS[0],
                                backend="vectorized")
        assert result.passed
        assert controller.comparator.passed
        assert controller.comparator.log == []

    def test_reconfigured_generator_is_followed(self):
        """Replacing the address generator must change what actually runs."""
        from repro.bist import AddressGenerator, BistOrder

        controller = BistController(EQUIVALENCE_GEOMETRY, backend="vectorized")
        wordline = controller.run(PAPER_TABLE1_ALGORITHMS[0], low_power=False)
        controller.address_generator = AddressGenerator(
            EQUIVALENCE_GEOMETRY, BistOrder.FAST_ROW)
        with pytest.raises(BistError):
            controller.run(PAPER_TABLE1_ALGORITHMS[0], low_power=True)
        fast_row = controller.run(PAPER_TABLE1_ALGORITHMS[0], low_power=False)
        # Fast-row functional runs recharge the word line on every access,
        # so the measured energy must rise if the new order really ran.
        assert fast_row.total_energy > wordline.total_energy

    def test_unknown_backend_rejected(self):
        with pytest.raises(BistError):
            BistController(EQUIVALENCE_GEOMETRY, backend="warp-drive")
        with pytest.raises(BistError):
            BistController(EQUIVALENCE_GEOMETRY).run(
                PAPER_TABLE1_ALGORITHMS[0], backend="warp-drive")

    def test_auto_falls_back_when_numpy_unavailable(self, monkeypatch):
        import repro.engine.vectorized as vectorized

        monkeypatch.setattr(vectorized, "np", None)
        controller = BistController(EQUIVALENCE_GEOMETRY, backend="auto")
        result = controller.run(PAPER_TABLE1_ALGORITHMS[0])
        assert result.passed
        assert result.backend == "reference"
        with pytest.raises(Exception):
            BistController(EQUIVALENCE_GEOMETRY, backend="vectorized").run(
                PAPER_TABLE1_ALGORITHMS[0])


# ----------------------------------------------------------------------
# Comparator outcomes (pass/fail + bounded log), exercised through the
# backends directly: validated algorithms always pass on a fault-free
# memory, so the mismatch machinery needs deliberately inconsistent runs.
# ----------------------------------------------------------------------
class TestComparatorDifferential:
    INCONSISTENT = (
        "{⇑(r0); ⇕(w0)}",              # reads the initial background
        "{⇑(w0); ⇑(r1,w1); ⇓(r0)}",    # uniform wrong expectations
        "{⇕(w1); ⇓(r1,r0,w0,r1)}",     # mixed hits and misses per element
    )

    @pytest.mark.parametrize("notation", INCONSISTENT)
    @pytest.mark.parametrize("background", [None, checkerboard_background()],
                             ids=["solid0", "checkerboard"])
    def test_failure_counts_and_logs_match_reference(self, notation, background):
        geometry = ArrayGeometry(rows=8, columns=16)
        order = RowMajorOrder(geometry)
        algorithm = parse_march(notation, name=notation)
        reference = ReferencePowerBackend(geometry).measure(
            algorithm, order, low_power=True, background=background)
        campaign = VectorizedPowerCampaign(geometry)
        failures, log = campaign.comparator_outcomes(
            campaign.trace_for(algorithm, order), background)
        assert failures == reference.failures
        assert (failures == 0) == reference.passed
        assert len(log) == len(reference.failure_log)
        for expected, observed in zip(reference.failure_log, log):
            assert (observed.cycle, observed.row, observed.word,
                    observed.expected, observed.observed) == \
                (expected.cycle, expected.row, expected.word,
                 expected.expected, expected.observed)

    def test_log_stays_bounded(self):
        geometry = ArrayGeometry(rows=8, columns=16)
        order = RowMajorOrder(geometry)
        algorithm = parse_march("{⇑(w0); ⇑(r1)}", name="all-fail")
        campaign = VectorizedPowerCampaign(geometry)
        failures, log = campaign.comparator_outcomes(
            campaign.trace_for(algorithm, order), None, log_limit=7)
        assert failures == geometry.word_count
        assert len(log) == 7


# ----------------------------------------------------------------------
# Measured vs. analytical: tolerance and bracketing across the library
# ----------------------------------------------------------------------
class TestMeasuredVsAnalytical:
    @pytest.mark.parametrize("geometry", DIFFERENTIAL_GEOMETRIES,
                             ids=lambda g: g.describe())
    def test_library_prr_tracks_the_analytical_band(self, geometry):
        controller = BistController(geometry, backend="vectorized")
        model = AnalyticalPowerModel(geometry)
        for algorithm in all_algorithms():
            measured = measured_prr(controller, algorithm)
            plain = model.prr(algorithm)
            bracket = model.prr(algorithm, include_secondary=True,
                                include_next_column_recharge=True)
            label = f"{algorithm.name} @ {geometry.describe()}"
            # The extended variant brackets the measurement from below, the
            # paper's equation from above.
            assert bracket - PRR_BRACKET_SLACK <= measured, label
            assert measured <= plain + PRR_BRACKET_SLACK, label
            # On bit-oriented arrays the measurement reconciles with the
            # extended model within the paper's Table 1 tolerance.
            if geometry.bits_per_word == 1:
                assert measured == pytest.approx(
                    bracket, abs=ANALYTICAL_TOLERANCE), label

    def test_both_backends_inside_the_bracket(self):
        geometry = ArrayGeometry(rows=8, columns=64)
        model = AnalyticalPowerModel(geometry)
        for algorithm in PAPER_TABLE1_ALGORITHMS:
            plain = model.prr(algorithm)
            bracket = model.prr(algorithm, include_secondary=True,
                                include_next_column_recharge=True)
            for backend in ("reference", "vectorized"):
                measured = measured_prr(
                    BistController(geometry, backend=backend), algorithm)
                assert bracket - PRR_BRACKET_SLACK <= measured \
                    <= plain + PRR_BRACKET_SLACK, (algorithm.name, backend)


# ----------------------------------------------------------------------
# Campaign records carry the verdicts and the attribution
# ----------------------------------------------------------------------
class TestPrrCaseRecords:
    def test_record_reports_bracket_planners_and_backend(self):
        case = PrrCase(rows=8, columns=64, algorithm="March C-",
                       backend="vectorized", seed=7)
        record = run_prr_case(case)
        assert record.passed
        assert record.within_bracket
        assert record.backend_used == "vectorized"
        assert record.seed == 7
        assert record.functional_planner == "FunctionalModePlanner"
        assert record.low_power_planner == "LowPowerTestPlanner"
        assert record.analytical_prr_bracket < record.measured_prr \
            < record.analytical_prr
        assert record.cycles_per_mode == \
            10 * 8 * 64  # March C-: 10 operations per address
        assert record.functional_energy_j > record.low_power_energy_j > 0

    def test_backends_produce_matching_records(self):
        records = {}
        for backend in ("reference", "vectorized"):
            records[backend] = run_prr_case(
                PrrCase(rows=8, columns=32, algorithm="MATS+", backend=backend))
        reference, vectorized = records["reference"], records["vectorized"]
        assert vectorized.measured_prr == pytest.approx(
            reference.measured_prr, rel=REL_TOL)
        assert vectorized.functional_energy_j == pytest.approx(
            reference.functional_energy_j, rel=REL_TOL)
        assert vectorized.low_power_energy_j == pytest.approx(
            reference.low_power_energy_j, rel=REL_TOL)
        assert reference.backend_used == "reference"
        assert vectorized.backend_used == "vectorized"

    def test_case_validates_backend_and_algorithm(self):
        from repro.sweep import SweepError

        with pytest.raises(SweepError):
            PrrCase(rows=8, columns=32, algorithm="March C-",
                    backend="warp-drive")
        with pytest.raises(KeyError):
            PrrCase(rows=8, columns=32, algorithm="March Nope")
        assert "auto" in POWER_BACKENDS
