"""Unit tests for the waveform container."""

import math

import pytest

from repro.circuit.waveform import Waveform, align_waveforms


def ramp(n=11, dt=1.0, slope=1.0):
    return Waveform(times=[i * dt for i in range(n)],
                    values=[i * dt * slope for i in range(n)], name="ramp")


class TestConstruction:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Waveform(times=[0.0, 1.0], values=[0.0])

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError):
            Waveform(times=[0.0, 2.0, 1.0], values=[0.0, 1.0, 2.0])

    def test_from_samples_and_len(self):
        wf = Waveform.from_samples([(0, 1), (1, 2), (2, 3)])
        assert len(wf) == 3
        assert wf.final_value() == 3

    def test_append_enforces_order(self):
        wf = Waveform()
        wf.append(0.0, 1.0)
        wf.append(1.0, 2.0)
        with pytest.raises(ValueError):
            wf.append(0.5, 0.0)

    def test_constant(self):
        wf = Waveform.constant(1.6, 0.0, 5.0)
        assert wf.value_at(2.5) == pytest.approx(1.6)


class TestAnalysis:
    def test_value_at_interpolates(self):
        wf = ramp()
        assert wf.value_at(2.5) == pytest.approx(2.5)

    def test_value_at_clamps_outside_range(self):
        wf = ramp()
        assert wf.value_at(-5) == pytest.approx(0.0)
        assert wf.value_at(50) == pytest.approx(10.0)

    def test_first_crossing_rising(self):
        wf = ramp()
        assert wf.first_crossing(4.2, "rising") == pytest.approx(4.2)

    def test_first_crossing_absent(self):
        wf = ramp()
        assert wf.first_crossing(100.0, "rising") is None
        assert wf.first_crossing(5.0, "falling") is None

    def test_first_crossing_direction_validation(self):
        with pytest.raises(ValueError):
            ramp().first_crossing(1.0, "sideways")

    def test_exponential_decay_crossing(self):
        tau = 2.0
        wf = Waveform.from_samples([(t * 0.1, math.exp(-t * 0.1 / tau)) for t in range(200)])
        t_half = wf.first_crossing(0.5, "falling")
        assert t_half == pytest.approx(tau * math.log(2.0), rel=0.02)

    def test_settling_time(self):
        wf = Waveform.from_samples([(0, 0), (1, 0.5), (2, 0.95), (3, 0.99), (4, 1.0)])
        assert wf.settling_time(1.0, tolerance=0.06) == pytest.approx(2)

    def test_time_average_of_ramp(self):
        assert ramp().time_average() == pytest.approx(5.0)

    def test_integral_of_constant(self):
        wf = Waveform.constant(2.0, 0.0, 3.0)
        assert wf.integral() == pytest.approx(6.0)

    def test_min_max(self):
        wf = ramp()
        assert wf.minimum() == 0.0
        assert wf.maximum() == 10.0

    def test_empty_waveform_raises(self):
        with pytest.raises(ValueError):
            Waveform().final_value()


class TestTransformations:
    def test_scaled_and_map(self):
        wf = ramp().scaled(2.0)
        assert wf.value_at(3.0) == pytest.approx(6.0)

    def test_shifted(self):
        wf = ramp().shifted(10.0)
        assert wf.start_time == pytest.approx(10.0)

    def test_windowed(self):
        wf = ramp().windowed(2.0, 4.0)
        assert wf.start_time == pytest.approx(2.0)
        assert wf.end_time == pytest.approx(4.0)
        assert wf.value_at(3.0) == pytest.approx(3.0)

    def test_sample_every(self):
        wf = ramp().sample_every(0.5)
        assert len(wf) == 21
        assert wf.value_at(0.5) == pytest.approx(0.5)

    def test_align_waveforms(self):
        a, b = ramp(), ramp(slope=2.0)
        aligned = align_waveforms([a, b], period=1.0)
        assert len(aligned[0]) == len(aligned[1])


class TestRendering:
    def test_render_ascii_contains_name_and_grid(self):
        text = ramp(name="ramp").render_ascii(width=20, height=5) if False else \
            Waveform(times=[0, 1], values=[0, 1], name="sig").render_ascii(width=20, height=5)
        assert "sig" in text
        assert "*" in text

    def test_render_ascii_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ramp().render_ascii(width=2, height=2)
