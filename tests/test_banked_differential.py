"""Banked × fault-class × backend × kernel differential matrix.

Banked multi-sub-array geometries and the dynamic/NPSF fault classes are
beyond-paper extensions, so nothing in Table 1 pins them.  What pins them
instead is the project's standing differential gate, instantiated here
through the shared harness (:mod:`differential`) over the full new
scenario matrix:

* **session power runs** — reference vs. vectorized on banked geometries
  (banks ∈ {1, 2, 4}, both interleave modes, both operating modes):
  identical counters (including ``bank_transitions``), energies at 1e-9;
* **flat vs. segmented kernels** — the flat kernel's closed-form bank
  accounting against the segmented oracle, per order and direction;
* **BIST power campaigns** — banked PRR identical across backends;
* **fault campaigns** — dynamic two-operation faults and neighbourhood
  pattern-sensitive faults produce bit-identical detection verdicts on
  the reference and vectorized fault backends, across algorithms, orders
  and directions;
* **sweep records** — banked grids evaluate field-for-field identically
  under the per-case and the batched strategy.
"""

from __future__ import annotations

import pytest

from repro import PAPER_TABLE1_ALGORITHMS, TestSession
from repro.bist import BistController
from repro.faults import (
    FaultInjection,
    dynamic_fault_models,
    neighbourhood_fault_models,
    type1_neighbourhood,
)
from repro.march import MARCH_CM, MARCH_SS, MATS_PLUS
from repro.march.element import AddressingDirection
from repro.march.ordering import ColumnMajorOrder, PseudoRandomOrder, RowMajorOrder
from repro.sram import ArrayGeometry, OperatingMode

from differential import (
    REL_TOL,
    assert_aggregates_match,
    assert_bist_equivalent,
    assert_fault_verdicts_identical,
    assert_identical_records,
    assert_session_equivalent,
    kernel_engines,
    measured_prr,
    run_both_backends,
    run_both_strategies,
)

#: banks=1 has no interleave choice; every banked count is exercised under
#: both address-map permutations.
BANK_VARIANTS = (
    (1, "blocked"),
    (2, "blocked"),
    (2, "interleaved"),
    (4, "blocked"),
    (4, "interleaved"),
)

BASE_SHAPES = ((16, 16), (8, 32))


def banked_geometries():
    for rows, columns in BASE_SHAPES:
        for banks, interleave in BANK_VARIANTS:
            yield ArrayGeometry(rows=rows, columns=columns, banks=banks,
                                bank_interleave=interleave)


GEOMETRY_IDS = [geometry.describe() for geometry in banked_geometries()]


# ----------------------------------------------------------------------
# Session runs: reference vs. vectorized on the banked matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
@pytest.mark.parametrize("geometry", banked_geometries(), ids=GEOMETRY_IDS)
def test_banked_session_equivalence(geometry, mode):
    reference, vectorized = run_both_backends(geometry, MARCH_CM, mode)
    assert_session_equivalent(reference, vectorized,
                              label=geometry.describe())
    if geometry.is_banked:
        # A multi-sweep march on a row-major order crosses every internal
        # bank boundary at least once per sweep: the new accounting must
        # actually have fired, not silently stayed at zero.
        assert reference.bank_transitions > 0, geometry.describe()
    else:
        assert reference.bank_transitions == 0


@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
def test_banked_column_major_order(mode):
    """Fast-row traversal under interleaved banking: every access lands in
    a different bank — the bank-select worst case."""
    geometry = ArrayGeometry(rows=8, columns=16, banks=4,
                             bank_interleave="interleaved")
    reference, vectorized = run_both_backends(
        geometry, MARCH_CM, mode, order=ColumnMajorOrder(geometry))
    assert_session_equivalent(reference, vectorized, label="banked fast-row")
    assert reference.bank_transitions > 0


def test_banked_descending_direction():
    geometry = ArrayGeometry(rows=16, columns=16, banks=4)
    reference, vectorized = run_both_backends(
        geometry, MARCH_CM, OperatingMode.LOW_POWER_TEST,
        any_direction=AddressingDirection.DOWN)
    assert_session_equivalent(reference, vectorized, label="banked any-down")


def test_interleave_mode_changes_the_transition_count():
    """Blocked and interleaved banking are different address maps: on a
    row-major sweep the interleaved map must pay strictly more bank-select
    transitions (every row change switches banks) than the blocked map
    (only sub-array boundaries switch)."""
    results = {}
    for interleave in ("blocked", "interleaved"):
        geometry = ArrayGeometry(rows=16, columns=16, banks=4,
                                 bank_interleave=interleave)
        results[interleave] = TestSession(geometry).run(
            MARCH_CM, OperatingMode.FUNCTIONAL)
    assert results["interleaved"].bank_transitions > \
        results["blocked"].bank_transitions
    # The bank map permutes rows only: everything that is not bank-select
    # accounting is unchanged between the two interleave modes.
    assert results["interleaved"].cycles == results["blocked"].cycles
    assert results["interleaved"].row_transitions == \
        results["blocked"].row_transitions


# ----------------------------------------------------------------------
# Kernels: flat vs. segmented bank accounting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("order_cls", [None, ColumnMajorOrder],
                         ids=["default", "column-major"])
@pytest.mark.parametrize("direction",
                         [AddressingDirection.UP, AddressingDirection.DOWN])
@pytest.mark.parametrize("geometry", banked_geometries(), ids=GEOMETRY_IDS)
def test_banked_flat_kernel_matches_segmented(geometry, order_cls, direction):
    """Banked sub-array accounting across the whole kernel matrix: the
    flat numpy kernel always, plus the compiled jit/gpu tiers wherever
    their dependency is importable."""
    from repro.engine import UnsupportedConfiguration

    segmented, *others = kernel_engines(geometry, order_cls, direction,
                                        detailed=True)
    for algorithm in PAPER_TABLE1_ALGORITHMS:
        for mode in OperatingMode:
            try:
                expected = segmented.run_aggregates(algorithm, mode)
            except UnsupportedConfiguration:
                for engine in others:
                    with pytest.raises(UnsupportedConfiguration):
                        engine.run_aggregates(algorithm, mode)
                continue
            for engine in others:
                observed = engine.run_aggregates(algorithm, mode)
                assert_aggregates_match(
                    expected, observed,
                    label=(geometry.describe(), engine.kernel,
                           algorithm.name, mode))


def test_banked_batch_is_bit_identical_to_single_runs():
    """The stacked pass books bank-select energy exactly like the
    stand-alone evaluation — bit for bit, the batched-sweep guarantee."""
    from repro.engine import VectorizedEngine

    geometry = ArrayGeometry(rows=16, columns=32, banks=4,
                             bank_interleave="interleaved")
    engine = VectorizedEngine(geometry, detailed=False)
    requests = [(algorithm, mode, None)
                for algorithm in PAPER_TABLE1_ALGORITHMS
                for mode in OperatingMode]
    stacked = engine.run_aggregates_batch(requests)
    for (algorithm, mode, _), batch_result in zip(requests, stacked):
        by_source_b, counters_b, cycles_b, _ = batch_result
        by_source_s, counters_s, cycles_s, _ = engine.run_aggregates(
            algorithm, mode)
        assert cycles_b == cycles_s and counters_b == counters_s
        assert by_source_b == by_source_s  # bit-identical, not approx


# ----------------------------------------------------------------------
# BIST campaigns: banked PRR across backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("banks,interleave", BANK_VARIANTS,
                         ids=[f"{b}-{i}" for b, i in BANK_VARIANTS])
def test_banked_bist_equivalence(banks, interleave):
    geometry = ArrayGeometry(rows=8, columns=32, banks=banks,
                             bank_interleave=interleave)
    for low_power in (False, True):
        reference = BistController(geometry).run(MARCH_CM,
                                                 low_power=low_power)
        vectorized = BistController(geometry, backend="vectorized").run(
            MARCH_CM, low_power=low_power)
        assert_bist_equivalent(reference, vectorized,
                               label=f"{geometry.describe()}/{low_power}")


def test_banked_measured_prr_identical_across_backends():
    geometry = ArrayGeometry(rows=16, columns=64, banks=4)
    for algorithm in (MATS_PLUS, MARCH_CM):
        reference = measured_prr(
            BistController(geometry, backend="reference"), algorithm)
        vectorized = measured_prr(
            BistController(geometry, backend="vectorized"), algorithm)
        assert vectorized == pytest.approx(reference, rel=REL_TOL), \
            algorithm.name


def test_bank_count_changes_the_measured_prr():
    """Banking shortens the bit lines (less RES to suppress) while adding
    bank-select overhead, so PRR must actually respond to the bank count —
    the beyond-paper effect the sweep axis exists to measure."""
    prr_by_banks = {}
    for banks in (1, 4):
        geometry = ArrayGeometry(rows=64, columns=64, banks=banks)
        prr_by_banks[banks] = measured_prr(
            BistController(geometry, backend="vectorized"), MARCH_CM)
    assert prr_by_banks[1] != pytest.approx(prr_by_banks[4], rel=1e-6)


# ----------------------------------------------------------------------
# Fault campaigns: dynamic + NPSF classes through both backends
# ----------------------------------------------------------------------
FAULT_GEOMETRY = ArrayGeometry(rows=6, columns=6)

#: Victims with a full 4-cell type-1 neighbourhood (interior cells) plus
#: edge/corner victims for the dynamic classes (no neighbourhood needed).
DYNAMIC_VICTIMS = [(0, 0), (0, 5), (2, 3), (5, 5)]
NPSF_VICTIMS = [(1, 1), (2, 3), (4, 4)]


def extended_battery(geometry=FAULT_GEOMETRY):
    """Every new fault class at several victims (incl. borders/corners)."""
    injections = []
    for model in dynamic_fault_models():
        for victim in DYNAMIC_VICTIMS:
            injections.append(FaultInjection(model, victim=victim))
    for model in neighbourhood_fault_models():
        for victim in NPSF_VICTIMS:
            injections.append(FaultInjection(
                model, victim=victim,
                neighbourhood=type1_neighbourhood(geometry, victim)))
    return injections


FAULT_ORDER_FACTORIES = {
    "row-major": RowMajorOrder,
    "column-major": ColumnMajorOrder,
    "pseudo-random": lambda g: PseudoRandomOrder(g, seed=11),
}


@pytest.mark.parametrize("order_name", sorted(FAULT_ORDER_FACTORIES))
@pytest.mark.parametrize("direction",
                         [AddressingDirection.UP, AddressingDirection.DOWN])
def test_dynamic_and_npsf_verdicts_identical(order_name, direction):
    order = FAULT_ORDER_FACTORIES[order_name](FAULT_GEOMETRY)
    assert_fault_verdicts_identical(FAULT_GEOMETRY, MARCH_SS, order,
                                    extended_battery(), direction=direction)


@pytest.mark.parametrize("algorithm", [MATS_PLUS, MARCH_CM],
                         ids=lambda a: a.name)
def test_new_fault_classes_across_algorithms(algorithm):
    assert_fault_verdicts_identical(
        FAULT_GEOMETRY, algorithm, RowMajorOrder(FAULT_GEOMETRY),
        extended_battery())


def test_march_ss_detects_the_dynamic_battery():
    """March SS exists to cover dynamic faults; the battery must not be
    vacuously undetectable (which would make the equivalence tests above
    meaningless)."""
    order = RowMajorOrder(FAULT_GEOMETRY)
    results = assert_fault_verdicts_identical(FAULT_GEOMETRY, MARCH_SS,
                                              order, extended_battery())
    detected = sum(1 for result in results if result.detected)
    assert detected >= len(results) // 2, f"{detected}/{len(results)}"


def test_neighbourhood_cells_survive_on_a_banked_geometry():
    """Fault campaigns address logical cells, so banking must be fully
    transparent to them — same verdicts as the monolithic array."""
    monolithic = ArrayGeometry(rows=8, columns=8)
    banked = ArrayGeometry(rows=8, columns=8, banks=4,
                           bank_interleave="interleaved")
    reference = assert_fault_verdicts_identical(
        monolithic, MARCH_SS, RowMajorOrder(monolithic),
        extended_battery(monolithic))
    banked_results = assert_fault_verdicts_identical(
        banked, MARCH_SS, RowMajorOrder(banked),
        extended_battery(banked))
    for lhs, rhs in zip(reference, banked_results):
        assert (lhs.detected, lhs.mismatches) == (rhs.detected, rhs.mismatches)


# ----------------------------------------------------------------------
# Sweep records: banked grids across execution strategies
# ----------------------------------------------------------------------
def test_banked_records_identical_across_strategies():
    from repro.sweep.runner import prr_grid, sweep_grid

    cases = sweep_grid(["8x16"], ["MATS+", "March C-"],
                       backends=("vectorized",), banks=(1, 2, 4)) + \
        prr_grid(["8x16"], ["MATS+"], backend="vectorized", banks=(1, 4),
                 bank_interleave="interleaved")
    percase, batched = run_both_strategies(cases)
    assert_identical_records(percase, batched)
    assert {record.banks for record in batched} == {1, 2, 4}
