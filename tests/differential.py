"""Shared cross-backend differential harness.

Every scenario family in this repository — session power runs, BIST power
campaigns, fault-detection campaigns, sweep grids — exists twice: once on
the cycle-accurate reference path and once on a vectorized engine (which
itself carries two kernels, segmented and flat).  The project-wide gate is
always the same: **verdicts bit-identical, energies within 1e-9**.

This module is the single home of that gate.  It collects the comparison
scaffolding that used to be duplicated across ``test_engine_equivalence``,
``test_prr_differential``, ``test_fault_campaign`` and
``test_grid_batched``, so each suite (and the banked/fault-class matrix in
``test_banked_differential``) instantiates one shared contract instead of
re-deriving its own:

* :func:`assert_energy_ledgers_match` — per-source energies, totals and
  average power at :data:`REL_TOL` (floating-point summation order is the
  only permitted difference between backends);
* :func:`assert_session_equivalent` / :func:`run_both_backends` — the
  full :class:`~repro.core.session.TestRunResult` contract, including the
  stress counters in :data:`COUNTER_FIELDS` (exact integers);
* :func:`assert_bist_equivalent` / :func:`measured_prr` — the BIST
  campaign contract (cycles, verdicts, ledger, planner attribution);
* :func:`fault_verdict` / :func:`assert_fault_verdicts_identical` — fault
  campaigns: detection triples must match **bit for bit**, no tolerance;
* :func:`kernel_pair` / :func:`kernel_engines` /
  :func:`kernel_matrix_tiers` / :func:`assert_aggregates_match` — the
  kernel-tier matrix on one engine configuration: the segmented oracle
  against the flat numpy kernel, plus the compiled ``jit``/``gpu`` tiers
  wherever their dependency is importable;
* :func:`drop_elapsed` / :func:`assert_identical_records` /
  :func:`run_both_strategies` — sweep records across execution strategies
  (field-for-field identical; ``elapsed_s`` is the one wall-clock exempt
  field).
"""

from __future__ import annotations

import pytest

from repro import TestSession
from repro.bist import BistController
from repro.faults import FaultSimulator
from repro.march.element import AddressingDirection
from repro.sweep.runner import SweepRunner

#: Relative tolerance for energy/power comparisons across backends: the
#: two implementations sum identical per-event energies in different
#: orders, so they may differ by floating-point associativity only.
REL_TOL = 1e-9

#: Stress counters every pair of backends must agree on *exactly*.
COUNTER_FIELDS = (
    "cycles",
    "row_transitions",
    "full_restores",
    "full_res_column_cycles",
    "floating_column_cycles",
    "read_hazards",
    "bank_transitions",
)


# ----------------------------------------------------------------------
# Energy ledgers (shared by session and BIST results)
# ----------------------------------------------------------------------
def assert_energy_ledgers_match(reference, vectorized, label="",
                                rel=REL_TOL):
    """Per-source energy breakdown, total and average power at ``rel``."""
    assert set(reference.energy_by_source) == \
        set(vectorized.energy_by_source), label
    for source, expected in reference.energy_by_source.items():
        observed = vectorized.energy_by_source[source]
        assert observed == pytest.approx(expected, rel=rel), (label, source)
    assert vectorized.total_energy == pytest.approx(
        reference.total_energy, rel=rel), label
    assert vectorized.average_power == pytest.approx(
        reference.average_power, rel=rel), label


# ----------------------------------------------------------------------
# Session runs (TestSession / TestRunResult)
# ----------------------------------------------------------------------
def assert_session_equivalent(reference, vectorized, label=""):
    """Assert two TestRunResults agree on every reported measurement."""
    assert_energy_ledgers_match(reference, vectorized, label)
    for field in COUNTER_FIELDS:
        assert getattr(vectorized, field) == getattr(reference, field), \
            (label, field)
    assert reference.mismatches == [] and vectorized.mismatches == [], label
    assert reference.faulty_swaps == [] and vectorized.faulty_swaps == [], \
        label
    assert reference.passed and vectorized.passed, label
    assert vectorized.order == reference.order
    assert vectorized.geometry == reference.geometry


def run_both_backends(geometry, algorithm, mode, **session_kwargs):
    """Run one scenario on the reference and the vectorized session."""
    reference = TestSession(geometry, **session_kwargs).run(algorithm, mode)
    vectorized = TestSession(geometry, backend="vectorized",
                             **session_kwargs).run(algorithm, mode)
    return reference, vectorized


# ----------------------------------------------------------------------
# BIST power campaigns (BistController / BistRunResult)
# ----------------------------------------------------------------------
def assert_bist_equivalent(reference, vectorized, label=""):
    """Cycles, verdicts, ledger and planner of two BIST results."""
    assert vectorized.cycles == reference.cycles, label
    assert vectorized.passed and reference.passed, label
    assert vectorized.failures == reference.failures == 0, label
    assert_energy_ledgers_match(reference, vectorized, label)
    assert vectorized.planner == reference.planner, label


def measured_prr(controller: BistController, algorithm) -> float:
    """Measured Power Reduction Ratio of one algorithm on one controller."""
    functional = controller.run(algorithm, low_power=False)
    low_power = controller.run(algorithm, low_power=True)
    assert functional.passed and low_power.passed
    return 1.0 - low_power.average_power / functional.average_power


# ----------------------------------------------------------------------
# Fault campaigns (FaultSimulator / DetectionResult)
# ----------------------------------------------------------------------
def fault_verdict(result):
    """The triple both fault backends must agree on, bit for bit."""
    return (result.detected, result.first_detection_step, result.mismatches)


def assert_fault_verdicts_identical(geometry, algorithm, order, battery,
                                    direction=AddressingDirection.UP):
    """Run one battery on both fault backends; verdicts must be identical."""
    reference = FaultSimulator(geometry, any_direction=direction,
                               backend="reference")
    vectorized = FaultSimulator(geometry, any_direction=direction,
                                backend="vectorized")
    expected = reference.simulate_many(algorithm, order, battery)
    got = vectorized.simulate_many(algorithm, order, battery)
    assert vectorized.last_backend_used == "vectorized"
    for injection, lhs, rhs in zip(battery, expected, got):
        assert fault_verdict(lhs) == fault_verdict(rhs), (
            f"{injection.describe()} under {order.name}: "
            f"reference {fault_verdict(lhs)} vs vectorized "
            f"{fault_verdict(rhs)}")
    return expected


# ----------------------------------------------------------------------
# Flat kernel vs. the segmented differential oracle (and compiled tiers)
# ----------------------------------------------------------------------
def kernel_matrix_tiers():
    """Every kernel tier that can actually run here: ``segmented`` and
    ``flat`` always, plus ``jit``/``gpu`` when their dependency imports.
    The three-way (or four-way) differential matrix iterates this."""
    from repro.engine import available_kernels  # deferred: numpy optional

    tiers = ["segmented", "flat"]
    tiers += [t for t in available_kernels() if t not in tiers]
    return tuple(tiers)


def kernel_engines(geometry, order_cls=None,
                   any_direction=AddressingDirection.UP, detailed=True,
                   kernels=None):
    """One identically-configured VectorizedEngine per kernel tier.

    ``kernels`` defaults to :func:`kernel_matrix_tiers` — the segmented
    oracle first, then every tier the environment can execute — so a
    suite comparing ``engines[0]`` against ``engines[1:]`` pins the whole
    matrix wherever it runs and silently narrows to the classic
    segmented-vs-flat pair where numba/cupy are absent.
    """
    from repro.engine import VectorizedEngine  # deferred: numpy optional

    if kernels is None:
        kernels = kernel_matrix_tiers()
    order = order_cls(geometry) if order_cls is not None else None
    return tuple(
        VectorizedEngine(geometry, order=order, any_direction=any_direction,
                         detailed=detailed, kernel=kernel)
        for kernel in kernels)


def kernel_pair(geometry, order_cls=None,
                any_direction=AddressingDirection.UP, detailed=True):
    """One VectorizedEngine per kernel, identically configured."""
    return kernel_engines(geometry, order_cls, any_direction, detailed,
                          kernels=("segmented", "flat"))


def assert_aggregates_match(expected, observed, label=""):
    """Compare two ``run_aggregates`` results: counters and cycles exact,
    energies at :data:`REL_TOL`, stress arrays exact when present."""
    import numpy as np

    by_source_e, counters_e, cycles_e, stress_e = expected
    by_source_o, counters_o, cycles_o, stress_o = observed
    assert cycles_o == cycles_e, label
    assert counters_o == counters_e, label
    assert set(by_source_o) == set(by_source_e), label
    for source in by_source_e:
        assert by_source_o[source] == pytest.approx(
            by_source_e[source], rel=REL_TOL), (label, source)
    if stress_e is not None and stress_o is not None:
        assert np.array_equal(stress_o.full_res, stress_e.full_res), label
        assert np.array_equal(stress_o.partial_res, stress_e.partial_res), \
            label


# ----------------------------------------------------------------------
# Sweep records across execution strategies
# ----------------------------------------------------------------------
def drop_elapsed(record) -> dict:
    """A record's dictionary minus its wall-clock observation."""
    row = record.as_dict()
    row.pop("elapsed_s")
    return row


def assert_identical_records(percase_result, batched_result):
    """Field-for-field identity of two record streams (``elapsed_s`` aside)."""
    assert len(percase_result) == len(batched_result)
    for expected, observed in zip(percase_result, batched_result):
        assert type(observed) is type(expected)
        assert drop_elapsed(observed) == drop_elapsed(expected)


def run_both_strategies(cases):
    """Evaluate one grid with the per-case and the batched strategy."""
    percase = SweepRunner(cases, processes=1, strategy="percase").run()
    batched = SweepRunner(cases, strategy="batched").run()
    return percase, batched
