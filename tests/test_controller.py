"""Tests of the modified pre-charge control logic (Figure 8 / Figure 4)."""

import pytest

from repro.core.precharge_controller import (
    ControllerError,
    ModifiedPrechargeController,
    TRANSISTORS_PER_COLUMN,
)


class TestStaticProperties:
    def test_ten_transistors_per_column(self):
        controller = ModifiedPrechargeController(columns=8)
        assert controller.transistors_per_column() == TRANSISTORS_PER_COLUMN == 10
        assert controller.total_transistors() == 8 * 10

    def test_direction_aware_variant_costs_more(self):
        basic = ModifiedPrechargeController(columns=8)
        both = ModifiedPrechargeController(columns=8, support_descending=True)
        assert both.transistors_per_column() > basic.transistors_per_column()

    def test_added_delay_is_a_single_mux(self):
        controller = ModifiedPrechargeController(columns=4)
        # Negligible-impact claim: well under a tenth of the 3 ns cycle.
        assert controller.added_delay_on_pr_path() < 0.1e-9

    def test_invalid_column_count(self):
        with pytest.raises(ControllerError):
            ModifiedPrechargeController(columns=0)


class TestFunctionalMode:
    def test_functional_mode_mirrors_pr_signals(self):
        controller = ModifiedPrechargeController(columns=6)
        decision = controller.evaluate(lptest=False, selected_column=2)
        # Operation phase: the selected column's pre-charge is OFF, every
        # other column's is ON — exactly the unmodified behaviour.
        assert decision.precharge_on[2] is False
        assert all(decision.precharge_on[c] for c in range(6) if c != 2)

    def test_functional_restoration_phase_turns_selected_back_on(self):
        controller = ModifiedPrechargeController(columns=6)
        decision = controller.evaluate(lptest=False, selected_column=2,
                                       precharge_phase=True)
        assert all(decision.precharge_on.values())

    def test_idle_memory_precharges_everything(self):
        controller = ModifiedPrechargeController(columns=4)
        decision = controller.evaluate(lptest=False, selected_column=None)
        assert all(decision.precharge_on.values())


class TestLowPowerMode:
    def test_only_next_column_precharged(self):
        controller = ModifiedPrechargeController(columns=8)
        decision = controller.evaluate(lptest=True, selected_column=3)
        assert decision.active_columns() == [4]

    def test_selected_column_follows_functional_timing(self):
        controller = ModifiedPrechargeController(columns=8)
        operation = controller.evaluate(lptest=True, selected_column=3)
        restoration = controller.evaluate(lptest=True, selected_column=3,
                                          precharge_phase=True)
        assert operation.precharge_on[3] is False
        assert restoration.precharge_on[3] is True

    def test_last_column_has_no_successor(self):
        controller = ModifiedPrechargeController(columns=8)
        decision = controller.evaluate(lptest=True, selected_column=7)
        # "The CS signal of the last column is not connected to the first
        # column pre-charge control" — nothing else is pre-charged.
        assert decision.active_columns() == []

    def test_activation_map_is_the_figure4_diagonal(self):
        columns = 6
        controller = ModifiedPrechargeController(columns=columns)
        table = controller.activation_map(lptest=True)
        for selected in range(columns):
            active = [k for k, on in enumerate(table[selected]) if on]
            expected = [selected + 1] if selected + 1 < columns else []
            assert active == expected

    def test_functional_activation_map_is_dense(self):
        columns = 5
        controller = ModifiedPrechargeController(columns=columns)
        table = controller.activation_map(lptest=False)
        for selected in range(columns):
            assert sum(table[selected]) == columns - 1

    def test_out_of_range_selected_column(self):
        controller = ModifiedPrechargeController(columns=4)
        with pytest.raises(ControllerError):
            controller.evaluate(lptest=True, selected_column=4)

    def test_descending_requires_extended_controller(self):
        basic = ModifiedPrechargeController(columns=4)
        with pytest.raises(ControllerError):
            basic.evaluate(lptest=True, selected_column=2, descending=True)

    def test_descending_variant_precharges_previous_column(self):
        controller = ModifiedPrechargeController(columns=8, support_descending=True)
        ascending = controller.evaluate(lptest=True, selected_column=3)
        controller.reset()
        descending = controller.evaluate(lptest=True, selected_column=3, descending=True)
        assert ascending.active_columns() == [4]
        assert descending.active_columns() == [2]


class TestControllerEnergy:
    def test_column_change_switches_one_element(self):
        controller = ModifiedPrechargeController(columns=16)
        controller.evaluate(lptest=True, selected_column=3)
        decision = controller.evaluate(lptest=True, selected_column=4)
        assert decision.switching_energy > 0
        # Only a handful of nets toggle: the energy must be far below one
        # bit-line recharge (the negligible-overhead claim).
        bitline_energy = 500e-15 * 1.6 * 1.6
        assert decision.switching_energy < 0.05 * bitline_energy

    def test_static_vector_costs_nothing(self):
        controller = ModifiedPrechargeController(columns=8)
        controller.evaluate(lptest=True, selected_column=3)
        again = controller.evaluate(lptest=True, selected_column=3)
        assert again.switching_energy == 0.0
