"""The campaign orchestrator: streaming, journal/resume, shards, workers.

Covers the PR's bugfixes and the orchestration subsystem around them:

* ``SweepRunner(processes=None)`` defaults to one worker per CPU core
  (clamped to the grid) instead of silently running sequentially forever;
* parallel progress streams live (``imap_unordered``) instead of only
  appearing after the whole pool drains;
* the append-only JSONL run journal, ``run(resume=True)`` semantics and
  grid-mismatch detection;
* deterministic sharding (disjoint, exhaustive, stable);
* the per-worker pre-warmed state (memoised orders/facades, one shared
  ``TraceCache``);
* JSON/CSV/journal round-trips of all three record kinds, including the
  stringly-typed CSV coercion of bool/seed/backend fields;
* the new CLI surface (``--journal`` / ``--resume`` / ``--shard``, warnings
  for silently-ignored flags, export failures exiting 2 instead of
  crashing with a traceback).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.sweep import (
    CoverageCase,
    CoverageRecord,
    JournalEntry,
    JournalError,
    PrrCase,
    PrrRecord,
    RunJournal,
    SweepCase,
    SweepError,
    SweepRecord,
    SweepResult,
    SweepRunner,
    case_fingerprint,
    case_kind,
    coverage_grid,
    load_journal,
    shard_cases,
    sweep_grid,
)
from repro.sweep import runner as runner_module
from repro.sweep.__main__ import main as sweep_main, parse_shard


def _fast_cases(count: int = 3):
    """A tiny vectorized grid (distinct algorithms, one geometry)."""
    return sweep_grid(["8x8"], ["MATS+", "March C-", "MATS"][:count],
                      backends=("vectorized",))


def _mixed_cases():
    """One case of each kind, all cheap."""
    return [
        SweepCase(rows=8, columns=8, algorithm="MATS+", backend="vectorized"),
        CoverageCase(rows=8, columns=8, algorithm="MATS+",
                     include_coupling=False, seed=5, sample=2),
        PrrCase(rows=8, columns=64, algorithm="MATS+", backend="vectorized",
                seed=11),
    ]


# ----------------------------------------------------------------------
# processes=None regression (used to mean "sequential forever")
# ----------------------------------------------------------------------
def test_processes_none_defaults_to_cpu_count(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 7)
    runner = SweepRunner(_fast_cases(2))
    assert runner.processes is None
    assert runner.resolved_processes(16) == 7     # all cores...
    assert runner.resolved_processes(3) == 3      # ...clamped to the work
    assert runner.resolved_processes() == 2       # default: the full grid


def test_explicit_processes_still_win_and_clamp(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 7)
    runner = SweepRunner(_fast_cases(2), processes=3)
    assert runner.resolved_processes(16) == 3
    assert runner.resolved_processes() == 2


def test_cpu_count_none_degrades_to_sequential(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert SweepRunner(_fast_cases(2)).resolved_processes(16) == 1


# ----------------------------------------------------------------------
# Live streaming progress (was: printed only after pool.map returned)
# ----------------------------------------------------------------------
def test_parallel_progress_streams_live_via_sink():
    # One deliberately slow scenario (reference backend, 48x48) first in
    # the grid, three fast vectorized ones behind it.  The old pool.map
    # implementation emitted nothing until every case finished and then
    # printed in input order; the streaming runner must emit the fast
    # cases while the slow one is still running, i.e. the slow case's
    # line arrives last.
    slow = SweepCase(rows=48, columns=48, algorithm="March C-",
                     backend="reference")
    fast = _fast_cases(3)
    lines = []
    result = SweepRunner([slow] + fast, processes=2).run(
        progress=True, progress_sink=lines.append)
    assert len(lines) == 4
    assert "March C- @ 48x48" in lines[-1], (
        "slow case should complete (and be reported) last: " + repr(lines))
    # ...while the result restores the stable input order.
    assert [record.algorithm for record in result] == \
        ["March C-"] + [case.algorithm for case in fast]
    assert result.records[0].backend_used == "reference"


def test_sequential_progress_uses_the_sink_too():
    lines = []
    result = SweepRunner(_fast_cases(2), processes=1).run(
        progress=True, progress_sink=lines.append)
    assert len(lines) == len(result) == 2
    assert lines[0].startswith("[sweep] MATS+")


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def test_shards_are_disjoint_exhaustive_and_deterministic():
    cases = sweep_grid(["8x8", "16x16"], ["MATS+", "March C-", "MATS"],
                       orders=("row-major", "column-major"))
    assert len(cases) == 12
    shards = [shard_cases(cases, index, 5) for index in range(1, 6)]
    # exhaustive and disjoint: every case lands in exactly one shard
    flattened = [case for shard in shards for case in shard]
    assert sorted(map(case_fingerprint, flattened),
                  key=lambda c: json.dumps(c, sort_keys=True)) == \
        sorted(map(case_fingerprint, cases),
               key=lambda c: json.dumps(c, sort_keys=True))
    assert sum(len(shard) for shard in shards) == len(cases)
    # deterministic: the same spec always yields the same slice
    assert shard_cases(cases, 2, 5) == shards[1]
    # round-robin: shard i takes cases i-1, i-1+5, ...
    assert shards[0] == [cases[0], cases[5], cases[10]]


def test_shard_validation():
    cases = _fast_cases(2)
    with pytest.raises(SweepError):
        shard_cases(cases, 0, 2)
    with pytest.raises(SweepError):
        shard_cases(cases, 3, 2)
    with pytest.raises(SweepError):
        shard_cases(cases, 1, 0)
    assert shard_cases(cases, 2, 3) == [cases[1]]
    assert shard_cases(cases, 3, 3) == []  # legitimate empty tail shard


# ----------------------------------------------------------------------
# Journal + resume
# ----------------------------------------------------------------------
def test_journal_records_every_completed_case(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _mixed_cases()
    result = SweepRunner(cases, processes=1, journal=path).run()
    entries = load_journal(path)
    assert [entry.case_index for entry in entries] == [0, 1, 2]
    assert [entry.kind for entry in entries] == ["power", "coverage", "prr"]
    for entry, case, record in zip(entries, cases, result):
        assert entry.case == case_fingerprint(case)
        assert entry.record == json.loads(json.dumps(record.as_dict()))


def test_resume_reexecutes_only_missing_cases(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _mixed_cases()
    full = SweepRunner(cases, processes=1, journal=path).run()

    # Simulate a kill after the first two completed cases: truncate the
    # journal (keeping its header line), then resume into a fresh runner.
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:3]) + "\n")
    resumed = SweepRunner(cases, processes=1, journal=path).run(resume=True)

    assert len(resumed) == len(full) == 3
    # Restored cases come back verbatim — including their original
    # elapsed_s, which proves they were not re-executed.
    assert resumed.records[0].as_dict() == full.records[0].as_dict()
    assert resumed.records[1].as_dict() == full.records[1].as_dict()
    # The missing case re-executed: identical measurements, fresh runtime.
    drop = lambda d: {k: v for k, v in d.items() if k != "elapsed_s"}
    assert drop(resumed.records[2].as_dict()) == drop(full.records[2].as_dict())
    # The journal was completed back to one line per case.
    assert len(load_journal(path)) == 3


def test_resume_emits_summary_and_skips_runs(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    lines = []
    SweepRunner(cases, processes=1, journal=path).run(
        progress=True, resume=True, progress_sink=lines.append)
    assert lines == [f"[sweep] resumed 2 of 2 cases from {path}"]


def test_fresh_run_refuses_an_existing_journal(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    # Appending a second campaign onto the same journal would poison any
    # later resume with stale entries — it must be refused up front...
    with pytest.raises(SweepError, match="already exists"):
        SweepRunner(cases, processes=1, journal=path).run()
    # ...while resuming it, or starting over an empty file, is fine.
    assert len(SweepRunner(cases, journal=path).run(resume=True)) == 2
    path.write_text("")
    assert len(SweepRunner(cases, processes=1, journal=path).run()) == 2


def test_sequential_worker_state_is_scoped_to_the_run(clear_worker_state):
    SweepRunner(_fast_cases(2), processes=1).run()
    # The run-scoped state must not leak into the thread's slot, so
    # long-lived processes don't accumulate facades across sweeps.
    assert runner_module._get_worker_state() is None


def test_resume_without_journal_is_an_error():
    with pytest.raises(SweepError, match="resume needs a journal"):
        SweepRunner(_fast_cases(1)).run(resume=True)


def test_resume_rejects_a_journal_from_another_grid(tmp_path):
    path = tmp_path / "run.jsonl"
    SweepRunner(_fast_cases(2), processes=1, journal=path).run()
    other_grid = sweep_grid(["16x16"], ["MATS+", "March C-"],
                            backends=("vectorized",))
    with pytest.raises(SweepError, match="does not match this grid"):
        SweepRunner(other_grid, journal=path).run(resume=True)
    shorter = _fast_cases(1)
    with pytest.raises(SweepError, match="outside this 1-case grid"):
        SweepRunner(shorter, journal=path).run(resume=True)


def test_resume_with_missing_journal_runs_everything(tmp_path):
    path = tmp_path / "never-written.jsonl"
    result = SweepRunner(_fast_cases(2), processes=1,
                         journal=path).run(resume=True)
    assert len(result) == 2
    assert len(load_journal(path)) == 2


def test_journal_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    # A kill mid-write leaves a torn, newline-less tail: it must be
    # dropped (the case re-runs), not crash the resume.
    with path.open("a") as handle:
        handle.write('{"format": "repro-sweep-journal", "case_index": 1, ')
    assert len(load_journal(path)) == 2
    resumed = SweepRunner(cases, processes=1, journal=path).run(resume=True)
    assert len(resumed) == 2


def test_resume_append_does_not_merge_into_a_torn_tail(tmp_path):
    path = tmp_path / "run.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    # Kill simulation: case 1's line is torn mid-write (no newline).
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n" + lines[1][:40])
    resumed = SweepRunner(cases, processes=1, journal=path).run(resume=True)
    assert len(resumed) == 2
    # The re-executed case's entry must be a line of its own, not merged
    # into the torn fragment — the journal stays loadable forever after.
    entries = load_journal(path)
    assert [entry.case_index for entry in entries] == [0, 1]
    assert path.read_bytes().endswith(b"\n")
    again = SweepRunner(cases, processes=1, journal=path).run(resume=True)
    assert len(again) == 2


def test_journal_rejects_corrupt_complete_lines(tmp_path):
    path = tmp_path / "corrupt.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(JournalError):
        load_journal(path)
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(JournalError):
        load_journal(path)


def test_unwritable_journal_fails_before_any_case_runs(tmp_path):
    path = tmp_path / "no-such-dir" / "run.jsonl"
    executed = []
    runner = SweepRunner(_fast_cases(2), processes=1, journal=path)
    with pytest.raises(OSError):
        runner.run(progress=True, progress_sink=executed.append)
    assert executed == []  # no measurement was spent before the failure


def test_kill_during_first_append_still_resumes(tmp_path):
    # A kill -9 during the very first journal write leaves a lone torn
    # fragment; it must read as an empty journal so --resume re-runs the
    # whole grid, not dead-end with a corruption error.
    path = tmp_path / "first.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    fragment = path.read_text().splitlines()[0][:37]
    path.write_text(fragment)  # only a torn first line, no newline
    assert load_journal(path) == []
    resumed = SweepRunner(cases, processes=1, journal=path).run(resume=True)
    assert len(resumed) == 2
    assert len(load_journal(path)) == 2


def test_torn_tail_is_only_dropped_from_a_valid_journal(tmp_path):
    # A file whose only content is an unparseable fragment that does NOT
    # look like the start of a journal line is foreign or corrupt, not a
    # torn journal — it must fail loudly.
    path = tmp_path / "fragment.jsonl"
    # Not a prefix of an entry line ('{"case"...') nor of the header line
    # ('{"format": "repro-sweep-journal-header"...').
    path.write_text('{"format": "foreign-file')
    with pytest.raises(JournalError):
        load_journal(path)
    # A decodable-but-foreign final line (wrong format tag) also fails.
    SweepRunner(_fast_cases(1), processes=1,
                journal=tmp_path / "ok.jsonl").run()
    with (tmp_path / "ok.jsonl").open("a") as handle:
        handle.write('{"format": "something-else"}')  # no trailing newline
    with pytest.raises(JournalError):
        load_journal(tmp_path / "ok.jsonl")


def test_torn_header_only_journal_reads_as_empty(tmp_path):
    # A kill -9 during the very first header write leaves a lone torn
    # header fragment. All three readers must agree it means "no journal
    # yet": read_header() -> None (it used to raise), load() -> [], and
    # both a fresh run and --resume must start over cleanly.
    path = tmp_path / "run.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    header_line = path.read_text().splitlines()[0]
    path.write_text(header_line[:25])  # torn mid-header, no newline
    assert RunJournal(path).read_header() is None
    assert RunJournal(path).load() == []
    assert load_journal(path) == []
    resumed = SweepRunner(cases, processes=1, journal=path).run(resume=True)
    assert len(resumed) == 2
    assert RunJournal(path).read_header() is not None

    path.write_text(header_line[:25])
    fresh = SweepRunner(cases, processes=1, journal=path).run()
    assert len(fresh) == 2
    assert len(load_journal(path)) == 2


def test_entry_less_journal_restarts_fresh(tmp_path):
    # A journal holding a header but zero entries records a run that
    # never measured anything — a fresh (non-resume) run must restart
    # it, not refuse with "journal already exists".
    path = tmp_path / "run.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    header_line = path.read_text().splitlines()[0]

    path.write_text(header_line + "\n")  # header-only variant
    result = SweepRunner(cases, processes=1, journal=path).run()
    assert len(result) == 2
    assert len(load_journal(path)) == 2
    # The stale header was replaced, not stacked under a second one.
    assert path.read_text().count("journal-header") == 1

    path.write_text("")  # zero-byte variant
    result = SweepRunner(cases, processes=1, journal=path).run()
    assert len(result) == 2

    # One completed entry is real progress: still refused.
    with pytest.raises(SweepError, match="already exists"):
        SweepRunner(cases, processes=1, journal=path).run()


def test_header_plus_torn_entry_resumes(tmp_path):
    # Kill -9 after the header but mid-first-entry: the header survives,
    # the torn entry is dropped, and --resume re-runs the whole grid.
    path = tmp_path / "run.jsonl"
    cases = _fast_cases(2)
    SweepRunner(cases, processes=1, journal=path).run()
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n" + lines[1][:40])
    assert RunJournal(path).read_header() is not None  # header intact
    assert load_journal(path) == []
    resumed = SweepRunner(cases, processes=1, journal=path).run(resume=True)
    assert len(resumed) == 2
    assert [e.case_index for e in load_journal(path)] == [0, 1]


def test_read_header_still_rejects_foreign_content(tmp_path):
    # The torn-fragment tolerance must not swallow foreign files: content
    # that is neither a header nor the start of a journal line fails
    # loudly from read_header(), exactly as it does from load().
    path = tmp_path / "foreign.jsonl"
    path.write_text('{"format": "foreign-file')
    with pytest.raises(JournalError, match="unrecognised content"):
        RunJournal(path).read_header()
    # A *complete* non-header first line is simply "no header" here —
    # judging whether it is a valid entry line stays load()'s job.
    path.write_text("complete garbage\n")
    assert RunJournal(path).read_header() is None
    with pytest.raises(JournalError):
        RunJournal(path).load()


def test_journal_rejects_unknown_versions(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({
        "format": "repro-sweep-journal", "version": 99, "case_index": 0,
        "kind": "power", "case": {}, "record": {}}) + "\n")
    with pytest.raises(JournalError, match="version 99"):
        load_journal(path)


# ----------------------------------------------------------------------
# Round-trips of all three record kinds (bool/seed/backend coercion)
# ----------------------------------------------------------------------
def _sample_records():
    """One hand-built record per kind, with deliberately false booleans."""
    power = SweepRecord(
        rows=8, columns=8, bits_per_word=1, algorithm="MATS+",
        order="row-major", any_direction="up", backend="auto",
        backend_used="reference", cycles_per_mode=320,
        functional_power_w=1e-4, low_power_power_w=2e-4,
        measured_prr=-0.5, analytical_prr=-0.1, analytical_prr_recharge=-0.2,
        passed=False, elapsed_s=0.25)
    coverage = CoverageRecord(
        rows=8, columns=8, algorithm="March C-",
        orders="row-major+column-major", any_direction="up", backend="auto",
        backend_used="vectorized", seed=42, sample=3, locations=8,
        total_faults=168, detected_faults=160, coverage=160 / 168,
        invariant=False, disagreements=2, elapsed_s=1.5)
    prr = PrrRecord(
        rows=8, columns=64, bits_per_word=1, algorithm="MATS+",
        backend="vectorized", backend_used="vectorized", seed=7,
        cycles_per_mode=2560, functional_energy_j=1e-9,
        low_power_energy_j=5e-10, functional_power_w=1e-4,
        low_power_power_w=5e-5, measured_prr=0.5, analytical_prr=0.52,
        analytical_prr_bracket=0.48, within_bracket=False,
        functional_planner="FunctionalModePlanner",
        low_power_planner="LowPowerTestPlanner", passed=False, elapsed_s=0.1)
    return power, coverage, prr


@pytest.mark.parametrize("index,kind", [(0, "power"), (1, "coverage"),
                                        (2, "prr")])
def test_csv_round_trip_preserves_bool_seed_backend_fields(tmp_path, index,
                                                           kind):
    record = _sample_records()[index]
    path = tmp_path / f"{kind}.csv"
    SweepResult([record]).to_csv(path)
    restored = SweepResult.from_csv(path).records[0]
    assert type(restored) is type(record)
    # CSV delivers strings; the importer must coerce them back.
    assert restored.as_dict() == record.as_dict()
    assert restored.backend == record.backend
    assert restored.backend_used == record.backend_used
    if hasattr(record, "seed"):
        assert isinstance(restored.seed, int)
    for name, value in record.as_dict().items():
        if isinstance(value, bool):
            assert isinstance(getattr(restored, name), bool)
            assert getattr(restored, name) is value


def test_json_round_trip_of_all_kinds_together(tmp_path):
    records = list(_sample_records())
    path = SweepResult(records).to_json(tmp_path / "mixed.json")
    restored = SweepResult.from_json(path)
    assert [r.as_dict() for r in restored] == [r.as_dict() for r in records]
    assert [type(r).__name__ for r in restored] == \
        ["SweepRecord", "CoverageRecord", "PrrRecord"]


def test_journal_round_trip_of_all_kinds(tmp_path):
    path = tmp_path / "kinds.jsonl"
    cases = _mixed_cases()
    records = _sample_records()
    with RunJournal(path) as journal:
        for index, (case, record) in enumerate(zip(cases, records)):
            journal.append(JournalEntry(
                case_index=index, kind=case_kind(case),
                case=case_fingerprint(case), record=record.as_dict()))
    entries = load_journal(path)
    assert len(entries) == 3
    for entry, record in zip(entries, records):
        restored = type(record).from_dict(entry.record)
        assert restored.as_dict() == record.as_dict()


# ----------------------------------------------------------------------
# Worker state: memoised orders/facades, pre-warmed shared trace cache
# ----------------------------------------------------------------------
@pytest.fixture
def clear_worker_state():
    """Run the test with an empty thread-local worker-state slot, and
    drop whatever the test installed afterwards."""
    runner_module._set_worker_state(None)
    yield
    runner_module._set_worker_state(None)


def test_worker_initializer_prewarms_shared_traces(clear_worker_state):
    # A seed sweep: both cases replay the same algorithm x order traces,
    # so the initializer compiles them (3 orders) exactly once up front.
    cases = [CoverageCase(rows=8, columns=8, algorithm="MATS+",
                          include_coupling=False, sample=2, seed=seed)
             for seed in (1, 2)]
    runner_module._init_worker(cases)
    state = runner_module._get_worker_state()
    assert state is not None
    assert len(state.traces) == len(cases[0].orders)
    geometry = cases[0].geometry()
    assert state.order_for("row-major", geometry) is \
        state.order_for("row-major", geometry)
    # Same configuration axes -> the same facade instance.
    assert state.simulator_for(cases[0]) is state.simulator_for(cases[1])


def test_worker_initializer_skips_unshared_traces(clear_worker_state):
    # A grid of unique scenarios (the --paper-table1 shape) must NOT
    # pre-compile the whole grid in every worker — each trace is needed
    # by exactly one case and compiles lazily when that case runs.
    cases = coverage_grid(["8x8"], ["MATS+", "March C-"],
                          orders=("row-major",), sample=2)
    runner_module._init_worker(cases)
    state = runner_module._get_worker_state()
    assert len(state.traces) == 0
    # A direct (shared=None) warm still compiles everything the case needs.
    state.warm_case(cases[0])
    assert len(state.traces) == 1


def test_worker_state_reuses_controllers_and_sessions(clear_worker_state):
    prr = [PrrCase(rows=8, columns=64, algorithm="MATS+",
                   backend="vectorized", seed=seed) for seed in (1, 2)]
    power = _fast_cases(2)
    runner_module._init_worker(prr + power)
    state = runner_module._get_worker_state()
    assert state.controller_for(prr[0]) is state.controller_for(prr[1])
    assert state.session_for(power[0]) is state.session_for(power[1])
    # The seed-swept PRR scenario shares one trace: pre-compiled at init.
    assert len(state.traces) == 1


def test_worker_state_results_match_fresh_facades(clear_worker_state):
    cases = _mixed_cases()
    fresh = [runner_module.execute_case(case) for case in cases]
    runner_module._init_worker(cases)
    warmed = [runner_module.execute_case(case) for case in cases]
    drop = lambda d: {k: v for k, v in d.items() if k != "elapsed_s"}
    for lhs, rhs in zip(fresh, warmed):
        assert drop(lhs.as_dict()) == drop(rhs.as_dict())


# ----------------------------------------------------------------------
# CLI: journal/resume/shard, warnings, export failures
# ----------------------------------------------------------------------
def test_parse_shard():
    assert parse_shard("2/4") == (2, 4)
    with pytest.raises(SweepError):
        parse_shard("2-4")
    with pytest.raises(SweepError):
        parse_shard("a/b")


def _cli_grid(*extra):
    return ["--geometry", "8x8", "--algorithm", "MATS+",
            "--algorithm", "March C-", "--backend", "vectorized",
            "--quiet", *extra]


def test_cli_journal_then_resume_completes_the_campaign(tmp_path, capsys):
    journal = tmp_path / "run.jsonl"
    out = tmp_path / "out.json"
    assert sweep_main(_cli_grid("--journal", str(journal))) == 0
    lines = journal.read_text().splitlines()
    assert len(lines) == 3  # run-metadata header + one line per case
    # Kill simulation: drop the second completed case, then resume.
    journal.write_text(lines[0] + "\n" + lines[1] + "\n")
    assert sweep_main(_cli_grid("--journal", str(journal), "--resume",
                                "--json", str(out))) == 0
    assert len(journal.read_text().splitlines()) == 3
    assert len(SweepResult.from_json(out)) == 2
    capsys.readouterr()


def test_cli_shard_slices_are_disjoint_and_exhaustive(tmp_path, capsys):
    outs = [tmp_path / "s1.json", tmp_path / "s2.json"]
    assert sweep_main(_cli_grid("--shard", "1/2", "--json", str(outs[0]))) == 0
    assert sweep_main(_cli_grid("--shard", "2/2", "--json", str(outs[1]))) == 0
    shards = [SweepResult.from_json(path) for path in outs]
    assert [len(shard) for shard in shards] == [1, 1]
    assert {shard.records[0].algorithm for shard in shards} == \
        {"MATS+", "March C-"}
    capsys.readouterr()
    # The report title counts the shard's scenarios, not the full grid's.
    args = [a for a in _cli_grid("--shard", "1/2") if a != "--quiet"]
    assert sweep_main(args) == 0
    out = capsys.readouterr().out
    assert "(1 scenarios) — shard 1/2" in out
    assert "(2 scenarios)" not in out


def test_cli_rejects_bad_shards_and_resume_without_journal(capsys):
    assert sweep_main(_cli_grid("--shard", "3/2")) == 2
    assert "shard index" in capsys.readouterr().err
    assert sweep_main(_cli_grid("--shard", "nope")) == 2
    assert "must look like I/N" in capsys.readouterr().err
    assert sweep_main(_cli_grid("--resume")) == 2
    assert "--resume needs --journal" in capsys.readouterr().err
    # An empty shard of a tiny grid is reported, not silently a no-op.
    assert sweep_main(["--geometry", "8x8", "--algorithm", "MATS+",
                       "--quiet", "--shard", "2/2"]) == 2
    assert "is empty" in capsys.readouterr().err


def test_cli_resume_with_corrupt_journal_exits_2(tmp_path, capsys):
    journal = tmp_path / "corrupt.jsonl"
    journal.write_text("this is not a journal line\n")
    code = sweep_main(_cli_grid("--journal", str(journal), "--resume"))
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_cli_export_failure_exits_2_without_traceback(tmp_path, capsys):
    missing_dir = tmp_path / "no-such-dir" / "out.json"
    code = sweep_main(["--geometry", "8x8", "--algorithm", "MATS+",
                       "--backend", "vectorized", "--quiet",
                       "--json", str(missing_dir)])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_cli_warns_about_silently_ignored_flags(capsys):
    assert sweep_main(["--prr-grid", "--geometry", "8x64",
                       "--algorithm", "MATS+", "--backend", "vectorized",
                       "--order", "column-major", "--quiet"]) == 0
    err = capsys.readouterr().err
    assert "warning: --order is ignored" in err

    assert sweep_main(["--geometry", "8x8", "--algorithm", "MATS+",
                       "--backend", "vectorized", "--sample", "4",
                       "--quiet"]) == 0
    err = capsys.readouterr().err
    assert "warning: --sample only affects fault-coverage campaigns" in err

    assert sweep_main(["--paper-coverage", "--order", "snake", "--quiet",
                       "--sample", "0", "--backend", "vectorized"]) == 0
    err = capsys.readouterr().err
    assert "warning: --order is overridden by the --paper/--paper-coverage " \
        "presets" in err

    assert sweep_main(["--geometry", "8x8", "--algorithm", "MATS+",
                       "--backend", "vectorized", "--seed", "7",
                       "--quiet"]) == 0
    err = capsys.readouterr().err
    assert "warning: --seed only affects coverage and PRR campaigns" in err


def test_cli_does_not_warn_when_flags_apply(capsys):
    assert sweep_main(["--coverage", "--geometry", "8x8",
                       "--algorithm", "MATS+", "--sample", "2",
                       "--order", "row-major", "--quiet"]) == 0
    assert "warning" not in capsys.readouterr().err
