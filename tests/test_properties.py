"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.march import (
    AddressingDirection,
    MarchAlgorithm,
    MarchElement,
    MarchOperation,
    OperationKind,
    parse_march,
    walk,
)
from repro.march.ordering import (
    AddressComplementOrder,
    ColumnMajorOrder,
    PseudoRandomOrder,
    RowMajorOrder,
    RowMajorSnakeOrder,
    verify_is_permutation,
)
from repro.march.parser import parse_march_detailed
from repro.power.accounting import EnergyLedger
from repro.power.sources import PowerSource
from repro.sram.bitline import BitLinePair
from repro.sram.geometry import ArrayGeometry


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
operations = st.builds(
    MarchOperation,
    kind=st.sampled_from([OperationKind.READ, OperationKind.WRITE]),
    value=st.integers(min_value=0, max_value=1),
)

elements = st.builds(
    MarchElement,
    direction=st.sampled_from(list(AddressingDirection)),
    operations=st.lists(operations, min_size=1, max_size=6).map(tuple),
)

algorithms = st.builds(
    MarchAlgorithm,
    name=st.just("generated"),
    elements=st.lists(elements, min_size=1, max_size=5).map(tuple),
)

geometries = st.builds(
    ArrayGeometry,
    rows=st.integers(min_value=1, max_value=8),
    columns=st.integers(min_value=1, max_value=8),
)


# ----------------------------------------------------------------------
# March notation properties
# ----------------------------------------------------------------------
class TestNotationProperties:
    @given(algorithms)
    def test_notation_round_trips(self, algorithm):
        reparsed = parse_march(algorithm.to_notation(), name=algorithm.name)
        assert reparsed.to_notation() == algorithm.to_notation()
        assert reparsed.operation_count == algorithm.operation_count
        assert reparsed.read_count == algorithm.read_count
        assert reparsed.write_count == algorithm.write_count

    @given(algorithms)
    def test_ascii_notation_equivalent(self, algorithm):
        reparsed = parse_march(algorithm.to_notation(ascii_only=True))
        assert reparsed.to_notation() == algorithm.to_notation()

    @given(algorithms)
    def test_counts_are_consistent(self, algorithm):
        assert algorithm.read_count + algorithm.write_count == algorithm.operation_count
        assert algorithm.element_count == len(algorithm.elements)

    @given(algorithms)
    def test_data_inversion_is_involution(self, algorithm):
        twice = algorithm.with_inverted_data().with_inverted_data()
        assert twice.to_notation() == algorithm.to_notation()

    @given(algorithms, st.data())
    def test_round_trip_survives_notation_noise(self, algorithm, data):
        """parse ∘ format is identity even under whitespace/brace noise.

        The parser accepts braceless notation, arbitrary spacing around
        separators and mixed comma/space operation lists; none of it may
        change what the algorithm *is*.
        """
        notation = algorithm.to_notation()
        if data.draw(st.booleans(), label="strip braces"):
            notation = notation.strip().removeprefix("{").removesuffix("}")
        pad = data.draw(st.sampled_from(["", " ", "  ", "\t"]), label="padding")
        notation = notation.replace(";", f"{pad};{pad}").replace(",", f",{pad}")
        reparsed = parse_march(notation, name=algorithm.name)
        assert reparsed.to_notation() == algorithm.to_notation()

    @given(algorithms, st.integers(min_value=1, max_value=3))
    def test_delay_markers_are_counted_and_dropped(self, algorithm, delays):
        chunks = algorithm.to_notation().strip("{}").split(";")
        for _ in range(delays):
            chunks.insert(len(chunks) // 2, " Del ")
        result = parse_march_detailed(";".join(chunks), name=algorithm.name)
        assert result.ignored_delays == delays
        assert result.algorithm.to_notation() == algorithm.to_notation()


# ----------------------------------------------------------------------
# Address order properties (DOF 1)
# ----------------------------------------------------------------------
#: Every deterministic order class the registry ships (the pseudo-random
#: order needs a seed and is exercised separately).
DETERMINISTIC_ORDERS = [RowMajorOrder, ColumnMajorOrder, RowMajorSnakeOrder,
                        AddressComplementOrder]


class TestOrderingProperties:
    @given(geometries, st.sampled_from(DETERMINISTIC_ORDERS))
    def test_orders_are_permutations(self, geometry, order_cls):
        assert verify_is_permutation(order_cls(geometry))

    @given(geometries, st.integers(min_value=0, max_value=10_000))
    def test_pseudo_random_orders_are_permutations(self, geometry, seed):
        assert verify_is_permutation(PseudoRandomOrder(geometry, seed=seed))

    @given(geometries, st.integers(min_value=0, max_value=10_000))
    def test_descending_is_reverse_of_ascending(self, geometry, seed):
        order = PseudoRandomOrder(geometry, seed=seed)
        assert list(order.descending()) == list(reversed(list(order.ascending())))

    @given(geometries, st.sampled_from(DETERMINISTIC_ORDERS + [PseudoRandomOrder]))
    def test_inverse_composes_to_identity(self, geometry, order_cls):
        """The DOF-1 precondition: every order is a *bijection* of the
        address space, so position -> coordinate -> position is the
        identity in both composition orders — which is exactly what lets
        fault-coverage arguments permute freely over address sequences.
        """
        order = order_cls(geometry)
        inverse = {order.coordinate_at(position): position
                   for position in range(len(order))}
        assert len(inverse) == geometry.word_count  # injective, hence bijective
        for position in range(len(order)):
            assert inverse[order.coordinate_at(position)] == position
        for address in range(geometry.word_count):
            coordinate = geometry.coordinates_of(address)
            assert order.coordinate_at(inverse[coordinate]) == coordinate

    @given(geometries, st.sampled_from(DETERMINISTIC_ORDERS + [PseudoRandomOrder]))
    @settings(max_examples=30, deadline=None)
    def test_descending_inverse_is_reversed_ascending_inverse(self, geometry,
                                                              order_cls):
        """Descending traversal is the reverse permutation, never a new one."""
        order = order_cls(geometry)
        ascending = list(order.ascending())
        descending = list(order.descending())
        assert descending == ascending[::-1]
        assert sorted(ascending) == sorted(descending)

    @given(geometries, algorithms)
    @settings(max_examples=30, deadline=None)
    def test_walk_visits_every_address_once_per_element(self, geometry, algorithm):
        order = RowMajorOrder(geometry)
        steps = list(walk(algorithm, order))
        assert len(steps) == algorithm.operation_count * geometry.word_count
        # every element visits every address exactly once
        for element_index, element in enumerate(algorithm.elements):
            visited = [(s.row, s.word) for s in steps
                       if s.element_index == element_index and s.operation_index == 0]
            assert sorted(set(visited)) == sorted(visited)
            assert len(visited) == geometry.word_count
        # row-transition flags: at most #elements * #rows for a word-line
        # order (element boundaries that stay on the same row need none),
        # and every actual row change must be flagged.
        flagged = sum(1 for s in steps if s.last_access_on_row)
        upper = algorithm.element_count * geometry.rows
        assert upper - (algorithm.element_count - 1) <= flagged <= upper
        for current, following in zip(steps, steps[1:]):
            if following.row != current.row:
                assert current.last_access_on_row


# ----------------------------------------------------------------------
# Energy / electrical invariants
# ----------------------------------------------------------------------
class TestEnergyProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=500),
                              st.sampled_from(list(PowerSource)),
                              st.floats(min_value=0.0, max_value=1e-9,
                                        allow_nan=False)),
                    max_size=60))
    def test_ledger_totals_are_additive_and_non_negative(self, bookings):
        ledger = EnergyLedger(clock_period=3e-9)
        expected_total = 0.0
        for cycle, source, energy in bookings:
            ledger.record_energy(cycle, source, energy)
            expected_total += energy
        assert ledger.total_energy() == pytest.approx(expected_total)
        assert ledger.total_energy() >= 0.0
        assert sum(ledger.energy_by_source().values()) == pytest.approx(expected_total)
        if ledger.cycle_count:
            assert sum(ledger.per_cycle_energy()) == pytest.approx(expected_total)

    @given(st.integers(min_value=1, max_value=1024),
           st.floats(min_value=0.0, max_value=100e-9, allow_nan=False),
           st.booleans())
    def test_bitline_voltage_stays_in_rails(self, rows, duration, pulls_bl):
        pair = BitLinePair(rows=rows)
        pair.float_with_cell(pulls_bl, duration)
        assert 0.0 <= pair.v_bl <= pair.vdd + 1e-12
        assert 0.0 <= pair.v_blb <= pair.vdd + 1e-12
        result = pair.restore()
        assert result.energy >= 0.0
        assert pair.is_fully_precharged()

    @given(st.integers(min_value=1, max_value=1024),
           st.integers(min_value=0, max_value=1))
    def test_write_then_restore_energy_positive(self, rows, value):
        pair = BitLinePair(rows=rows)
        pair.force_write_levels(value)
        assert pair.restore().energy > 0.0


# ----------------------------------------------------------------------
# Geometry properties
# ----------------------------------------------------------------------
class TestGeometryProperties:
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=64))
    def test_address_roundtrip(self, rows, columns):
        geometry = ArrayGeometry(rows=rows, columns=columns)
        for address in range(0, geometry.word_count, max(1, geometry.word_count // 17)):
            row, word = geometry.coordinates_of(address)
            assert geometry.address_of(row, word) == address

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    def test_word_columns_partition_the_array(self, rows, words_per_row, bits_per_word):
        columns = words_per_row * bits_per_word
        geometry = ArrayGeometry(rows=rows, columns=columns, bits_per_word=bits_per_word)
        seen = set()
        for word in range(geometry.words_per_row):
            word_columns = geometry.columns_of_word(word)
            assert len(word_columns) == bits_per_word
            assert not (seen & set(word_columns))
            seen.update(word_columns)
        assert seen == set(range(columns))


# ----------------------------------------------------------------------
# Banked address-map properties
# ----------------------------------------------------------------------
from repro.sram.geometry import BANK_INTERLEAVE_MODES  # noqa: E402

banked_geometries = st.builds(
    lambda banks, rows_per_bank, columns, interleave: ArrayGeometry(
        rows=banks * rows_per_bank, columns=columns, banks=banks,
        bank_interleave=interleave),
    banks=st.sampled_from([1, 2, 4, 8]),
    rows_per_bank=st.integers(min_value=1, max_value=8),
    columns=st.integers(min_value=1, max_value=16),
    interleave=st.sampled_from(sorted(BANK_INTERLEAVE_MODES)),
)


class TestBankedAddressMapProperties:
    @given(banked_geometries)
    def test_bank_decode_encode_round_trip(self, geometry):
        """decode ∘ encode is the identity on every physical row."""
        for row in range(geometry.rows):
            bank, local = geometry.bank_decode(row)
            assert 0 <= bank < geometry.banks
            assert 0 <= local < geometry.rows_per_bank
            assert geometry.bank_encode(bank, local) == row
            assert geometry.bank_of_row(row) == bank

    @given(banked_geometries)
    def test_bank_map_is_inverse_permutation(self, geometry):
        """encode ∘ decode is the identity in the other composition order:
        the bank map is a bijection rows -> banks x rows_per_bank, so the
        banked array is an exact re-labelling of the monolithic one."""
        decoded = {geometry.bank_decode(row) for row in range(geometry.rows)}
        assert len(decoded) == geometry.rows  # injective, hence bijective
        for bank in range(geometry.banks):
            for local in range(geometry.rows_per_bank):
                row = geometry.bank_encode(bank, local)
                assert geometry.bank_decode(row) == (bank, local)

    @given(banked_geometries)
    def test_banks_partition_the_rows(self, geometry):
        """Every bank owns exactly rows_per_bank rows; no row is shared."""
        by_bank = {}
        for row in range(geometry.rows):
            by_bank.setdefault(geometry.bank_of_row(row), set()).add(row)
        assert set(by_bank) == set(range(geometry.banks))
        for rows in by_bank.values():
            assert len(rows) == geometry.rows_per_bank

    @given(st.integers(min_value=1, max_value=32),
           st.sampled_from(sorted(BANK_INTERLEAVE_MODES)))
    def test_single_bank_is_the_identity_map(self, rows, interleave):
        """banks=1 must degenerate to the monolithic array exactly."""
        geometry = ArrayGeometry(rows=rows, columns=4, banks=1,
                                 bank_interleave=interleave)
        for row in range(rows):
            assert geometry.bank_decode(row) == (0, row)
            assert geometry.bank_encode(0, row) == row
