"""The static-analysis pass: framework, checkers, fixtures, CLI contract.

Three layers of assertions:

* the fixture corpus (``tests/data/lint_fixtures/``) pins every rule to
  exact (rule, file, line) findings, with a clean mirror package that
  must produce none;
* the merged tree itself is lint-clean — ``src/repro`` with the empty
  baseline is the gate CI enforces;
* the CLI honours the documented exit-code contract (0 clean /
  1 findings / 2 usage or crash) and the baseline machinery suppresses
  without hiding.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools import Baseline, BaselineError, LintRunner, load_project
from repro.devtools.checkers import all_checkers
from repro.devtools.checkers.global_state import GlobalStateChecker
from repro.devtools.findings import Finding
from repro.devtools.lint import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.devtools.project import LintUsageError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "data" / "lint_fixtures"
VIOLATIONS = FIXTURES / "violations"
CLEAN = FIXTURES / "clean"

#: Every finding the violation corpus must produce — exactly these,
#: nothing else.  Paths are relative to ``lint_fixtures/``; line numbers
#: are pinned to the committed fixture sources.
EXPECTED_VIOLATIONS = {
    ("RPR001", "violations/lintfix/eager_numpy.py", 1),
    ("RPR001", "violations/lintseam/engine/impl.py", 1),
    ("RPR002", "violations/lintfix/engine/dispatch.py", 10),
    ("RPR002", "violations/lintfix/engine/dispatch.py", 14),
    ("RPR002", "violations/lintfix/engine/dispatch.py", 18),
    ("RPR003", "violations/lintfix/sweep/journal.py", 5),
    ("RPR003", "violations/lintfix/sweep/journal.py", 10),
    ("RPR004", "violations/lintfix/engine/facade.py", 10),
    ("RPR004", "violations/lintfix/engine/facade.py", 13),
    ("RPR004", "violations/lintfix/engine/facade.py", 15),
    ("RPR004", "violations/lintfix/engine/facade.py", 20),
    ("RPR005", "violations/lintfix/fallback.py", 8),
    ("RPR006", "violations/lintfix/records.py", 5),
    ("RPR006", "violations/lintfix/records.py", 15),
    ("RPR006", "violations/lintfix/records.py", 20),
    ("RPR007", "violations/lintfix/ledger_fmt.py", 3),
    ("RPR007", "violations/lintfix/loader_fmt.py", 11),
}

ALL_RULES = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
             "RPR007")


def run_lint(*paths, rules=None):
    project = load_project([Path(p) for p in paths])
    return LintRunner(all_checkers()).select(rules).run(project)


def corpus_key(finding):
    tail = finding.path.split("lint_fixtures/")[-1]
    return finding.rule, tail, finding.line


# ---------------------------------------------------------------------------
# Fixture corpus: every rule triggers exactly where seeded, clean mirror
# triggers nowhere.
# ---------------------------------------------------------------------------
class TestFixtureCorpus:
    def test_violations_exact(self):
        findings = run_lint(VIOLATIONS)
        assert {corpus_key(f) for f in findings} == EXPECTED_VIOLATIONS
        assert len(findings) == len(EXPECTED_VIOLATIONS)

    def test_every_rule_has_a_triggering_fixture(self):
        rules = {f.rule for f in run_lint(VIOLATIONS)}
        assert rules == set(ALL_RULES)

    def test_clean_mirror_has_zero_findings(self):
        assert run_lint(CLEAN) == []

    def test_rpr001_seam_resolution_names_the_chain(self):
        [finding] = [f for f in run_lint(VIOLATIONS)
                     if f.rule == "RPR001" and "lintseam" in f.path]
        assert "lintseam -> lintseam.engine.impl -> numpy" in finding.message

    def test_per_rule_selection(self):
        for rule in ALL_RULES:
            findings = run_lint(VIOLATIONS, rules=[rule])
            assert findings, f"{rule} found nothing in the corpus"
            assert {f.rule for f in findings} == {rule}


# ---------------------------------------------------------------------------
# The merged tree is the ultimate clean fixture: the CI gate must hold
# with the empty baseline, not a suppression list.
# ---------------------------------------------------------------------------
class TestMergedTree:
    def test_src_repro_is_lint_clean(self):
        assert run_lint(REPO_ROOT / "src" / "repro") == []

    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.keys == ()

    def test_reintroduced_process_global_is_caught(self, tmp_path):
        """A PR-8-style process-global in a scratch copy of the real
        ``engine/dispatch.py`` must be caught by RPR002."""
        source = (REPO_ROOT / "src" / "repro" / "engine"
                  / "dispatch.py").read_text(encoding="utf-8")
        package = tmp_path / "scratch" / "engine"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text("")
        copied = package / "dispatch.py"
        copied.write_text(source, encoding="utf-8")
        checker = LintRunner([GlobalStateChecker()])
        assert checker.run(load_project([tmp_path / "scratch"])) == []

        copied.write_text(source + textwrap.dedent("""

            last_backend_used = None


            def _note_backend_used_globally(name):
                global last_backend_used
                last_backend_used = name
        """), encoding="utf-8")
        findings = checker.run(load_project([tmp_path / "scratch"]))
        assert len(findings) == 1
        assert findings[0].rule == "RPR002"
        assert "last_backend_used" in findings[0].message


# ---------------------------------------------------------------------------
# Framework behaviour.
# ---------------------------------------------------------------------------
class TestFramework:
    def test_rule_ids_are_the_catalog(self):
        assert LintRunner(all_checkers()).rule_ids() == list(ALL_RULES)

    def test_select_unknown_rule_is_usage_error(self):
        with pytest.raises(LintUsageError, match="RPR999"):
            LintRunner(all_checkers()).select(["RPR999"])

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintUsageError, match="does not exist"):
            load_project([Path("definitely-not-here")])

    def test_unparseable_source_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintUsageError, match="not valid Python"):
            load_project([bad])

    def test_findings_sort_stably(self):
        findings = run_lint(VIOLATIONS)
        assert findings == sorted(findings)

    def test_finding_render_is_path_line_rule(self):
        finding = Finding(path="a/b.py", line=3, rule="RPR001", message="x")
        assert finding.render() == "a/b.py:3: RPR001 x"


# ---------------------------------------------------------------------------
# Baseline machinery: explicit, validated, suppress-don't-hide.
# ---------------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_suppresses(self, tmp_path):
        findings = run_lint(VIOLATIONS)
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(Baseline.document(findings)))
        gating, suppressed = Baseline.load(path).split(findings)
        assert gating == []
        assert sorted(suppressed) == findings

    def test_empty_baseline_suppresses_nothing(self):
        findings = run_lint(VIOLATIONS)
        gating, suppressed = Baseline.empty().split(findings)
        assert gating == findings
        assert suppressed == []

    def test_line_drift_does_not_invalidate_entries(self):
        finding = Finding(path="p.py", line=10, rule="RPR002", message="m")
        moved = Finding(path="p.py", line=99, rule="RPR002", message="m")
        baseline = Baseline((finding.key(),))
        gating, suppressed = baseline.split([moved])
        assert gating == [] and suppressed == [moved]

    @pytest.mark.parametrize("payload", [
        "not json at all",
        json.dumps({"format": "something-else", "version": 1,
                    "findings": []}),
        json.dumps({"format": "repro-lint-baseline", "version": 99,
                    "findings": []}),
        json.dumps({"format": "repro-lint-baseline", "version": 1}),
        json.dumps({"format": "repro-lint-baseline", "version": 1,
                    "findings": [{"rule": "RPR001"}]}),
    ])
    def test_malformed_baseline_raises(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload)
        with pytest.raises(BaselineError):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# CLI exit-code contract: 0 clean / 1 findings / 2 usage or crash.
# ---------------------------------------------------------------------------
class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(CLEAN)]) == EXIT_CLEAN
        assert "clean:" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([str(VIOLATIONS)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert f"{len(EXPECTED_VIOLATIONS)} finding(s)" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely-not-here"]) == EXIT_USAGE
        assert capsys.readouterr().err.startswith("error:")

    def test_unknown_rule_exits_two(self, capsys):
        assert main([str(CLEAN), "--rules", "RPR999"]) == EXIT_USAGE
        assert "RPR999" in capsys.readouterr().err

    def test_default_target_is_src_repro(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main([]) == EXIT_CLEAN

    def test_rules_flag_without_ids_lists_catalog(self, capsys):
        assert main(["--rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_json_report_shape(self, capsys):
        assert main([str(VIOLATIONS), "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-lint-report"
        assert payload["rules"] == list(ALL_RULES)
        assert len(payload["findings"]) == len(EXPECTED_VIOLATIONS)
        assert payload["suppressed"] == []

    def test_write_then_apply_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main([str(VIOLATIONS), "--write-baseline",
                     str(baseline)]) == EXIT_CLEAN
        assert main([str(VIOLATIONS), "--baseline",
                     str(baseline)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "baseline-suppressed" in out

    def test_malformed_baseline_exits_two(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        assert main([str(CLEAN), "--baseline",
                     str(baseline)]) == EXIT_USAGE
        assert capsys.readouterr().err.startswith("error:")

    def test_output_file_mirrors_stdout(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        main([str(VIOLATIONS), "--format", "json", "--output", str(report)])
        out = capsys.readouterr().out
        assert json.loads(report.read_text()) == json.loads(out)

    def test_rule_restriction(self, capsys):
        assert main([str(VIOLATIONS), "--rules", "RPR005"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RPR005" in out and "RPR002" not in out

    def test_module_execution_end_to_end(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", str(CLEAN)],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert result.returncode == EXIT_CLEAN, result.stderr
        assert "clean:" in result.stdout
