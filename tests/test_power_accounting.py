"""Unit tests for the energy ledger and the closed-form power model."""

import pytest

from repro.power.accounting import AccountingError, EnergyEvent, EnergyLedger
from repro.power.model import PowerModel
from repro.power.sources import OVERHEAD_SOURCES, PowerSource, SAVINGS_TARGET_SOURCES
from repro.sram.geometry import ArrayGeometry, PAPER_GEOMETRY


class TestEnergyEvent:
    def test_validation(self):
        with pytest.raises(AccountingError):
            EnergyEvent(cycle=-1, source=PowerSource.OPERATION_READ, energy=1.0)
        with pytest.raises(AccountingError):
            EnergyEvent(cycle=0, source=PowerSource.OPERATION_READ, energy=-1.0)


class TestEnergyLedger:
    def make(self, **kwargs):
        return EnergyLedger(clock_period=3e-9, label="test", **kwargs)

    def test_totals_and_average_power(self):
        ledger = self.make()
        ledger.record_energy(0, PowerSource.OPERATION_READ, 1e-12)
        ledger.record_energy(1, PowerSource.OPERATION_WRITE, 2e-12)
        ledger.record_energy(1, PowerSource.PRECHARGE_UNSELECTED, 3e-12)
        assert ledger.total_energy() == pytest.approx(6e-12)
        assert ledger.cycle_count == 2
        assert ledger.average_power() == pytest.approx(6e-12 / (2 * 3e-9))
        assert ledger.average_energy_per_cycle() == pytest.approx(3e-12)

    def test_source_filtering_and_fractions(self):
        ledger = self.make()
        ledger.record_energy(0, PowerSource.OPERATION_READ, 1e-12)
        ledger.record_energy(0, PowerSource.PRECHARGE_UNSELECTED, 3e-12)
        assert ledger.total_energy([PowerSource.PRECHARGE_UNSELECTED]) == pytest.approx(3e-12)
        assert ledger.source_fraction(PowerSource.PRECHARGE_UNSELECTED) == pytest.approx(0.75)
        assert ledger.source_fraction(PowerSource.LEAKAGE) == 0.0

    def test_zero_energy_bookings_dropped(self):
        ledger = self.make()
        ledger.record_energy(0, PowerSource.OPERATION_READ, 0.0)
        assert ledger.total_energy() == 0.0
        assert ledger.events == []

    def test_negative_energy_rejected(self):
        with pytest.raises(AccountingError):
            self.make().record_energy(0, PowerSource.OPERATION_READ, -1.0)

    def test_per_cycle_series(self):
        ledger = self.make()
        ledger.record_energy(0, PowerSource.OPERATION_READ, 1e-12)
        ledger.record_energy(2, PowerSource.OPERATION_READ, 2e-12)
        assert ledger.per_cycle_energy() == pytest.approx([1e-12, 0.0, 2e-12])
        assert ledger.peak_cycle_energy() == pytest.approx(2e-12)
        assert len(ledger.per_cycle_power()) == 3

    def test_lightweight_ledger_drops_events_but_keeps_totals(self):
        ledger = self.make(keep_events=False, track_per_cycle=False)
        ledger.record_energy(0, PowerSource.OPERATION_READ, 1e-12)
        assert ledger.total_energy() == pytest.approx(1e-12)
        assert ledger.events == []
        with pytest.raises(AccountingError):
            ledger.per_cycle_energy()

    def test_energy_by_column(self):
        ledger = self.make()
        ledger.record_energy(0, PowerSource.OPERATION_READ, 1e-12, column=3)
        ledger.record_energy(1, PowerSource.PRECHARGE_UNSELECTED, 2e-12, column=3)
        ledger.record_energy(1, PowerSource.PRECHARGE_UNSELECTED, 5e-12, column=4)
        per_column = ledger.energy_by_column()
        assert per_column[3] == pytest.approx(3e-12)
        only_res = ledger.energy_by_column(PowerSource.PRECHARGE_UNSELECTED)
        assert only_res[3] == pytest.approx(2e-12)

    def test_summary_and_merge(self):
        first = self.make()
        first.record_energy(0, PowerSource.OPERATION_READ, 1e-12)
        second = self.make()
        second.record_energy(0, PowerSource.OPERATION_WRITE, 2e-12)
        merged = first.merged_with(second)
        assert merged.total_energy() == pytest.approx(3e-12)
        assert merged.cycle_count == 2
        summary = merged.summary()
        assert summary.cycles == 2
        assert summary.total_energy == pytest.approx(3e-12)

    def test_merge_requires_event_retention(self):
        a = self.make(keep_events=False)
        b = self.make()
        with pytest.raises(AccountingError):
            a.merged_with(b)

    def test_invalid_clock_period(self):
        with pytest.raises(AccountingError):
            EnergyLedger(clock_period=0.0)


class TestPowerSourceEnum:
    def test_paper_source_indices(self):
        assert PowerSource.PRECHARGE_UNSELECTED.paper_source_index == 1
        assert PowerSource.ROW_TRANSITION_RESTORE.paper_source_index == 2
        assert PowerSource.LPTEST_DRIVER.paper_source_index == 3
        assert PowerSource.CELL_RES.paper_source_index == 4
        assert PowerSource.CONTROL_LOGIC.paper_source_index == 5
        assert PowerSource.LEAKAGE.paper_source_index is None

    def test_savings_and_overhead_sets_disjoint(self):
        assert not (SAVINGS_TARGET_SOURCES & OVERHEAD_SOURCES)

    def test_operation_flag(self):
        assert PowerSource.OPERATION_READ.is_operation
        assert not PowerSource.CELL_RES.is_operation


class TestPowerModel:
    def test_write_costs_more_than_read(self):
        energies = PowerModel(PAPER_GEOMETRY).energies()
        assert energies.write > energies.read > 0

    def test_res_energy_three_orders_above_cell_res(self):
        # Paper Section 5, source 4: cell RES power is three orders of
        # magnitude below the pre-charge RES power.
        energies = PowerModel(PAPER_GEOMETRY).energies()
        assert energies.res_per_column / energies.cell_res == pytest.approx(1000.0)

    def test_per_event_energies_are_positive(self):
        energies = PowerModel(PAPER_GEOMETRY).energies()
        for name, value in energies.as_dict().items():
            assert value > 0, name

    def test_pa_matches_behavioural_definition(self, tech):
        model = PowerModel(PAPER_GEOMETRY, tech=tech)
        expected = tech.vdd * tech.res_equilibrium_current * (tech.clock_period / 2)
        assert model.res_energy_per_column() == pytest.approx(expected)

    def test_bitline_capacitance_drives_write_energy(self, tech):
        tall = PowerModel(ArrayGeometry(rows=512, columns=32), tech=tech).energies()
        short = PowerModel(ArrayGeometry(rows=32, columns=32), tech=tech).energies()
        assert tall.write > short.write
        assert tall.restore_per_column > short.restore_per_column

    def test_word_oriented_scales_per_bit(self, tech):
        bitwise = PowerModel(ArrayGeometry(rows=64, columns=64), tech=tech).energies()
        wordwise = PowerModel(ArrayGeometry(rows=64, columns=64, bits_per_word=8),
                              tech=tech).energies()
        assert wordwise.write > bitwise.write
