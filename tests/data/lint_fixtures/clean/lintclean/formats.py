"""RPR007 done right: version twins minted, loaders validate both.

``PACKET_FORMAT`` has its exact ``PACKET_VERSION`` twin;
``MANIFEST_FORMAT`` and ``MANIFEST_INDEX_FORMAT`` share the module's
single ``MANIFEST_VERSION`` (the journal-family shape: several document
roles, one schema version).
"""

import json

PACKET_FORMAT = "example-packet"
PACKET_VERSION = 1

MANIFEST_FORMAT = "example-manifest"
MANIFEST_INDEX_FORMAT = "example-manifest-index"
MANIFEST_VERSION = 2


def load_packet(text):
    payload = json.loads(text)
    if payload.get("format") != PACKET_FORMAT:
        raise ValueError("not a packet")
    if payload.get("version") != PACKET_VERSION:
        raise ValueError("wrong packet version")
    return payload


def load_manifest(text):
    payload = json.loads(text)
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError("not a manifest")
    if payload.get("version") != MANIFEST_VERSION:
        raise ValueError("wrong manifest version")
    return payload
