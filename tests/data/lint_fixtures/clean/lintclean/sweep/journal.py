"""RPR003 done right: atomic truncating writes, fsync'd appends."""

import json
import os
import tempfile


def save_report(path, payload):
    text = json.dumps(payload)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(str(path)) or ".")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, str(path))
    except BaseException:
        os.unlink(tmp)
        raise


def append_entry(path, line):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
