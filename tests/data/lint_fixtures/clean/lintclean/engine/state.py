"""RPR002 done right: lock-guarded and thread-local module state."""

import threading

_STATE_LOCK = threading.Lock()
_CACHE = {}
_SLOT = threading.local()


def remember(key, value):
    with _STATE_LOCK:
        _CACHE[key] = value


def forget_all():
    with _STATE_LOCK:
        _CACHE.clear()


def note(value):
    _SLOT.value = value  # thread-local: per-thread by construction
