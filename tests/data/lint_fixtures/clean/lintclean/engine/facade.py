"""RPR004 done right: threaded params, property-routed provenance."""

from dataclasses import dataclass


class BackendDispatcher:
    last_backend_used = None

    def note_backend_used(self, value):
        pass

    def dispatch(self, pattern, backend):
        return pattern, backend


class CleanFacade:
    def __init__(self):
        self._dispatcher = BackendDispatcher()

    @property
    def last_backend_used(self):
        return self._dispatcher.last_backend_used

    @last_backend_used.setter
    def last_backend_used(self, value):
        self._dispatcher.note_backend_used(value)

    def run(self, pattern, backend="auto"):
        return self._dispatcher.dispatch(pattern, backend)


@dataclass
class CleanResult:
    case_id: str
    backend: str
    backend_used: str
    kernel: str
    kernel_used: str

    def as_dict(self):
        return {
            "case_id": self.case_id,
            "backend": self.backend,
            "backend_used": self.backend_used,
            "kernel": self.kernel,
            "kernel_used": self.kernel_used,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            case_id=data["case_id"],
            backend=data["backend"],
            backend_used=data["backend_used"],
            kernel=data["kernel"],
            kernel_used=data["kernel_used"],
        )
