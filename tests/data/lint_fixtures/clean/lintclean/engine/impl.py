import numpy  # fine: nothing reaches this module eagerly


class Engine:
    def run(self):
        return numpy.zeros(1)
