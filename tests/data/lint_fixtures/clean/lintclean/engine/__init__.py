"""Lazy-export package done right: the heavy module stays lazy."""

from importlib import import_module

CHOICES = ("flat", "segmented")

_EXPORTS = {"Engine": ".impl"}


def __getattr__(name):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(name)
    module = import_module(target, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
