"""Clean corpus root: every rule's shape done right.

``CHOICES`` *is* bound at the top level of ``lintclean.engine``, so this
``from`` import never triggers the lazy-export seam — numpy (imported at
the top of ``lintclean.engine.impl``) stays unreachable from an eager
``import lintclean``.
"""

from .engine import CHOICES

__all__ = ["CHOICES"]
