"""RPR006 done right: schemas agree, imports tolerate old payloads."""

import json
from dataclasses import dataclass, fields

_RECORD_KINDS = {"power": "PowerRecord"}
_CASE_KINDS = {"power": "PowerCase"}


def _record_from_dict(cls, data):
    names = {spec.name for spec in fields(cls)}
    return cls(**{key: value for key, value in data.items()
                  if key in names})


@dataclass
class SteadyRecord:
    case_id: str
    energy: float

    def as_dict(self):
        # Renamed keys are presentation; every field's value is exported.
        return {"case": self.case_id, "E": self.energy}

    @classmethod
    def from_dict(cls, data):
        return _record_from_dict(cls, data)

    def to_line(self):
        return json.dumps({"case_id": self.case_id, "energy": self.energy})

    @classmethod
    def from_line(cls, line):
        data = json.loads(line)
        return cls(case_id=data["case_id"], energy=data.get("energy", 0.0))
