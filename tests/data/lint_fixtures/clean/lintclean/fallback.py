"""RPR005 done right: fallback warnings go through the claim registry."""

import threading
import warnings

_WARNED = set()
_WARN_LOCK = threading.Lock()


def _claim_fallback_warning(tier):
    with _WARN_LOCK:
        if tier in _WARNED:
            return False
        _WARNED.add(tier)
        return True


def resolve(tier):
    if tier == "gpu" and _claim_fallback_warning(tier):
        warnings.warn(
            "kernel 'gpu' unavailable; falling back to 'flat'",
            RuntimeWarning)
    return "flat"
