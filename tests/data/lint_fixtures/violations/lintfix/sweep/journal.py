"""RPR003 violations: raw writes in a durability-bearing package."""


def save_report(path, text):
    with open(path, "w", encoding="utf-8") as handle:  # line 5: non-atomic
        handle.write(text)


def append_line(path, line):
    with open(path, "a", encoding="utf-8") as handle:  # line 10: no fsync
        handle.write(line + "\n")
