"""Violation corpus root: eagerly pulls in the numpy-importing module."""

from . import eager_numpy

__all__ = ["eager_numpy"]
