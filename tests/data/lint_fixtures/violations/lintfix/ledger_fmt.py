"""RPR007 violation: a format tag with no version constant at all."""

WIDGET_FORMAT = "example-widget-ledger"  # line 3: no WIDGET_VERSION twin


def describe():
    return {"format": WIDGET_FORMAT}
