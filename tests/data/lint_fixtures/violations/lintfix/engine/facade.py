"""RPR004 violations: dispatch provenance contract breaks."""

from dataclasses import dataclass


class BackendDispatcher:
    pass


class LooseFacade:  # line 10: constructs a dispatcher, no property
    def __init__(self):
        self.dispatcher = BackendDispatcher()
        self.last_backend_used = None  # line 13: bare provenance attribute

    def run(self, pattern, backend="auto"):  # line 15: 'backend' unused
        return self.dispatcher


@dataclass
class LooseResult:  # line 20: 'backend' without 'backend_used' twin
    case_id: str
    backend: str

    def as_dict(self):
        return {"case_id": self.case_id, "backend": self.backend}

    @classmethod
    def from_dict(cls, data):
        return cls(case_id=data["case_id"], backend=data["backend"])
