"""RPR002 violations: the PR-8 process-global provenance shapes."""

last_backend_used = None

_SEEN = {}


def note_backend_used(name):
    global last_backend_used
    last_backend_used = name  # line 10: unguarded module-global rebind


def record_seen(name):
    _SEEN[name] = True  # line 14: unguarded module-container mutation


def reset_seen():
    _SEEN.clear()  # line 18: unguarded mutator call
