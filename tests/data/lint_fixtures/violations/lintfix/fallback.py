"""RPR005 violation: raw fallback warning outside the claim registry."""

import warnings


def resolve(tier):
    if tier == "gpu":
        warnings.warn(  # line 8: raw backend/kernel fallback warning
            "kernel 'gpu' unavailable; falling back to 'flat'",
            RuntimeWarning)
    return "flat"
