import numpy  # RPR001: top-level numpy import reachable from the package root

ZEROS = numpy.zeros(4)
