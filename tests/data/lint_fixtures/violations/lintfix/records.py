"""RPR006 violations: export-schema drift in a record module."""

from dataclasses import dataclass

_RECORD_KINDS = {"power": "PowerRecord", "coverage": "CoverageRecord"}
_CASE_KINDS = {"power": "PowerCase"}  # line 6: disagrees with _RECORD_KINDS


@dataclass
class DriftRecord:
    case_id: str
    energy: float
    kernel_used: str

    def as_dict(self):  # line 15: drops 'kernel_used'
        return {"case_id": self.case_id, "energy": self.energy}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)  # line 20: raw splat, crashes on old journals
