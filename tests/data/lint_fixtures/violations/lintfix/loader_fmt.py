"""RPR007 violation: a loader that checks the tag but not the version."""

import json

PACKET_FORMAT = "example-packet"
PACKET_VERSION = 1


def load_packet(text):
    payload = json.loads(text)
    if payload.get("format") != PACKET_FORMAT:  # line 11: no version check
        raise ValueError("not a packet")
    return payload
