"""Seam corpus root: numpy is reached only through the lazy-export map.

``Engine`` is *not* bound at the top level of ``lintseam.engine``; this
``from`` import therefore triggers the package's PEP 562 ``__getattr__``
eagerly, which imports ``lintseam.engine.impl`` — and with it numpy.
RPR001 must resolve that chain statically.
"""

from .engine import Engine

__all__ = ["Engine"]
