import numpy  # RPR001: loaded eagerly through the __getattr__ seam

ONES = numpy.ones(2)


class Engine:
    def run(self):
        return ONES
