"""A PEP 562 lazy-export package whose map hides a numpy import."""

from importlib import import_module

_EXPORTS = {"Engine": ".impl"}


def __getattr__(name):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(name)
    module = import_module(target, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
