"""The campaign serving layer (repro.serve).

Covers the content-addressed result cache (atomic stores, torn/foreign
entries read as misses), the replayable workload trace (torn-tail
tolerance mirroring the run journal), the fingerprint digest / case
round-trip seam the cache key is built on, and the live service: miss →
hit, duplicate concurrent requests coalescing into one engine pass,
cache survival across restarts, self-healing after a torn cache write,
and the JSON/HTTP protocol's error mapping.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serve import (
    ResultCache,
    ServeClient,
    ServeError,
    TraceError,
    WorkloadTrace,
    load_trace,
    replay,
    replay_cases,
    running_service,
)
from repro.sweep import (
    CoverageCase,
    PrrCase,
    SweepCase,
    SweepError,
    case_fingerprint,
    case_from_dict,
    execute_case,
    fingerprint_digest,
)


def _power_case(**overrides):
    payload = {"kind": "power", "rows": 8, "columns": 8,
               "algorithm": "MATS+", "order": "row-major",
               "backend": "vectorized"}
    payload.update(overrides)
    return payload


def _prr_case(**overrides):
    payload = {"kind": "prr", "rows": 8, "columns": 64,
               "algorithm": "MATS+", "backend": "vectorized"}
    payload.update(overrides)
    return payload


def _drop_elapsed(record):
    return {key: value for key, value in record.items() if key != "elapsed_s"}


# ----------------------------------------------------------------------
# Fingerprints and the case round-trip
# ----------------------------------------------------------------------
def test_case_from_dict_inverts_case_fingerprint():
    cases = [
        SweepCase(rows=8, columns=8, algorithm="MATS+"),
        CoverageCase(rows=8, columns=8, algorithm="MATS+",
                     include_coupling=False, sample=2, seed=7),
        PrrCase(rows=8, columns=64, algorithm="MATS+", backend="vectorized"),
    ]
    for case in cases:
        rebuilt = case_from_dict(case_fingerprint(case))
        assert rebuilt == case
        assert case_fingerprint(rebuilt) == case_fingerprint(case)


def test_case_from_dict_defaults_to_power_kind():
    data = _power_case()
    del data["kind"]
    assert isinstance(case_from_dict(data), SweepCase)


def test_case_from_dict_rejects_bad_input():
    with pytest.raises(SweepError, match="unknown case kind"):
        case_from_dict({"kind": "nope"})
    with pytest.raises(SweepError, match="unknown field"):
        case_from_dict(_power_case(surprise=1))
    with pytest.raises(SweepError, match="invalid 'power' case"):
        case_from_dict({"kind": "power", "rows": 8})  # missing fields
    with pytest.raises(SweepError, match="must be a JSON object"):
        case_from_dict(["not", "a", "dict"])
    with pytest.raises(SweepError, match="unknown address order"):
        case_from_dict(_power_case(order="zigzag"))


def test_fingerprint_digest_is_canonical():
    fingerprint = case_fingerprint(case_from_dict(_prr_case()))
    shuffled = dict(reversed(list(fingerprint.items())))
    assert fingerprint_digest(fingerprint) == fingerprint_digest(shuffled)
    other = case_fingerprint(case_from_dict(_prr_case(rows=16)))
    assert fingerprint_digest(fingerprint) != fingerprint_digest(other)


# ----------------------------------------------------------------------
# Result cache: atomic stores, defensive reads
# ----------------------------------------------------------------------
def test_cache_store_and_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    fingerprint = case_fingerprint(case_from_dict(_power_case()))
    digest = fingerprint_digest(fingerprint)
    assert cache.get(digest) is None
    cache.store(digest, fingerprint, "power", {"total_energy": 1.5})
    entry = cache.get(digest)
    assert entry["record"] == {"total_energy": 1.5}
    assert entry["fingerprint"] == fingerprint
    assert entry["kind"] == "power"
    assert len(cache) == 1
    # The fan-out layout: two-hex prefix directory, digest-named file.
    assert cache.path_for(digest).parent.name == digest[:2]


def test_cache_torn_or_foreign_entries_read_as_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    digest = "ab" + "0" * 62
    path = cache.path_for(digest)
    path.parent.mkdir(parents=True)
    # Torn final write (kill mid-store on a non-atomic filesystem).
    path.write_text('{"format": "repro-serve-cache", "version": 1, "rec')
    assert cache.get(digest) is None
    # Foreign/meaningless content.
    path.write_text('{"format": "something-else", "version": 1}')
    assert cache.get(digest) is None
    path.write_text("[1, 2, 3]")
    assert cache.get(digest) is None
    # A later store heals the slot.
    cache.store(digest, {"kind": "power"}, "power", {"x": 1})
    assert cache.get(digest)["record"] == {"x": 1}


# ----------------------------------------------------------------------
# Result cache: size-capped LRU eviction
# ----------------------------------------------------------------------
def _digest(n):
    return f"{n:02x}" + "0" * 62


def _fill(cache, n, record=None):
    digest = _digest(n)
    cache.store(digest, {"kind": "power", "n": n}, "power",
                record or {"n": n})
    return digest


def test_cache_lru_eviction_by_entry_count(tmp_path):
    cache = ResultCache(tmp_path / "cache", max_entries=2)
    first, second, third = (_fill(cache, n) for n in range(3))
    # Oldest store is the victim; the two most recent survive.
    assert cache.get(first) is None
    assert cache.get(second) is not None
    assert cache.get(third) is not None
    assert len(cache) == 2
    assert cache.evictions == 1
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["max_entries"] == 2
    assert stats["evictions"] == 1


def test_cache_lru_hit_refreshes_recency(tmp_path):
    cache = ResultCache(tmp_path / "cache", max_entries=2)
    first = _fill(cache, 1)
    second = _fill(cache, 2)
    assert cache.get(first) is not None  # refresh: first is now newest
    third = _fill(cache, 3)
    assert cache.get(second) is None     # second became the LRU victim
    assert cache.get(first) is not None
    assert cache.get(third) is not None


def test_cache_restore_same_digest_does_not_double_count(tmp_path):
    cache = ResultCache(tmp_path / "cache", max_entries=2)
    first = _fill(cache, 1)
    _fill(cache, 1, record={"n": 1, "rewritten": True})  # same digest
    second = _fill(cache, 2)
    assert cache.evictions == 0
    assert cache.get(first)["record"] == {"n": 1, "rewritten": True}
    assert cache.get(second) is not None


def test_cache_max_bytes_eviction(tmp_path):
    probe = ResultCache(tmp_path / "probe")
    entry_size = len(json.dumps(
        probe.store(_digest(0), {"kind": "power", "n": 0}, "power",
                    {"n": 0}), sort_keys=True))
    cache = ResultCache(tmp_path / "cache",
                        max_bytes=entry_size * 2 + entry_size // 2)
    first, second, third = (_fill(cache, n) for n in range(3))
    assert cache.get(first) is None
    assert cache.get(second) is not None and cache.get(third) is not None
    assert cache.stats()["bytes"] <= cache.max_bytes


def test_cache_lru_order_survives_a_restart(tmp_path):
    import os as _os

    root = tmp_path / "cache"
    writer = ResultCache(root)  # unbounded: no index, just files
    digests = [_fill(writer, n) for n in range(3)]
    # Pin distinct mtimes (filesystem timestamp granularity is coarser
    # than this test): oldest first, newest last.
    for age, digest in enumerate(digests):
        _os.utime(writer.path_for(digest), (1000 + age, 1000 + age))
    restarted = ResultCache(root, max_entries=3)
    _fill(restarted, 3)  # over capacity: evicts the mtime-oldest entry
    assert restarted.get(digests[0]) is None
    assert all(restarted.get(d) is not None for d in digests[1:])


def test_cache_unbounded_never_evicts(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for n in range(5):
        _fill(cache, n)
    assert len(cache) == 5
    assert cache.evictions == 0
    stats = cache.stats()
    assert stats["max_entries"] is None and stats["max_bytes"] is None
    assert stats["entries"] == 5 and stats["bytes"] > 0


def test_cache_rejects_nonpositive_caps(tmp_path):
    with pytest.raises(ValueError, match="max_entries"):
        ResultCache(tmp_path / "cache", max_entries=0)
    with pytest.raises(ValueError, match="max_bytes"):
        ResultCache(tmp_path / "cache", max_bytes=0)


def test_service_surfaces_cache_stats_and_evicts(tmp_path):
    with running_service(tmp_path / "cache", cache_max_entries=2) \
            as (service, host, port):
        with ServeClient(host, port) as client:
            for rows in (8, 16, 32):
                client.submit(_power_case(rows=rows))
            stats = client.stats()
    cache_stats = stats["cache"]
    assert cache_stats["max_entries"] == 2
    assert cache_stats["entries"] == 2
    assert cache_stats["evictions"] == 1
    assert len(service.cache) == 2


def test_serve_cli_cache_flags(tmp_path):
    from repro.serve.__main__ import build_parser, main as serve_main

    args = build_parser().parse_args(
        ["--cache-max-entries", "100", "--cache-max-bytes", "1048576"])
    assert args.cache_max_entries == 100
    assert args.cache_max_bytes == 1048576
    assert build_parser().parse_args([]).cache_max_entries is None
    assert serve_main(["--cache-max-entries", "0"]) == 2
    assert serve_main(["--cache-max-bytes", "-5"]) == 2


# ----------------------------------------------------------------------
# Workload trace: append, load, torn tail
# ----------------------------------------------------------------------
def test_trace_round_trip_and_replay(tmp_path):
    path = tmp_path / "trace.jsonl"
    case = case_fingerprint(case_from_dict(_power_case()))
    with WorkloadTrace(path) as trace:
        trace.record("d1", "power", case, "miss", 12.5)
        trace.record("d1", "power", case, "hit", 0.2)
    requests = load_trace(path)
    assert [r["outcome"] for r in requests] == ["miss", "hit"]
    assert [r["seq"] for r in requests] == [0, 1]
    assert requests[0]["case"] == case
    assert requests[0]["arrival_s"] <= requests[1]["arrival_s"]
    assert list(replay_cases(path)) == [case, case]


def test_trace_drops_a_torn_tail_but_rejects_foreign_content(tmp_path):
    path = tmp_path / "trace.jsonl"
    with WorkloadTrace(path) as trace:
        trace.record("d1", "power", {}, "miss", 1.0)
    with path.open("a") as handle:
        handle.write('{"arrival_s": 3.14, "case"')  # kill mid-append
    assert len(load_trace(path)) == 1
    path.write_text('{"arrival_s": 1.0, "bogus": true}\n{"not-a-trace')
    with pytest.raises(TraceError):
        load_trace(path)
    path.write_text("complete garbage\n")
    with pytest.raises(TraceError):
        load_trace(path)
    assert load_trace(tmp_path / "missing.jsonl") == []


# ----------------------------------------------------------------------
# The live service
# ----------------------------------------------------------------------
def test_serve_miss_then_hit_and_record_fidelity(tmp_path):
    case = _prr_case()
    with running_service(tmp_path / "cache",
                         trace_path=tmp_path / "trace.jsonl") \
            as (service, host, port):
        with ServeClient(host, port) as client:
            first = client.submit(case)
            second = client.submit(case)
    assert first["served"]["outcome"] == "miss"
    assert second["served"]["outcome"] == "hit"
    assert first["kind"] == second["kind"] == "prr"
    assert first["served"]["digest"] == second["served"]["digest"] == \
        fingerprint_digest(case_fingerprint(case_from_dict(case)))
    # The served record is exactly what a local execution measures
    # (elapsed_s is a wall-clock observation, everything else pinned).
    local = execute_case(case_from_dict(case))
    assert _drop_elapsed(second["record"]) == _drop_elapsed(local.as_dict())
    outcomes = [r["outcome"] for r in load_trace(tmp_path / "trace.jsonl")]
    assert outcomes == ["miss", "hit"]


def test_duplicate_concurrent_requests_share_one_engine_pass(tmp_path):
    case = _power_case()
    duplicates = 8
    # A generous coalescing window so the whole burst lands in one wave.
    with running_service(tmp_path / "cache", coalesce_window=0.25) \
            as (service, host, port):
        responses = replay(host, port, [case] * duplicates,
                           concurrency=duplicates)
        stats = service.stats_snapshot()
    assert len(responses) == duplicates
    # Identical responses for every duplicate (modulo how each was served).
    records = [json.dumps(r["record"], sort_keys=True) for r in responses]
    assert len(set(records)) == 1
    # The engine ran the scenario exactly once, in exactly one wave.
    assert stats["engine_passes"] == 1
    assert stats["executed_cases"] == 1
    assert stats["misses"] == 1
    assert stats["coalesced"] + stats["hits"] == duplicates - 1
    assert stats["requests"] == duplicates
    assert stats["errors"] == 0


def test_distinct_cases_coalesce_into_one_wave(tmp_path):
    # Two distinct same-geometry scenarios submitted inside one window
    # execute as one BatchedGridEngine wave (one stacked kernel pass).
    cases = [_power_case(algorithm="MATS+"), _power_case(algorithm="March C-")]
    with running_service(tmp_path / "cache", coalesce_window=0.25) \
            as (service, host, port):
        responses = replay(host, port, cases, concurrency=2)
        stats = service.stats_snapshot()
    assert [r["served"]["outcome"] for r in responses] == ["miss", "miss"]
    assert stats["engine_passes"] == 1
    assert stats["executed_cases"] == 2


def test_cache_survives_a_service_restart(tmp_path):
    case = _prr_case()
    with running_service(tmp_path / "cache") as (service, host, port):
        with ServeClient(host, port) as client:
            first = client.submit(case)
    with running_service(tmp_path / "cache") as (service, host, port):
        with ServeClient(host, port) as client:
            again = client.submit(case)
        stats = service.stats_snapshot()
    assert first["served"]["outcome"] == "miss"
    assert again["served"]["outcome"] == "hit"
    assert stats["engine_passes"] == 0  # no engine was ever touched
    assert _drop_elapsed(again["record"]) == _drop_elapsed(first["record"])


def test_torn_cache_entry_is_reexecuted_and_healed(tmp_path):
    # Kill-during-store round trip: a torn cache entry must read as a
    # miss (re-execute) and the store must heal the slot for later hits.
    case = _prr_case()
    digest = fingerprint_digest(case_fingerprint(case_from_dict(case)))
    cache_dir = tmp_path / "cache"
    with running_service(cache_dir) as (service, host, port):
        with ServeClient(host, port) as client:
            first = client.submit(case)
    entry_path = ResultCache(cache_dir).path_for(digest)
    torn = entry_path.read_text()[:60]
    entry_path.write_text(torn)  # simulate the torn final write
    with running_service(cache_dir) as (service, host, port):
        with ServeClient(host, port) as client:
            healed = client.submit(case)
            again = client.submit(case)
        stats = service.stats_snapshot()
    assert healed["served"]["outcome"] == "miss"  # torn entry = miss
    assert again["served"]["outcome"] == "hit"    # ...and it healed
    assert stats["engine_passes"] == 1
    assert _drop_elapsed(healed["record"]) == _drop_elapsed(first["record"])


def test_protocol_error_mapping(tmp_path):
    with running_service(tmp_path / "cache") as (service, host, port):
        conn = http.client.HTTPConnection(host, port, timeout=30)

        def exchange(method, path, body=None):
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"}
                         if body else {})
            response = conn.getresponse()
            return response.status, json.loads(response.read())

        status, payload = exchange("POST", "/v1/run",
                                   json.dumps({"case": {"kind": "nope"}}))
        assert status == 400 and "unknown case kind" in payload["error"]
        status, _ = exchange("POST", "/v1/run", "not json")
        assert status == 400
        status, _ = exchange("POST", "/v1/run", json.dumps({"nope": 1}))
        assert status == 400
        status, _ = exchange("GET", "/nowhere")
        assert status == 404
        status, _ = exchange("PUT", "/v1/run", "{}")
        assert status == 405
        conn.close()
        # The client surfaces non-200 responses as ServeError.
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="unknown case kind"):
                client.submit({"kind": "nope"})
        # Malformed cases count as request errors; routing rejections
        # (bad path/method/body framing) never reach the campaign layer.
        assert service.stats_snapshot()["errors"] == 2


def test_stats_and_health_endpoints(tmp_path):
    with running_service(tmp_path / "cache") as (service, host, port):
        with ServeClient(host, port) as client:
            assert client.health() == {"status": "ok"}
            stats = client.stats()
    assert stats["requests"] == 0
    assert stats["workers"] >= 1
    assert "uptime_s" in stats


# ----------------------------------------------------------------------
# Thread-local provenance under the worker pool (the PR's dispatch fix)
# ----------------------------------------------------------------------
def test_served_records_carry_truthful_provenance(tmp_path):
    # Whatever thread executed the wave, the record must name the
    # backend/kernel that actually ran it.
    with running_service(tmp_path / "cache", workers=2) \
            as (service, host, port):
        responses = replay(
            host, port,
            [_prr_case(), _prr_case(rows=16), _power_case()], concurrency=3)
    for response in responses:
        record = response["record"]
        assert record["backend_used"] == "vectorized"
        assert record["kernel_used"] in ("flat", "jit", "gpu")
