"""Unit tests for the pre-charge circuit, timing, decoders and periphery."""

import pytest

from repro.sram.bitline import BitLinePair
from repro.sram.geometry import ArrayGeometry
from repro.sram.periphery import (
    ColumnDecoder,
    DecoderError,
    RowDecoder,
    SenseAmplifier,
    WriteDriver,
)
from repro.sram.precharge import PrechargeCircuit, PrechargeError
from repro.sram.timing import ClockCycle, CyclePhase, TestClock


class TestClockCycle:
    def test_from_technology_matches_paper(self, tech):
        cycle = ClockCycle.from_technology(tech)
        assert cycle.period == pytest.approx(3e-9)
        assert cycle.operation_duration == pytest.approx(1.5e-9)
        assert cycle.restoration_duration == pytest.approx(1.5e-9)

    def test_phase_durations_sum_to_period(self):
        cycle = ClockCycle(period=3e-9, operation_fraction=0.4)
        assert (cycle.phase_duration(CyclePhase.OPERATION)
                + cycle.phase_duration(CyclePhase.RESTORATION)) == pytest.approx(3e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockCycle(period=0.0)
        with pytest.raises(ValueError):
            ClockCycle(period=1e-9, operation_fraction=1.0)

    def test_test_clock_accumulates(self, tech):
        clock = TestClock(ClockCycle.from_technology(tech))
        clock.tick(10)
        assert clock.elapsed_cycles == 10
        assert clock.elapsed_time == pytest.approx(30e-9)
        with pytest.raises(ValueError):
            clock.tick(-1)
        clock.reset()
        assert clock.elapsed_cycles == 0


class TestPrechargeCircuit:
    def test_res_energy_is_pa(self, tech):
        circuit = PrechargeCircuit(column_index=0, rows=512, tech=tech)
        duration = 1.5e-9
        energy = circuit.sustain_res(duration)
        assert energy == pytest.approx(tech.vdd * tech.res_equilibrium_current * duration)

    def test_res_partial_stress_scales(self, tech):
        circuit = PrechargeCircuit(column_index=0, rows=512, tech=tech)
        full = circuit.sustain_res(1.5e-9, stress_fraction=1.0)
        half = circuit.sustain_res(1.5e-9, stress_fraction=0.5)
        assert half == pytest.approx(full / 2)

    def test_disabled_circuit_refuses_work(self, tech):
        circuit = PrechargeCircuit(column_index=0, rows=16, tech=tech)
        circuit.set_enabled(False)
        with pytest.raises(PrechargeError):
            circuit.sustain_res(1e-9)
        with pytest.raises(PrechargeError):
            circuit.restore_pair(BitLinePair(rows=16, tech=tech))

    def test_restore_pair_accumulates_energy(self, tech):
        circuit = PrechargeCircuit(column_index=0, rows=16, tech=tech)
        pair = BitLinePair(rows=16, tech=tech)
        pair.force_write_levels(1)
        result = circuit.restore_pair(pair)
        assert result.energy > 0
        assert circuit.activity.restorations == 1
        assert circuit.activity.energy == pytest.approx(result.energy)

    def test_invalid_arguments(self, tech):
        circuit = PrechargeCircuit(column_index=0, rows=16, tech=tech)
        with pytest.raises(PrechargeError):
            circuit.sustain_res(-1.0)
        with pytest.raises(PrechargeError):
            circuit.sustain_res(1e-9, stress_fraction=2.0)
        with pytest.raises(PrechargeError):
            PrechargeCircuit(column_index=-1, rows=16, tech=tech)


class TestRowDecoder:
    def test_wordline_energy_only_on_row_change(self, tech):
        geometry = ArrayGeometry(rows=16, columns=16)
        decoder = RowDecoder(geometry, tech=tech)
        _, first = decoder.select(3)
        _, again = decoder.select(3)
        _, other = decoder.select(4)
        assert first > again            # word line already asserted
        assert other > again
        assert decoder.activations == 3

    def test_deselect_forces_recharge(self, tech):
        geometry = ArrayGeometry(rows=16, columns=16)
        decoder = RowDecoder(geometry, tech=tech)
        _, first = decoder.select(3)
        decoder.deselect()
        _, second = decoder.select(3)
        assert second == pytest.approx(first)

    def test_out_of_range_row(self, tech):
        decoder = RowDecoder(ArrayGeometry(rows=4, columns=4), tech=tech)
        with pytest.raises(DecoderError):
            decoder.select(4)


class TestColumnDecoderSenseWrite:
    def test_column_decoder_returns_word_columns(self, tech):
        geometry = ArrayGeometry(rows=4, columns=16, bits_per_word=4)
        decoder = ColumnDecoder(geometry, tech=tech)
        columns, energy = decoder.select(2)
        assert columns == geometry.columns_of_word(2)
        assert energy > 0
        with pytest.raises(DecoderError):
            decoder.select(99)

    def test_sense_amplifier_polarity(self, tech):
        sense = SenseAmplifier(tech=tech)
        # Cell storing '1' discharges BL -> negative differential -> read '1'.
        value, energy = sense.sense(-0.4)
        assert value == 1 and energy > 0
        value, _ = sense.sense(+0.4)
        assert value == 0
        with pytest.raises(ValueError):
            sense.sense(0.0)

    def test_write_driver_energy_scales_with_swing(self, tech):
        driver = WriteDriver(tech=tech)
        small = driver.drive_energy(0.0, 500e-15)
        large = driver.drive_energy(1.6, 500e-15)
        assert large > small
        with pytest.raises(ValueError):
            driver.drive_energy(-1.0, 500e-15)
