"""SweepRunner: grid construction, execution, export round-trips, CLI."""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    CoverageCase,
    CoverageRecord,
    INVARIANCE_ORDERS,
    PrrCase,
    PrrRecord,
    SweepCase,
    SweepError,
    SweepResult,
    SweepRunner,
    coverage_grid,
    execute_case,
    paper_coverage_cases,
    paper_prr_cases,
    paper_table1_cases,
    parse_geometry,
    prr_grid,
    run_case,
    run_coverage_case,
    run_prr_case,
    sweep_grid,
)
from repro.sweep.__main__ import main as sweep_main


# ----------------------------------------------------------------------
# Grid construction / validation
# ----------------------------------------------------------------------
def test_parse_geometry_forms():
    assert parse_geometry("16x8").rows == 16
    assert parse_geometry("16x8").columns == 8
    assert parse_geometry("16x8x4").bits_per_word == 4
    assert parse_geometry((4, 4)).cell_count == 16
    geometry = parse_geometry(parse_geometry("8x8"))
    assert geometry.rows == 8
    with pytest.raises(SweepError):
        parse_geometry("16")
    with pytest.raises(SweepError):
        parse_geometry("axb")


def test_sweep_grid_cross_product():
    cases = sweep_grid(["8x8", "16x16"], ["March C-", "MATS+"],
                       orders=("row-major", "column-major"))
    assert len(cases) == 2 * 2 * 2
    labels = {case.label() for case in cases}
    assert len(labels) == len(cases)  # every scenario is distinct


def test_case_validation_fails_fast():
    with pytest.raises(SweepError):
        SweepCase(rows=8, columns=8, algorithm="March C-", order="no-such-order")
    with pytest.raises(KeyError):
        SweepCase(rows=8, columns=8, algorithm="No Such March")


def test_paper_preset_covers_table1():
    cases = paper_table1_cases()
    assert len(cases) == 5
    assert all(case.rows == 512 and case.columns == 512 for case in cases)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def test_run_case_produces_consistent_record():
    # A wide array, where suppressing the unselected pre-charges wins (on
    # tiny square arrays the restore overhead can make the PRR negative).
    case = SweepCase(rows=8, columns=64, algorithm="MATS+", backend="vectorized")
    record = run_case(case)
    assert record.backend_used == "vectorized"
    assert record.algorithm == "MATS+"
    assert record.cycles_per_mode == 5 * 8 * 64
    assert record.passed
    assert 0.0 < record.measured_prr < 1.0
    assert record.functional_power_w > record.low_power_power_w


def test_runner_serial_and_parallel_agree():
    cases = sweep_grid(["8x8"], ["MATS+", "March C-"], backends=("vectorized",))
    serial = SweepRunner(cases, processes=1).run()
    parallel = SweepRunner(cases, processes=2).run()
    assert len(serial) == len(parallel) == 2
    for lhs, rhs in zip(serial, parallel):
        assert lhs.algorithm == rhs.algorithm
        assert lhs.measured_prr == pytest.approx(rhs.measured_prr, rel=1e-12)


def test_runner_rejects_empty_and_bad_process_counts():
    with pytest.raises(SweepError):
        SweepRunner([])
    case = SweepCase(rows=4, columns=4, algorithm="MATS+")
    with pytest.raises(SweepError):
        SweepRunner([case], processes=0)


# ----------------------------------------------------------------------
# Export / import round-trips
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_result():
    cases = sweep_grid(["8x8"], ["MATS+"], backends=("vectorized",))
    return SweepRunner(cases).run()


def test_json_round_trip(small_result, tmp_path):
    path = small_result.to_json(tmp_path / "sweep.json")
    payload = json.loads(path.read_text())
    assert payload["format"] == "repro-sweep"
    loaded = SweepResult.from_json(path)
    assert [r.as_dict() for r in loaded] == [r.as_dict() for r in small_result]


def test_csv_round_trip(small_result, tmp_path):
    path = small_result.to_csv(tmp_path / "sweep.csv")
    loaded = SweepResult.from_csv(path)
    assert len(loaded) == len(small_result)
    original = small_result.records[0]
    restored = loaded.records[0]
    assert restored.algorithm == original.algorithm
    assert restored.rows == original.rows
    assert restored.passed == original.passed
    assert restored.measured_prr == pytest.approx(original.measured_prr, rel=1e-12)


def test_from_json_rejects_foreign_documents(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"format": "something-else", "records": []}))
    with pytest.raises(SweepError):
        SweepResult.from_json(path)


def test_render_produces_table(small_result):
    text = small_result.render(title="Unit sweep")
    assert "Unit sweep" in text
    assert "MATS+" in text
    assert "PRR measured" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_runs_grid_and_exports(tmp_path, capsys):
    json_path = tmp_path / "out.json"
    csv_path = tmp_path / "out.csv"
    exit_code = sweep_main([
        "--geometry", "8x8", "--algorithm", "MATS+",
        "--backend", "vectorized",
        "--json", str(json_path), "--csv", str(csv_path),
    ])
    assert exit_code == 0
    captured = capsys.readouterr().out
    assert "MATS+" in captured
    assert json_path.exists() and csv_path.exists()
    assert len(SweepResult.from_json(json_path)) == 1
    assert len(SweepResult.from_csv(csv_path)) == 1


def test_cli_quiet_mode_is_quiet(capsys):
    exit_code = sweep_main(["--geometry", "8x8", "--algorithm", "MATS+",
                            "--quiet"])
    assert exit_code == 0
    assert capsys.readouterr().out == ""


# ----------------------------------------------------------------------
# Coverage campaigns (the DOF-1 sweeps)
# ----------------------------------------------------------------------
def test_coverage_case_validation_fails_fast():
    with pytest.raises(SweepError):
        CoverageCase(rows=8, columns=8, algorithm="March C-", orders=())
    with pytest.raises(SweepError):
        CoverageCase(rows=8, columns=8, algorithm="March C-",
                     orders=("no-such-order",))
    with pytest.raises(SweepError):
        CoverageCase(rows=8, columns=8, algorithm="March C-",
                     backend="no-such-backend")
    with pytest.raises(SweepError):
        CoverageCase(rows=8, columns=8, algorithm="March C-",
                     include_single=False, include_coupling=False)
    with pytest.raises(KeyError):
        CoverageCase(rows=8, columns=8, algorithm="No Such March")


def test_coverage_grid_and_paper_preset():
    cases = coverage_grid(["8x8", "16x16"], ["March C-", "MATS+"], seed=3)
    assert len(cases) == 4
    assert all(case.orders == INVARIANCE_ORDERS for case in cases)
    assert all(case.seed == 3 for case in cases)
    with pytest.raises(SweepError):
        coverage_grid(["8x8x4"], ["March C-"])  # word-oriented: no campaigns

    paper = paper_coverage_cases(seed=11)
    assert len(paper) == 2
    assert all(case.rows == 512 and case.columns == 512 for case in paper)
    assert all(case.seed == 11 for case in paper)
    # MATS+ only targets single-cell faults; its invariance check must not
    # include the coupling battery (fortuitous detections are order-dependent).
    by_name = {case.algorithm: case for case in paper}
    assert by_name["March C-"].include_coupling
    assert not by_name["MATS+"].include_coupling


def test_run_coverage_case_produces_consistent_record():
    case = CoverageCase(rows=16, columns=16, algorithm="March C-",
                        backend="vectorized", seed=7, sample=4)
    record = run_coverage_case(case)
    assert record.backend_used == "vectorized"
    assert record.seed == 7 and record.sample == 4
    assert record.locations == 4 + 5  # corners + centre + sampled
    assert record.total_faults == record.locations * 21  # 9 single + 12 coupling
    assert record.invariant and record.disagreements == 0
    assert 0.85 < record.coverage <= 1.0
    assert record.detected_faults == round(record.coverage * record.total_faults)


def test_execute_case_dispatches_on_case_kind():
    power = execute_case(SweepCase(rows=8, columns=8, algorithm="MATS+",
                                   backend="vectorized"))
    campaign = execute_case(CoverageCase(rows=8, columns=8, algorithm="MATS+",
                                         include_coupling=False))
    assert hasattr(power, "measured_prr")
    assert isinstance(campaign, CoverageRecord)
    with pytest.raises(SweepError):
        execute_case("not a case")


def test_runner_handles_mixed_case_kinds():
    cases = [SweepCase(rows=8, columns=8, algorithm="MATS+",
                       backend="vectorized"),
             CoverageCase(rows=8, columns=8, algorithm="March C-")]
    result = SweepRunner(cases).run()
    assert len(result) == 2
    assert "Coverage" in result.render()


@pytest.fixture(scope="module")
def coverage_result():
    cases = coverage_grid(["8x8"], ["March C-"], seed=5)
    return SweepRunner(cases).run()


def test_coverage_json_round_trip_records_seed(coverage_result, tmp_path):
    path = coverage_result.to_json(tmp_path / "campaign.json")
    payload = json.loads(path.read_text())
    assert payload["records"][0]["kind"] == "coverage"
    assert payload["records"][0]["seed"] == 5
    loaded = SweepResult.from_json(path)
    assert isinstance(loaded.records[0], CoverageRecord)
    assert [r.as_dict() for r in loaded] == [r.as_dict() for r in coverage_result]


def test_coverage_csv_round_trip_records_seed(coverage_result, tmp_path):
    path = coverage_result.to_csv(tmp_path / "campaign.csv")
    header = path.read_text().splitlines()[0]
    assert "seed" in header.split(",")
    loaded = SweepResult.from_csv(path)
    restored = loaded.records[0]
    assert isinstance(restored, CoverageRecord)
    assert restored.seed == 5
    assert restored.invariant == coverage_result.records[0].invariant
    assert restored.coverage == pytest.approx(
        coverage_result.records[0].coverage, rel=1e-12)


def test_mixed_sweep_round_trips_json_but_not_csv(small_result,
                                                  coverage_result, tmp_path):
    mixed = SweepResult(small_result.records + coverage_result.records)
    loaded = SweepResult.from_json(mixed.to_json(tmp_path / "mixed.json"))
    assert {type(record).__name__ for record in loaded.records} == \
        {"SweepRecord", "CoverageRecord"}
    with pytest.raises(SweepError):
        mixed.to_csv(tmp_path / "mixed.csv")


def test_cli_coverage_runs_and_exports(tmp_path, capsys):
    json_path = tmp_path / "campaign.json"
    csv_path = tmp_path / "campaign.csv"
    exit_code = sweep_main([
        "--coverage", "--geometry", "8x8", "--algorithm", "March C-",
        "--seed", "9", "--sample", "3",
        "--json", str(json_path), "--csv", str(csv_path),
    ])
    assert exit_code == 0
    captured = capsys.readouterr().out
    assert "DOF-1" in captured
    payload = json.loads(json_path.read_text())
    assert payload["records"][0]["seed"] == 9
    assert payload["records"][0]["invariant"] is True
    assert len(SweepResult.from_csv(csv_path)) == 1


def test_cli_rejects_paper_and_coverage_combination(capsys):
    exit_code = sweep_main(["--paper", "--coverage"])
    assert exit_code == 2
    assert "paper-coverage" in capsys.readouterr().err


# ----------------------------------------------------------------------
# BIST PRR-campaign cases (measured vs. analytical Table 1)
# ----------------------------------------------------------------------
def test_prr_grid_and_paper_preset():
    cases = prr_grid(["8x64", "8x32x2"], ["March C-", "MATS+"],
                     backend="vectorized", seed=3)
    assert len(cases) == 4
    assert {case.label() for case in cases} == {
        "March C- PRR @ 8x64 [vectorized]",
        "MATS+ PRR @ 8x64 [vectorized]",
        "March C- PRR @ 8x32x2 [vectorized]",
        "MATS+ PRR @ 8x32x2 [vectorized]",
    }
    assert all(case.seed == 3 for case in cases)
    paper = paper_prr_cases()
    assert len(paper) == 5
    assert all(case.rows == 512 and case.columns == 512
               and case.backend == "vectorized" for case in paper)


def test_prr_case_validation_fails_fast():
    with pytest.raises(SweepError):
        PrrCase(rows=8, columns=8, algorithm="March C-", backend="no-such")
    with pytest.raises(KeyError):
        PrrCase(rows=8, columns=8, algorithm="No Such March")


def test_execute_case_dispatches_prr_cases():
    record = execute_case(PrrCase(rows=8, columns=64, algorithm="MATS+",
                                  backend="vectorized"))
    assert isinstance(record, PrrRecord)
    assert record.cycles_per_mode == 5 * 8 * 64
    assert record.passed and record.within_bracket
    assert "PRR measured" in record.table_row()
    assert "in bracket" in record.progress_line()


@pytest.fixture(scope="module")
def prr_result():
    cases = prr_grid(["8x64"], ["MATS+"], backend="vectorized", seed=11)
    return SweepRunner(cases).run()


def test_prr_json_round_trip_records_backend_and_seed(prr_result, tmp_path):
    path = prr_result.to_json(tmp_path / "prr.json")
    payload = json.loads(path.read_text())
    assert payload["records"][0]["kind"] == "prr"
    assert payload["records"][0]["seed"] == 11
    assert payload["records"][0]["backend_used"] == "vectorized"
    loaded = SweepResult.from_json(path)
    assert isinstance(loaded.records[0], PrrRecord)
    assert [r.as_dict() for r in loaded] == [r.as_dict() for r in prr_result]


def test_prr_csv_round_trip_records_backend_and_seed(prr_result, tmp_path):
    path = prr_result.to_csv(tmp_path / "prr.csv")
    header = path.read_text().splitlines()[0].split(",")
    assert "seed" in header and "backend_used" in header
    loaded = SweepResult.from_csv(path)
    restored = loaded.records[0]
    assert isinstance(restored, PrrRecord)
    assert restored.seed == 11
    assert restored.within_bracket == prr_result.records[0].within_bracket
    assert restored.measured_prr == pytest.approx(
        prr_result.records[0].measured_prr, rel=1e-12)


def test_cli_prr_grid_runs_and_exports(tmp_path, capsys):
    json_path = tmp_path / "prr.json"
    exit_code = sweep_main([
        "--prr-grid", "--geometry", "8x64", "--algorithm", "MATS+",
        "--backend", "vectorized", "--json", str(json_path),
    ])
    assert exit_code == 0
    captured = capsys.readouterr().out
    assert "PRR measured" in captured
    payload = json.loads(json_path.read_text())
    assert payload["records"][0]["kind"] == "prr"
    assert payload["records"][0]["within_bracket"] is True


def test_cli_rejects_prr_and_coverage_combination(capsys):
    assert sweep_main(["--prr-grid", "--coverage"]) == 2
    assert sweep_main(["--paper-table1", "--paper"]) == 2
    capsys.readouterr()
