"""SweepRunner: grid construction, execution, export round-trips, CLI."""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    SweepCase,
    SweepError,
    SweepResult,
    SweepRunner,
    paper_table1_cases,
    parse_geometry,
    run_case,
    sweep_grid,
)
from repro.sweep.__main__ import main as sweep_main


# ----------------------------------------------------------------------
# Grid construction / validation
# ----------------------------------------------------------------------
def test_parse_geometry_forms():
    assert parse_geometry("16x8").rows == 16
    assert parse_geometry("16x8").columns == 8
    assert parse_geometry("16x8x4").bits_per_word == 4
    assert parse_geometry((4, 4)).cell_count == 16
    geometry = parse_geometry(parse_geometry("8x8"))
    assert geometry.rows == 8
    with pytest.raises(SweepError):
        parse_geometry("16")
    with pytest.raises(SweepError):
        parse_geometry("axb")


def test_sweep_grid_cross_product():
    cases = sweep_grid(["8x8", "16x16"], ["March C-", "MATS+"],
                       orders=("row-major", "column-major"))
    assert len(cases) == 2 * 2 * 2
    labels = {case.label() for case in cases}
    assert len(labels) == len(cases)  # every scenario is distinct


def test_case_validation_fails_fast():
    with pytest.raises(SweepError):
        SweepCase(rows=8, columns=8, algorithm="March C-", order="no-such-order")
    with pytest.raises(KeyError):
        SweepCase(rows=8, columns=8, algorithm="No Such March")


def test_paper_preset_covers_table1():
    cases = paper_table1_cases()
    assert len(cases) == 5
    assert all(case.rows == 512 and case.columns == 512 for case in cases)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def test_run_case_produces_consistent_record():
    # A wide array, where suppressing the unselected pre-charges wins (on
    # tiny square arrays the restore overhead can make the PRR negative).
    case = SweepCase(rows=8, columns=64, algorithm="MATS+", backend="vectorized")
    record = run_case(case)
    assert record.backend_used == "vectorized"
    assert record.algorithm == "MATS+"
    assert record.cycles_per_mode == 5 * 8 * 64
    assert record.passed
    assert 0.0 < record.measured_prr < 1.0
    assert record.functional_power_w > record.low_power_power_w


def test_runner_serial_and_parallel_agree():
    cases = sweep_grid(["8x8"], ["MATS+", "March C-"], backends=("vectorized",))
    serial = SweepRunner(cases, processes=1).run()
    parallel = SweepRunner(cases, processes=2).run()
    assert len(serial) == len(parallel) == 2
    for lhs, rhs in zip(serial, parallel):
        assert lhs.algorithm == rhs.algorithm
        assert lhs.measured_prr == pytest.approx(rhs.measured_prr, rel=1e-12)


def test_runner_rejects_empty_and_bad_process_counts():
    with pytest.raises(SweepError):
        SweepRunner([])
    case = SweepCase(rows=4, columns=4, algorithm="MATS+")
    with pytest.raises(SweepError):
        SweepRunner([case], processes=0)


# ----------------------------------------------------------------------
# Export / import round-trips
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_result():
    cases = sweep_grid(["8x8"], ["MATS+"], backends=("vectorized",))
    return SweepRunner(cases).run()


def test_json_round_trip(small_result, tmp_path):
    path = small_result.to_json(tmp_path / "sweep.json")
    payload = json.loads(path.read_text())
    assert payload["format"] == "repro-sweep"
    loaded = SweepResult.from_json(path)
    assert [r.as_dict() for r in loaded] == [r.as_dict() for r in small_result]


def test_csv_round_trip(small_result, tmp_path):
    path = small_result.to_csv(tmp_path / "sweep.csv")
    loaded = SweepResult.from_csv(path)
    assert len(loaded) == len(small_result)
    original = small_result.records[0]
    restored = loaded.records[0]
    assert restored.algorithm == original.algorithm
    assert restored.rows == original.rows
    assert restored.passed == original.passed
    assert restored.measured_prr == pytest.approx(original.measured_prr, rel=1e-12)


def test_from_json_rejects_foreign_documents(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"format": "something-else", "records": []}))
    with pytest.raises(SweepError):
        SweepResult.from_json(path)


def test_render_produces_table(small_result):
    text = small_result.render(title="Unit sweep")
    assert "Unit sweep" in text
    assert "MATS+" in text
    assert "PRR measured" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_runs_grid_and_exports(tmp_path, capsys):
    json_path = tmp_path / "out.json"
    csv_path = tmp_path / "out.csv"
    exit_code = sweep_main([
        "--geometry", "8x8", "--algorithm", "MATS+",
        "--backend", "vectorized",
        "--json", str(json_path), "--csv", str(csv_path),
    ])
    assert exit_code == 0
    captured = capsys.readouterr().out
    assert "MATS+" in captured
    assert json_path.exists() and csv_path.exists()
    assert len(SweepResult.from_json(json_path)) == 1
    assert len(SweepResult.from_csv(csv_path)) == 1


def test_cli_quiet_mode_is_quiet(capsys):
    exit_code = sweep_main(["--geometry", "8x8", "--algorithm", "MATS+",
                            "--quiet"])
    assert exit_code == 0
    assert capsys.readouterr().out == ""
