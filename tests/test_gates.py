"""Unit tests for the combinational gate network model."""

import pytest

from repro.circuit.gates import (
    AND2,
    INVERTER,
    LogicError,
    LogicNetwork,
    NAND2,
    NOR2,
    OR2,
    TGATE_MUX2,
    XOR2,
)


def build_half_adder():
    net = LogicNetwork("half-adder")
    net.add_input("a")
    net.add_input("b")
    net.add_gate(XOR2, "sum_gate", ("a", "b"), "sum")
    net.add_gate(AND2, "carry_gate", ("a", "b"), "carry")
    return net


class TestGateFunctions:
    @pytest.mark.parametrize("a,b,expected", [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_nand_truth_table(self, a, b, expected):
        net = LogicNetwork("n")
        net.add_input("a"); net.add_input("b")
        net.add_gate(NAND2, "g", ("a", "b"), "y")
        assert net.evaluate({"a": bool(a), "b": bool(b)}).value("y") == bool(expected)

    @pytest.mark.parametrize("sel,d0,d1,expected", [
        (0, 0, 1, 0), (0, 1, 0, 1), (1, 0, 1, 1), (1, 1, 0, 0),
    ])
    def test_transmission_gate_mux(self, sel, d0, d1, expected):
        net = LogicNetwork("m")
        for name in ("sel", "d0", "d1"):
            net.add_input(name)
        net.add_gate(TGATE_MUX2, "mux", ("sel", "d0", "d1"), "y")
        result = net.evaluate({"sel": bool(sel), "d0": bool(d0), "d1": bool(d1)})
        assert result.value("y") == bool(expected)

    def test_inverter_nor_or(self):
        net = LogicNetwork("misc")
        net.add_input("a"); net.add_input("b")
        net.add_gate(INVERTER, "inv", ("a",), "na")
        net.add_gate(NOR2, "nor", ("a", "b"), "nor_out")
        net.add_gate(OR2, "or", ("a", "b"), "or_out")
        res = net.evaluate({"a": True, "b": False})
        assert res.value("na") is False
        assert res.value("nor_out") is False
        assert res.value("or_out") is True

    def test_half_adder(self):
        net = build_half_adder()
        res = net.evaluate({"a": True, "b": True})
        assert res.value("sum") is False
        assert res.value("carry") is True


class TestNetworkStructure:
    def test_transistor_count(self):
        net = build_half_adder()
        assert net.transistor_count() == XOR2.transistors + AND2.transistors

    def test_output_driven_twice_rejected(self):
        net = LogicNetwork("n")
        net.add_input("a"); net.add_input("b")
        net.add_gate(NAND2, "g1", ("a", "b"), "y")
        with pytest.raises(LogicError):
            net.add_gate(NOR2, "g2", ("a", "b"), "y")

    def test_driving_primary_input_rejected(self):
        net = LogicNetwork("n")
        net.add_input("a"); net.add_input("b")
        with pytest.raises(LogicError):
            net.add_gate(NAND2, "g1", ("a", "b"), "a")

    def test_wrong_arity_rejected(self):
        net = LogicNetwork("n")
        net.add_input("a")
        with pytest.raises(LogicError):
            net.add_gate(NAND2, "g1", ("a",), "y")

    def test_missing_input_value_rejected(self):
        net = build_half_adder()
        with pytest.raises(LogicError):
            net.evaluate({"a": True})

    def test_undriven_net_detected(self):
        net = LogicNetwork("n")
        net.add_input("a")
        net.add_gate(NAND2, "g1", ("a", "ghost"), "y")
        with pytest.raises(LogicError):
            net.evaluate({"a": True})

    def test_combinational_loop_detected(self):
        net = LogicNetwork("loop")
        net.add_input("a")
        net.add_gate(NAND2, "g1", ("a", "y2"), "y1")
        net.add_gate(NAND2, "g2", ("a", "y1"), "y2")
        with pytest.raises(LogicError):
            net.evaluate({"a": True})


class TestEnergyAndDelay:
    def test_first_evaluation_has_no_switching_energy(self):
        net = build_half_adder()
        res = net.evaluate({"a": False, "b": False})
        assert res.switching_energy == 0.0

    def test_toggling_inputs_costs_energy(self):
        net = build_half_adder()
        net.evaluate({"a": False, "b": False})
        res = net.evaluate({"a": True, "b": False})
        assert res.switching_energy > 0.0
        assert "sum" in res.toggled_nets

    def test_identical_vector_costs_nothing(self):
        net = build_half_adder()
        net.evaluate({"a": True, "b": False})
        res = net.evaluate({"a": True, "b": False})
        assert res.switching_energy == 0.0
        assert res.toggled_nets == []

    def test_net_load_increases_energy(self):
        loaded = build_half_adder()
        loaded.add_net_load("sum", 100e-15)
        plain = build_half_adder()
        for net in (loaded, plain):
            net.evaluate({"a": False, "b": False})
        e_loaded = loaded.evaluate({"a": True, "b": False}).switching_energy
        e_plain = plain.evaluate({"a": True, "b": False}).switching_energy
        assert e_loaded > e_plain

    def test_path_delay_accumulates(self):
        net = LogicNetwork("chain")
        net.add_input("a")
        net.add_gate(INVERTER, "i1", ("a",), "n1")
        net.add_gate(INVERTER, "i2", ("n1",), "n2")
        assert net.path_delay("n2") == pytest.approx(2 * INVERTER.delay)
        with pytest.raises(LogicError):
            net.path_delay("ghost")

    def test_reset_state_forgets_history(self):
        net = build_half_adder()
        net.evaluate({"a": False, "b": False})
        net.reset_state()
        res = net.evaluate({"a": True, "b": True})
        assert res.switching_energy == 0.0
