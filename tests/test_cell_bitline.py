"""Unit tests for the 6T cell and bit-line pair behavioural models."""

import math

import pytest

from repro.sram.bitline import BitLineError, BitLinePair
from repro.sram.cell import CellError, CellFactory, SixTransistorCell


class TestCellStorage:
    def test_initial_state_unknown(self):
        cell = SixTransistorCell()
        assert cell.value is None
        assert not cell.is_initialised()

    def test_write_and_read(self):
        cell = SixTransistorCell()
        cell.write(1)
        assert cell.read() == 1
        assert cell.stats.writes == 1
        assert cell.stats.reads == 1

    def test_read_uninitialised_raises(self):
        with pytest.raises(CellError):
            SixTransistorCell().read()

    def test_invalid_value_rejected(self):
        with pytest.raises(CellError):
            SixTransistorCell().write(2)
        with pytest.raises(CellError):
            SixTransistorCell(value=5)

    def test_force_does_not_count_as_write(self):
        cell = SixTransistorCell()
        cell.force(0)
        assert cell.value == 0
        assert cell.stats.writes == 0

    def test_pulls_bl_low_convention(self):
        # Paper convention (Figure 5/6): a stored '1' discharges BL.
        assert SixTransistorCell(value=1).pulls_bl_low() is True
        assert SixTransistorCell(value=0).pulls_bl_low() is False
        with pytest.raises(CellError):
            SixTransistorCell().pulls_bl_low()


class TestCellStress:
    def test_res_counters(self):
        cell = SixTransistorCell(value=0)
        cell.apply_read_equivalent_stress()
        cell.apply_read_equivalent_stress(partial=True)
        assert cell.stats.full_res_count == 1
        assert cell.stats.partial_res_count == 1
        cell.stats.reset()
        assert cell.stats.full_res_count == 0


class TestFaultySwapRule:
    def test_swap_when_bitlines_oppose_stored_one(self, tech):
        cell = SixTransistorCell(value=1, tech=tech)
        # A '1' keeps BL low; finding BL strongly high and BLB strongly low
        # means the lines carry the opposite data and win the fight.
        swapped = cell.check_faulty_swap(v_bl=tech.vdd, v_blb=0.0)
        assert swapped
        assert cell.value == 0
        assert cell.stats.faulty_swaps == 1

    def test_swap_when_bitlines_oppose_stored_zero(self, tech):
        cell = SixTransistorCell(value=0, tech=tech)
        assert cell.check_faulty_swap(v_bl=0.0, v_blb=tech.vdd)
        assert cell.value == 1

    def test_no_swap_when_lines_agree_with_cell(self, tech):
        cell = SixTransistorCell(value=1, tech=tech)
        assert not cell.check_faulty_swap(v_bl=0.0, v_blb=tech.vdd)
        assert cell.value == 1

    def test_no_swap_when_lines_precharged(self, tech):
        cell = SixTransistorCell(value=1, tech=tech)
        assert not cell.check_faulty_swap(v_bl=tech.vdd, v_blb=tech.vdd)

    def test_no_swap_on_weak_differential(self, tech):
        cell = SixTransistorCell(value=1, tech=tech)
        assert not cell.check_faulty_swap(v_bl=tech.vdd, v_blb=0.9 * tech.vdd)

    def test_uninitialised_cell_never_swaps(self, tech):
        cell = SixTransistorCell(tech=tech)
        assert not cell.check_faulty_swap(v_bl=tech.vdd, v_blb=0.0)


class TestCellFactory:
    def test_factory_produces_fresh_cells(self, tech):
        factory = CellFactory(tech=tech)
        a = factory.create(0, 0)
        b = factory.create(0, 1)
        assert a is not b
        assert a.value is None


class TestBitLinePair:
    def test_starts_precharged(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        assert pair.is_fully_precharged()
        assert pair.differential() == pytest.approx(0.0)

    def test_capacitance_matches_technology(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        assert pair.capacitance == pytest.approx(tech.bitline_capacitance(512))

    def test_invalid_rows_rejected(self, tech):
        with pytest.raises(BitLineError):
            BitLinePair(rows=0, tech=tech)

    def test_read_differential_and_restore(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        swing = pair.develop_read_differential(cell_pulls_bl_low=True)
        assert pair.v_bl < pair.v_blb
        result = pair.restore()
        assert result.swing_bl == pytest.approx(swing)
        assert result.energy > 0.0
        assert pair.is_fully_precharged()

    def test_restore_of_precharged_pair_costs_nothing(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        assert pair.restore().energy == pytest.approx(0.0)

    def test_write_levels_follow_convention(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        pair.force_write_levels(1)
        assert pair.bl_is_logic_low()
        assert pair.v_blb == pytest.approx(tech.vdd)
        pair.force_write_levels(0)
        assert pair.blb_is_logic_low()

    def test_write_rejects_bad_value(self, tech):
        with pytest.raises(BitLineError):
            BitLinePair(rows=4, tech=tech).force_write_levels(2)

    def test_floating_discharge_matches_exponential(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        duration = 9 * tech.clock_period
        pair.float_with_cell(cell_pulls_bl_low=True, duration=duration)
        tau = tech.floating_discharge_tau(512)
        assert pair.v_bl == pytest.approx(tech.vdd * math.exp(-duration / tau), rel=1e-6)
        assert pair.v_blb == pytest.approx(tech.vdd)

    def test_discharge_reaches_logic_low_within_about_nine_cycles(self, tech):
        # Figure 6: the floating line is at logic '0' after roughly nine cycles.
        pair = BitLinePair(rows=512, tech=tech)
        pair.float_with_cell(cell_pulls_bl_low=True, duration=9 * tech.clock_period)
        assert pair.bl_is_logic_low()

    def test_residual_stress_decreases_with_discharge(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        fresh = pair.residual_stress_fraction()
        pair.float_with_cell(True, 5 * tech.clock_period)
        assert pair.residual_stress_fraction() < fresh

    def test_restore_after_write_charges_full_swing(self, tech):
        pair = BitLinePair(rows=512, tech=tech)
        pair.force_write_levels(1)
        result = pair.restore()
        expected = tech.swing_energy(pair.capacitance, tech.vdd) \
            * (1.0 + tech.precharge_overhead_factor)
        assert result.energy == pytest.approx(expected)

    def test_negative_duration_rejected(self, tech):
        pair = BitLinePair(rows=16, tech=tech)
        with pytest.raises(BitLineError):
            pair.float_with_cell(True, -1.0)
