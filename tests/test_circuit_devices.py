"""Unit tests for MOSFET models, passive elements and the transient solver."""

import math

import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CircuitError,
    GROUND,
    PiecewiseLinearSource,
    Resistor,
    Switch,
    equivalent_on_resistance,
    nmos,
    pmos,
    step_control,
)
from repro.circuit.mosfet import MosfetParameters


class TestMosfetModel:
    def test_nmos_cutoff(self, tech):
        device = nmos(tech, "m1", "d", "g", "s", width_um=1.0)
        assert device.drain_current(1.0, 0.0, 0.0) == 0.0

    def test_nmos_saturation_positive_current(self, tech):
        device = nmos(tech, "m1", "d", "g", "s", width_um=1.0)
        ids = device.drain_current(tech.vdd, tech.vdd, 0.0)
        assert ids > 0.0

    def test_nmos_current_increases_with_width(self, tech):
        narrow = nmos(tech, "m1", "d", "g", "s", width_um=0.2)
        wide = nmos(tech, "m2", "d", "g", "s", width_um=2.0)
        assert wide.drain_current(1.0, 1.6, 0.0) > narrow.drain_current(1.0, 1.6, 0.0)

    def test_nmos_is_bidirectional(self, tech):
        device = nmos(tech, "m1", "a", "g", "b", width_um=1.0)
        forward = device.drain_current(1.6, 1.6, 0.0)
        reverse = device.drain_current(0.0, 1.6, 1.6)
        assert forward > 0
        assert reverse < 0
        assert forward == pytest.approx(-reverse)

    def test_pmos_conducts_with_low_gate(self, tech):
        device = pmos(tech, "m1", "d", "g", "s", width_um=1.0)
        # Source at VDD, gate at 0, drain at VDD/2: current flows out of the drain.
        ids = device.drain_current(0.8, 0.0, 1.6)
        assert ids < 0.0

    def test_pmos_off_with_high_gate(self, tech):
        device = pmos(tech, "m1", "d", "g", "s", width_um=1.0)
        assert device.drain_current(0.8, 1.6, 1.6) == 0.0

    def test_node_currents_conserve_charge(self, tech):
        device = nmos(tech, "m1", "d", "g", "s", width_um=1.0)
        currents = device.node_currents({"d": 1.6, "g": 1.6, "s": 0.0})
        assert currents["d"] == pytest.approx(-currents["s"])

    def test_parameter_validation(self, tech):
        with pytest.raises(ValueError):
            MosfetParameters(polarity="zmos", vth=0.3, kp=1e-4, width_um=1, length_um=0.13)
        with pytest.raises(ValueError):
            MosfetParameters(polarity="nmos", vth=0.3, kp=1e-4, width_um=-1, length_um=0.13)

    def test_equivalent_on_resistance_finite(self, tech):
        device = nmos(tech, "m1", "d", "g", "s", width_um=1.0)
        r = equivalent_on_resistance(device, tech.vdd)
        assert 100.0 < r < 1e6


class TestPassiveElements:
    def test_resistor_current_direction(self):
        r = Resistor("r1", "a", "b", 1000.0)
        currents = r.node_currents({"a": 1.0, "b": 0.0}, time=0.0)
        assert currents["a"] == pytest.approx(-1e-3)
        assert currents["b"] == pytest.approx(+1e-3)

    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", 0.0)

    def test_switch_open_and_closed(self):
        s = Switch("s1", "a", "b", control=step_control(t_on=1.0), on_resistance=100.0)
        open_current = s.node_currents({"a": 1.0, "b": 0.0}, time=0.0)["b"]
        closed_current = s.node_currents({"a": 1.0, "b": 0.0}, time=2.0)["b"]
        assert open_current < 1e-9
        assert closed_current == pytest.approx(1.0 / 100.0)

    def test_capacitor_validation(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", capacitance=0.0)

    def test_pwl_source_interpolation_and_clamping(self):
        src = PiecewiseLinearSource("v1", "n", [(0.0, 0.0), (1.0, 1.0)])
        assert src.value_at(-1.0) == 0.0
        assert src.value_at(0.5) == pytest.approx(0.5)
        assert src.value_at(2.0) == 1.0

    def test_pwl_pulse_and_clock_shapes(self):
        pulse = PiecewiseLinearSource.pulse("p", "n", low=0.0, high=1.0,
                                            t_rise_start=1.0, t_fall_start=2.0)
        assert pulse.value_at(0.5) == 0.0
        assert pulse.value_at(1.5) == pytest.approx(1.0)
        assert pulse.value_at(3.0) == 0.0
        clock = PiecewiseLinearSource.clock("c", "n", period=2.0, cycles=2,
                                            low=0.0, high=1.0)
        assert clock.value_at(0.1) == pytest.approx(1.0)
        assert clock.value_at(1.5) == pytest.approx(0.0)


class TestTransientSolver:
    def test_rc_discharge_matches_analytical(self, tech):
        circuit = Circuit("rc")
        circuit.add_node_capacitance("n", 1e-12)
        circuit.set_initial_condition("n", 1.0)
        circuit.add_element(Resistor("r", "n", GROUND, 1e3))
        result = circuit.simulate(t_stop=3e-9, dt=1e-12, record=["n"])
        tau = 1e3 * 1e-12
        expected = math.exp(-3e-9 / tau)
        assert result.final_voltage("n") == pytest.approx(expected, rel=0.02)

    def test_rc_charge_through_switch_from_source(self):
        circuit = Circuit("charge")
        circuit.add_source(PiecewiseLinearSource.constant("vdd", "VDD", 1.6))
        circuit.add_node_capacitance("VDD", 1e-13)
        circuit.add_node_capacitance("n", 1e-12)
        circuit.add_element(Switch("s", "VDD", "n", control=step_control(0.0),
                                   on_resistance=1e3))
        result = circuit.simulate(t_stop=10e-9, dt=2e-12, record=["n"])
        assert result.final_voltage("n") == pytest.approx(1.6, rel=0.01)
        # the source must have delivered roughly C*V of charge (plus losses)
        assert result.total_source_energy() > 0.0

    def test_free_node_without_capacitance_rejected(self):
        circuit = Circuit("bad")
        circuit.add_element(Resistor("r", "a", "b", 1e3))
        with pytest.raises(CircuitError):
            circuit.simulate(t_stop=1e-9)

    def test_unknown_recorded_node_rejected(self):
        circuit = Circuit("c")
        circuit.add_node_capacitance("n", 1e-12)
        with pytest.raises(CircuitError):
            circuit.simulate(t_stop=1e-9, record=["nope"])

    def test_duplicate_source_rejected(self):
        circuit = Circuit("c")
        circuit.add_source(PiecewiseLinearSource.constant("v1", "n", 1.0))
        with pytest.raises(CircuitError):
            circuit.add_source(PiecewiseLinearSource.constant("v2", "n", 2.0))

    def test_divergence_detected(self, tech):
        # A strong MOSFET on a tiny capacitance with a huge time step should
        # be caught rather than silently producing NaNs.
        circuit = Circuit("stiff")
        circuit.add_node_capacitance("n", 1e-16)
        circuit.set_initial_condition("n", 1.6)
        circuit.add_source(PiecewiseLinearSource.constant("g", "gate", 1.6))
        circuit.add_node_capacitance("gate", 1e-15)
        circuit.add_mosfet(nmos(tech, "m", drain="n", gate="gate", source=GROUND,
                                width_um=10.0))
        with pytest.raises(CircuitError):
            circuit.simulate(t_stop=1e-9, dt=1e-10)

    def test_validation_of_parameters(self):
        circuit = Circuit("c")
        circuit.add_node_capacitance("n", 1e-12)
        with pytest.raises(ValueError):
            circuit.simulate(t_stop=0.0)
        with pytest.raises(ValueError):
            circuit.simulate(t_stop=1e-9, dt=0.0)
        with pytest.raises(ValueError):
            circuit.simulate(t_stop=1e-9, record_every=0)
