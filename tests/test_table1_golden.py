"""Golden regression: the measured 512 x 512 Table 1 numbers are pinned.

The headline result of the reproduction — the measured energy totals and
Power Reduction Ratios of the five Table 1 algorithms on the paper's full
512 x 512 array — must not drift silently under refactors.  The values
below were produced by :func:`repro.sweep.run_prr_case` on the vectorized
power campaign (which the differential suite holds equivalent to the
behavioural reference memory) and are pinned to a tolerance far below any
physical-model change but far above floating-point summation noise.

If a change moves these numbers *intentionally* (a technology constant, a
power-source formula), regenerate the table with::

    python - <<'EOF'
    from repro.sweep import paper_prr_cases, run_prr_case
    for case in paper_prr_cases():
        r = run_prr_case(case)
        print(r.algorithm, r.cycles_per_mode, r.functional_energy_j,
              r.low_power_energy_j, r.measured_prr)
    EOF

and say so in the commit message.
"""

from __future__ import annotations

import pytest

from repro.sweep import PrrCase, paper_prr_cases, run_prr_case

#: algorithm -> (cycles per mode, functional energy [J], low-power test
#: energy [J], measured PRR) on the full 512 x 512 array.
GOLDEN_TABLE1 = {
    "March C-": (2621440, 1.4070445338787842e-05, 9.34548733918288e-06,
                 0.33580728156341444),
    "March SS": (5767168, 3.0471612423733254e-05, 1.4192095142492393e-05,
                 0.5342519146955718),
    "MATS+": (1310720, 7.154374457425921e-06, 4.791894089502903e-06,
              0.3302148052190459),
    "March SR": (3670016, 1.9458066508414975e-05, 1.088230715635956e-05,
                 0.4407302929274437),
    "March G": (6029312, 3.2713095650476035e-05, 1.629388108990993e-05,
                0.5019156467488632),
}

#: Relative tolerance on the pinned energies: generous enough for platform
#: and numpy-version summation differences, tight enough that any formula
#: or constant change trips it.
GOLDEN_REL_TOL = 1e-6


@pytest.fixture(scope="module")
def paper_records():
    """The full measured Table 1, computed once for the module."""
    return {record.algorithm: record
            for record in map(run_prr_case, paper_prr_cases())}


def test_golden_covers_the_whole_table(paper_records):
    assert set(paper_records) == set(GOLDEN_TABLE1)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_TABLE1))
def test_measured_table1_numbers_are_pinned(paper_records, algorithm):
    cycles, functional_j, low_power_j, prr = GOLDEN_TABLE1[algorithm]
    record = paper_records[algorithm]
    assert record.cycles_per_mode == cycles
    assert record.functional_energy_j == pytest.approx(functional_j,
                                                       rel=GOLDEN_REL_TOL)
    assert record.low_power_energy_j == pytest.approx(low_power_j,
                                                      rel=GOLDEN_REL_TOL)
    assert record.measured_prr == pytest.approx(prr, rel=GOLDEN_REL_TOL)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_TABLE1))
def test_paper_scale_runs_stay_healthy(paper_records, algorithm):
    record = paper_records[algorithm]
    assert record.passed, algorithm
    assert record.within_bracket, algorithm
    assert record.backend_used == "vectorized", algorithm


# ----------------------------------------------------------------------
# Banked 512 x 512 golden (beyond-paper): banks=4 pinned, banks=1 exact
# ----------------------------------------------------------------------
#: algorithm -> (cycles per mode, functional energy [J], low-power test
#: energy [J], measured PRR) on the 512 x 512 array split into 4 banks
#: (blocked interleave).  Banking shortens every bit line to the bank
#: height, which shrinks the pre-charge energy both modes pay and roughly
#: doubles the measured PRR — the beyond-paper effect the `--banks` sweep
#: axis measures.  Regenerate alongside GOLDEN_TABLE1 (add ``banks=4``).
GOLDEN_TABLE1_BANKS4 = {
    "March C-": (2621440, 1.1718989279395841e-05, 3.471295161917524e-06,
                 0.703788861039347),
    "March SS": (5767168, 2.5646255201845247e-05, 5.836410414643992e-06,
                 0.7724264081165322),
    "MATS+": (1310720, 5.89167242248192e-06, 1.7678252621599162e-06,
              0.6999450859803227),
    "March SR": (3670016, 1.6339958786686977e-05, 4.238283561711477e-06,
                 0.740618466849217),
    "March G": (6029312, 2.7043784694956035e-05, 6.502357795245076e-06,
                0.7595618413402826),
}


def _banked_case(case: PrrCase, banks: int) -> PrrCase:
    return PrrCase(rows=case.rows, columns=case.columns,
                   algorithm=case.algorithm, backend=case.backend,
                   seed=case.seed, banks=banks)


@pytest.fixture(scope="module")
def banked_records():
    """Measured Table 1 on the 4-bank 512 x 512 array, once per module."""
    return {record.algorithm: record
            for record in (run_prr_case(_banked_case(case, banks=4))
                           for case in paper_prr_cases())}


def test_single_bank_case_reproduces_the_monolithic_golden(paper_records):
    """banks=1 must be byte-for-byte today's Table 1: the banked geometry
    with one bank *is* the monolithic array, not an approximation of it."""
    for case in paper_prr_cases():
        record = run_prr_case(_banked_case(case, banks=1))
        monolithic = paper_records[record.algorithm]
        assert record.cycles_per_mode == monolithic.cycles_per_mode
        assert record.functional_energy_j == monolithic.functional_energy_j
        assert record.low_power_energy_j == monolithic.low_power_energy_j
        assert record.measured_prr == monolithic.measured_prr


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_TABLE1_BANKS4))
def test_banked_table1_numbers_are_pinned(banked_records, algorithm):
    cycles, functional_j, low_power_j, prr = GOLDEN_TABLE1_BANKS4[algorithm]
    record = banked_records[algorithm]
    assert record.banks == 4
    assert record.cycles_per_mode == cycles  # banking never adds cycles
    assert record.functional_energy_j == pytest.approx(functional_j,
                                                       rel=GOLDEN_REL_TOL)
    assert record.low_power_energy_j == pytest.approx(low_power_j,
                                                      rel=GOLDEN_REL_TOL)
    assert record.measured_prr == pytest.approx(prr, rel=GOLDEN_REL_TOL)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_TABLE1_BANKS4))
def test_banking_raises_the_paper_scale_prr(banked_records, algorithm):
    """At paper scale the 4-bank PRR clears the monolithic one by a wide
    margin (shorter bit lines leave less RES pre-charge to pay in either
    mode, but far less in the low-power test)."""
    assert banked_records[algorithm].measured_prr > \
        GOLDEN_TABLE1[algorithm][3] + 0.1
    assert banked_records[algorithm].passed, algorithm
