"""Golden regression: the measured 512 x 512 Table 1 numbers are pinned.

The headline result of the reproduction — the measured energy totals and
Power Reduction Ratios of the five Table 1 algorithms on the paper's full
512 x 512 array — must not drift silently under refactors.  The values
below were produced by :func:`repro.sweep.run_prr_case` on the vectorized
power campaign (which the differential suite holds equivalent to the
behavioural reference memory) and are pinned to a tolerance far below any
physical-model change but far above floating-point summation noise.

If a change moves these numbers *intentionally* (a technology constant, a
power-source formula), regenerate the table with::

    python - <<'EOF'
    from repro.sweep import paper_prr_cases, run_prr_case
    for case in paper_prr_cases():
        r = run_prr_case(case)
        print(r.algorithm, r.cycles_per_mode, r.functional_energy_j,
              r.low_power_energy_j, r.measured_prr)
    EOF

and say so in the commit message.
"""

from __future__ import annotations

import pytest

from repro.sweep import paper_prr_cases, run_prr_case

#: algorithm -> (cycles per mode, functional energy [J], low-power test
#: energy [J], measured PRR) on the full 512 x 512 array.
GOLDEN_TABLE1 = {
    "March C-": (2621440, 1.4070445338787842e-05, 9.34548733918288e-06,
                 0.33580728156341444),
    "March SS": (5767168, 3.0471612423733254e-05, 1.4192095142492393e-05,
                 0.5342519146955718),
    "MATS+": (1310720, 7.154374457425921e-06, 4.791894089502903e-06,
              0.3302148052190459),
    "March SR": (3670016, 1.9458066508414975e-05, 1.088230715635956e-05,
                 0.4407302929274437),
    "March G": (6029312, 3.2713095650476035e-05, 1.629388108990993e-05,
                0.5019156467488632),
}

#: Relative tolerance on the pinned energies: generous enough for platform
#: and numpy-version summation differences, tight enough that any formula
#: or constant change trips it.
GOLDEN_REL_TOL = 1e-6


@pytest.fixture(scope="module")
def paper_records():
    """The full measured Table 1, computed once for the module."""
    return {record.algorithm: record
            for record in map(run_prr_case, paper_prr_cases())}


def test_golden_covers_the_whole_table(paper_records):
    assert set(paper_records) == set(GOLDEN_TABLE1)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_TABLE1))
def test_measured_table1_numbers_are_pinned(paper_records, algorithm):
    cycles, functional_j, low_power_j, prr = GOLDEN_TABLE1[algorithm]
    record = paper_records[algorithm]
    assert record.cycles_per_mode == cycles
    assert record.functional_energy_j == pytest.approx(functional_j,
                                                       rel=GOLDEN_REL_TOL)
    assert record.low_power_energy_j == pytest.approx(low_power_j,
                                                      rel=GOLDEN_REL_TOL)
    assert record.measured_prr == pytest.approx(prr, rel=GOLDEN_REL_TOL)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_TABLE1))
def test_paper_scale_runs_stay_healthy(paper_records, algorithm):
    record = paper_records[algorithm]
    assert record.passed, algorithm
    assert record.within_bracket, algorithm
    assert record.backend_used == "vectorized", algorithm
