"""Tests of the fault models, the fault simulator, and DOF-1 coverage invariance."""

import pytest

from repro.faults import (
    DataRetentionFault,
    DeceptiveReadDestructiveFault,
    FaultInjection,
    FaultSimulationError,
    FaultSimulator,
    IdempotentCouplingFault,
    IncorrectReadFault,
    InversionCouplingFault,
    LogicalMemory,
    ReadDestructiveFault,
    StateCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
    WriteDestructiveFault,
    build_fault_list,
    check_order_invariance,
    run_coverage,
    single_cell_fault_models,
    coupling_fault_models,
)
from repro.faults.models import CellState, FaultModelError
from repro.march import (
    MARCH_CM,
    MARCH_SS,
    MATS_PLUS,
    ColumnMajorOrder,
    PseudoRandomOrder,
    RowMajorOrder,
    MATS,
)
from repro.sram.geometry import ArrayGeometry


class TestFaultModelBehaviour:
    def test_stuck_at(self):
        state = CellState()
        fault = StuckAtFault(1)
        fault.on_write(state, 0)
        assert fault.on_read(state) == 1

    def test_transition_fault_up(self):
        state = CellState(value=0)
        fault = TransitionFault(rising=True)
        fault.on_write(state, 1)
        assert state.value == 0
        fault.on_write(state, 0)   # down transition still fine
        assert state.value == 0

    def test_transition_fault_down(self):
        state = CellState(value=1)
        TransitionFault(rising=False).on_write(state, 0)
        assert state.value == 1

    def test_rdf_flips_and_lies(self):
        state = CellState(value=0)
        observed = ReadDestructiveFault().on_read(state)
        assert observed == 1 and state.value == 1

    def test_drdf_flips_but_reports_original(self):
        state = CellState(value=0)
        observed = DeceptiveReadDestructiveFault().on_read(state)
        assert observed == 0 and state.value == 1

    def test_irf_preserves_state(self):
        state = CellState(value=1)
        assert IncorrectReadFault().on_read(state) == 0
        assert state.value == 1

    def test_wdf_flips_on_non_transition_write(self):
        state = CellState(value=1)
        WriteDestructiveFault().on_write(state, 1)
        assert state.value == 0

    def test_sof_ignores_writes_and_floats_reads(self):
        state = CellState(value=None)
        fault = StuckOpenFault()
        fault.on_write(state, 1)
        assert state.value is None
        assert fault.on_read(state) is None

    def test_retention_fault_leaks_after_idle(self):
        state = CellState(value=1)
        fault = DataRetentionFault(leak_to=0, retention_cycles=10)
        fault.on_idle(state, idle_cycles=5)
        assert state.value == 1
        fault.on_idle(state, idle_cycles=50)
        assert state.value == 0

    def test_coupling_fault_triggers(self):
        victim = CellState(value=0)
        IdempotentCouplingFault(rising=True, victim_value=1) \
            .on_aggressor_write(victim, old_value=0, new_value=1)
        assert victim.value == 1
        victim = CellState(value=0)
        InversionCouplingFault(rising=False).on_aggressor_write(victim, 1, 0)
        assert victim.value == 1
        victim = CellState(value=1)
        StateCouplingFault(aggressor_state=0, victim_value=0) \
            .on_aggressor_write(victim, 1, 0)
        assert victim.value == 0

    def test_invalid_fault_parameters(self):
        with pytest.raises(FaultModelError):
            StuckAtFault(2)
        with pytest.raises(FaultModelError):
            DataRetentionFault(leak_to=0, retention_cycles=0)

    def test_fault_batteries_have_names(self):
        for model in single_cell_fault_models() + coupling_fault_models():
            assert model.describe()


class TestFaultInjectionValidation:
    def test_coupling_requires_aggressor(self):
        with pytest.raises(FaultSimulationError):
            FaultInjection(fault=InversionCouplingFault(True), victim=(0, 0))

    def test_single_cell_rejects_aggressor(self):
        with pytest.raises(FaultSimulationError):
            FaultInjection(fault=StuckAtFault(0), victim=(0, 0), aggressor=(0, 1))

    def test_victim_and_aggressor_must_differ(self):
        with pytest.raises(FaultSimulationError):
            FaultInjection(fault=InversionCouplingFault(True), victim=(0, 0),
                           aggressor=(0, 0))


class TestLogicalMemory:
    def test_fault_free_roundtrip(self, tiny_geometry):
        memory = LogicalMemory(tiny_geometry)
        memory.write(1, 2, 1)
        assert memory.read(1, 2) == 1

    def test_word_oriented_not_supported(self):
        with pytest.raises(FaultSimulationError):
            LogicalMemory(ArrayGeometry(rows=4, columns=8, bits_per_word=4))

    def test_injected_saf_visible(self, tiny_geometry):
        memory = LogicalMemory(tiny_geometry,
                               FaultInjection(StuckAtFault(0), victim=(1, 1)))
        memory.write(1, 1, 1)
        assert memory.read(1, 1) == 0
        memory.write(0, 0, 1)
        assert memory.read(0, 0) == 1   # other cells unaffected


class TestDetection:
    """Classical detection expectations for the library algorithms."""

    def simulate(self, algorithm, injection, geometry=None):
        geometry = geometry or ArrayGeometry(rows=4, columns=4)
        simulator = FaultSimulator(geometry)
        return simulator.simulate(algorithm, RowMajorOrder(geometry), injection)

    def test_fault_free_memory_passes_every_algorithm(self, tiny_geometry):
        simulator = FaultSimulator(tiny_geometry)
        for algorithm in (MATS, MATS_PLUS, MARCH_CM, MARCH_SS):
            assert simulator.fault_free_passes(algorithm, RowMajorOrder(tiny_geometry))

    @pytest.mark.parametrize("value", [0, 1])
    def test_march_cm_detects_stuck_at(self, value):
        result = self.simulate(MARCH_CM, FaultInjection(StuckAtFault(value), victim=(2, 2)))
        assert result.detected

    @pytest.mark.parametrize("rising", [True, False])
    def test_march_cm_detects_transition_faults(self, rising):
        result = self.simulate(MARCH_CM,
                               FaultInjection(TransitionFault(rising), victim=(1, 3)))
        assert result.detected

    def test_march_cm_detects_unlinked_coupling_faults(self):
        for fault in (InversionCouplingFault(True),
                      IdempotentCouplingFault(True, 1),
                      StateCouplingFault(1, 0)):
            result = self.simulate(MARCH_CM,
                                   FaultInjection(fault, victim=(1, 1), aggressor=(2, 1)))
            assert result.detected, fault.describe()

    def test_march_ss_detects_read_faults_mats_misses(self):
        drdf = lambda: FaultInjection(DeceptiveReadDestructiveFault(), victim=(2, 2))
        assert self.simulate(MARCH_SS, drdf()).detected
        # MATS (4N) has no second read of the same value and misses DRDF.
        assert not self.simulate(MATS, drdf()).detected

    def test_mats_detects_stuck_at_only_battery(self):
        result = self.simulate(MATS, FaultInjection(StuckAtFault(0), victim=(0, 0)))
        assert result.detected

    def test_detection_result_metadata(self):
        result = self.simulate(MARCH_CM, FaultInjection(StuckAtFault(0), victim=(2, 2)))
        assert result.first_detection_step is not None
        assert result.mismatches >= 1
        assert "DETECTED" in result.describe()


class TestDof1Invariance:
    """Section 3: detection does not depend on the address sequence."""

    def orders(self, geometry):
        return [RowMajorOrder(geometry), ColumnMajorOrder(geometry),
                PseudoRandomOrder(geometry, seed=11)]

    def test_per_fault_detection_identical_across_orders(self):
        """DOF-1 invariance holds for the faults an algorithm targets.

        March C- targets SAFs, TFs and unlinked coupling faults: its
        detection must be identical under any address order.  MATS+ only
        targets single-cell stuck-at faults, so the invariance check for it
        is restricted to its target class (a weak test may detect untargeted
        coupling faults only fortuitously, and such fortuitous detections
        are legitimately order-dependent).
        """
        geometry = ArrayGeometry(rows=4, columns=4)
        locations = [(0, 0), (1, 2), (3, 3)]
        full_battery = build_fault_list(geometry, locations=locations)
        report = check_order_invariance(MARCH_CM, self.orders(geometry),
                                        geometry, full_battery)
        assert report.invariant, report.disagreements[:3]

        single_cell_only = build_fault_list(geometry, locations=locations,
                                            include_coupling=False)
        report = check_order_invariance(MATS_PLUS, self.orders(geometry),
                                        geometry, single_cell_only)
        assert report.invariant, report.disagreements[:3]

    def test_coverage_report_structure(self):
        geometry = ArrayGeometry(rows=4, columns=4)
        faults = build_fault_list(geometry, locations=[(1, 1)])
        report = run_coverage(MARCH_SS, RowMajorOrder(geometry), geometry, faults)
        assert report.total_faults == len(faults)
        assert 0.0 <= report.coverage <= 1.0
        assert report.detected_faults + len(report.missed) == report.total_faults

    def test_stronger_algorithm_covers_at_least_as_much(self):
        geometry = ArrayGeometry(rows=4, columns=4)
        faults = build_fault_list(geometry, locations=[(0, 0), (2, 2)])
        order = RowMajorOrder(geometry)
        weak = run_coverage(MATS, order, geometry, faults)
        strong = run_coverage(MARCH_SS, order, geometry, faults)
        assert strong.coverage >= weak.coverage
