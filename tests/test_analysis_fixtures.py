"""Tests for the analysis helpers: scaling methodology, Spice-substitute fixtures, tables."""

import pytest

from repro.analysis import (
    bitline_discharge_fixture,
    faulty_swap_fixture,
    format_energy,
    format_percent,
    format_power,
    reduced_row_equivalent,
    render_table,
    res_fight_fixture,
    selected_column_cycle_fixture,
)
from repro.analysis.scaling import ScalingError
from repro.sram.geometry import ArrayGeometry, PAPER_GEOMETRY


class TestReducedRowEquivalent:
    def test_bitline_capacitance_preserved(self, tech):
        equivalent = reduced_row_equivalent(PAPER_GEOMETRY, rows=8, tech=tech)
        full = tech.bitline_capacitance(PAPER_GEOMETRY.rows)
        reduced = equivalent.tech.bitline_capacitance(equivalent.reduced.rows)
        assert reduced == pytest.approx(full)
        assert equivalent.reduced.columns == PAPER_GEOMETRY.columns
        assert equivalent.row_reduction_factor == pytest.approx(64.0)
        assert "stand-in" in equivalent.describe()

    def test_floating_time_constant_preserved(self, tech):
        equivalent = reduced_row_equivalent(PAPER_GEOMETRY, rows=16, tech=tech)
        assert equivalent.tech.floating_discharge_tau(16) == pytest.approx(
            tech.floating_discharge_tau(512))

    def test_invalid_reductions_rejected(self, tech):
        with pytest.raises(ScalingError):
            reduced_row_equivalent(PAPER_GEOMETRY, rows=0, tech=tech)
        with pytest.raises(ScalingError):
            reduced_row_equivalent(PAPER_GEOMETRY, rows=1024, tech=tech)
        with pytest.raises(ScalingError):
            reduced_row_equivalent(ArrayGeometry(rows=10, columns=8), rows=3, tech=tech)


class TestTransientFixtures:
    def test_figure6_bitline_discharge_shape(self, tech):
        """Figure 6a: BL discharges to logic '0' in a handful of cycles, BLB holds VDD."""
        fixture = bitline_discharge_fixture(tech=tech, rows=512)
        result = fixture.simulate(t_stop=12 * tech.clock_period, dt=50e-12, record_every=10)
        bl = result.waveform("BL")
        blb = result.waveform("BLB")
        crossing = bl.first_crossing(0.3 * tech.vdd, "falling")
        assert crossing is not None
        cycles_to_low = crossing / tech.clock_period
        assert 2.0 < cycles_to_low < 12.0
        assert bl.final_value() < 0.1 * tech.vdd
        assert blb.final_value() == pytest.approx(tech.vdd)

    def test_figure2c_res_fight_holds_line_and_draws_power(self, tech):
        fixture = res_fight_fixture(tech=tech, rows=512)
        result = fixture.simulate(t_stop=tech.clock_period, dt=20e-12)
        assert result.final_voltage("BL") > 0.95 * tech.vdd
        energy = result.source_energy_for("vdd_precharge")
        expected = tech.vdd * tech.res_equilibrium_current * tech.clock_period
        assert energy == pytest.approx(expected, rel=0.25)

    def test_figure2ab_selected_column_cycle(self, tech):
        fixture = selected_column_cycle_fixture(tech=tech, rows=512)
        result = fixture.simulate(t_stop=tech.clock_period, dt=10e-12)
        bl = result.waveform("BL")
        mid = bl.value_at(tech.clock_period / 2)
        assert mid < 0.9 * tech.vdd          # operation phase pulled BL down
        assert bl.final_value() > 0.95 * tech.vdd  # restoration phase recovered it

    def test_figure7_faulty_swap_and_fix(self, tech):
        """Figure 6c/7: the cell flips without restoration and survives with it."""
        no_restore = faulty_swap_fixture(restore_before_transition=False, tech=tech)
        swapped = no_restore.simulate(t_stop=5 * tech.clock_period, dt=0.5e-12,
                                      record_every=200)
        assert swapped.final_voltage("victim_S") > 0.7 * tech.vdd
        assert swapped.final_voltage("victim_SB") < 0.3 * tech.vdd

        with_restore = faulty_swap_fixture(restore_before_transition=True, tech=tech)
        kept = with_restore.simulate(t_stop=5 * tech.clock_period, dt=0.5e-12,
                                     record_every=200)
        assert kept.final_voltage("victim_S") < 0.3 * tech.vdd
        assert kept.final_voltage("victim_SB") > 0.7 * tech.vdd


class TestTableRendering:
    def test_render_table_alignment_and_title(self):
        rows = [{"Algorithm": "March C-", "PRR": "47.3 %"},
                {"Algorithm": "MATS+", "PRR": "48.1 %"}]
        text = render_table(rows, title="Table 1")
        assert "Table 1" in text
        assert "March C-" in text and "MATS+" in text
        assert text.count("\n") >= 4

    def test_render_empty_table(self):
        assert "empty" in render_table([])

    def test_formatters(self):
        assert format_energy(1.5e-12) == "1.50 pJ"
        assert format_energy(2e-9) == "2.00 nJ"
        assert format_power(0.0035) == "3.500 mW"
        assert format_percent(0.473) == "47.3 %"
