"""Unit tests for the technology description."""

import pytest

from repro.circuit.technology import PAPER_TECHNOLOGY, TechnologyParameters, default_technology


class TestOperatingPoint:
    def test_paper_operating_point(self):
        tech = default_technology()
        assert tech.vdd == pytest.approx(1.6)
        assert tech.clock_period == pytest.approx(3.0e-9)
        assert tech is PAPER_TECHNOLOGY

    def test_clock_frequency(self, tech):
        assert tech.clock_frequency() == pytest.approx(1.0 / 3.0e-9)


class TestCapacitances:
    def test_bitline_capacitance_scales_with_rows(self, tech):
        c_small = tech.bitline_capacitance(64)
        c_large = tech.bitline_capacitance(512)
        assert c_large > c_small
        assert c_large == pytest.approx(tech.bitline_cap_fixed + 512 * tech.bitline_cap_per_cell)

    def test_bitline_dwarfs_cell_node(self, tech):
        # The premise behind the faulty swap: bit-line capacitance is orders
        # of magnitude above the cell node capacitance.
        assert tech.bitline_capacitance(512) / tech.cell_node_cap > 100

    def test_wordline_capacitance(self, tech):
        assert tech.wordline_capacitance(512) == pytest.approx(512 * tech.wordline_cap_per_cell)

    def test_invalid_row_and_column_counts(self, tech):
        with pytest.raises(ValueError):
            tech.bitline_capacitance(0)
        with pytest.raises(ValueError):
            tech.wordline_capacitance(-1)


class TestEnergyHelpers:
    def test_swing_energy_full_rail(self, tech):
        cap = 100e-15
        assert tech.swing_energy(cap) == pytest.approx(cap * tech.vdd * tech.vdd)

    def test_swing_energy_partial(self, tech):
        cap = 100e-15
        assert tech.swing_energy(cap, 0.8) == pytest.approx(cap * 0.8 * tech.vdd)

    def test_swing_energy_rejects_negative(self, tech):
        with pytest.raises(ValueError):
            tech.swing_energy(-1e-15)
        with pytest.raises(ValueError):
            tech.swing_energy(1e-15, -0.1)


class TestTimeConstants:
    def test_floating_discharge_spans_several_cycles(self, tech):
        # Figure 6: the discharge of a full-length bit line takes multiple
        # clock cycles (roughly nine to reach logic '0').
        tau_cycles = tech.floating_discharge_tau(512) / tech.clock_period
        assert 2.0 < tau_cycles < 8.0

    def test_precharge_much_faster_than_discharge(self, tech):
        assert tech.precharge_tau(512) < tech.floating_discharge_tau(512) / 5


class TestScaling:
    def test_scaled_overrides_field(self, tech):
        scaled = tech.scaled(vdd=1.2)
        assert scaled.vdd == pytest.approx(1.2)
        assert scaled.clock_period == tech.clock_period
        assert tech.vdd == pytest.approx(1.6)  # original untouched

    def test_as_dict_contains_calibration_values(self, tech):
        d = tech.as_dict()
        assert d["vdd"] == pytest.approx(1.6)
        assert "res_equilibrium_current" in d
        assert "floating_discharge_resistance" in d
