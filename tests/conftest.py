"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.circuit import default_technology
from repro.sram import ArrayGeometry


@pytest.fixture
def tech():
    """The paper's 0.13 µm / 1.6 V / 3 ns operating point."""
    return default_technology()


@pytest.fixture
def tiny_geometry():
    """A tiny array for fast unit tests."""
    return ArrayGeometry(rows=4, columns=4)


@pytest.fixture
def small_geometry():
    """A small array for integration tests."""
    return ArrayGeometry(rows=8, columns=8)


@pytest.fixture
def wide_geometry():
    """A wider array where pre-charge savings dominate (integration tests)."""
    return ArrayGeometry(rows=8, columns=64)
