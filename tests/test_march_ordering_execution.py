"""Unit tests for address orders (DOF 1) and the execution walker."""

import pytest

from repro.march import (
    AddressComplementOrder,
    AddressingDirection,
    ColumnMajorOrder,
    MARCH_CM,
    MATS_PLUS,
    OrderingError,
    PseudoRandomOrder,
    RowMajorOrder,
    RowMajorSnakeOrder,
    count_steps,
    make_order,
    parse_march,
    row_transition_count,
    verify_is_permutation,
    walk,
)
from repro.march.dof import (
    DegreeOfFreedom,
    all_degrees,
    complement_data,
    coverage_equivalence_orders,
    paper_choice,
)
from repro.sram.geometry import ArrayGeometry


class TestAddressOrders:
    @pytest.mark.parametrize("order_cls", [
        RowMajorOrder, ColumnMajorOrder, PseudoRandomOrder,
        AddressComplementOrder, RowMajorSnakeOrder,
    ])
    def test_every_order_is_a_permutation(self, small_geometry, order_cls):
        order = order_cls(small_geometry)
        assert verify_is_permutation(order)
        assert len(order) == small_geometry.word_count

    def test_descending_is_exact_reverse(self, small_geometry):
        # The DOF-1 requirement: ⇓ is the reverse of ⇑.
        for order_cls in (RowMajorOrder, ColumnMajorOrder, PseudoRandomOrder):
            order = order_cls(small_geometry)
            assert list(order.descending()) == list(reversed(list(order.ascending())))

    def test_row_major_visits_wordline_after_wordline(self, small_geometry):
        order = RowMajorOrder(small_geometry)
        coords = order.sequence()
        assert coords[0] == (0, 0)
        assert coords[small_geometry.words_per_row - 1] == (0, small_geometry.words_per_row - 1)
        assert coords[small_geometry.words_per_row] == (1, 0)
        assert order.is_wordline_sequential()

    def test_column_major_is_not_wordline_sequential(self, small_geometry):
        assert not ColumnMajorOrder(small_geometry).is_wordline_sequential()

    def test_snake_order_is_wordline_sequential(self, small_geometry):
        order = RowMajorSnakeOrder(small_geometry)
        assert order.is_wordline_sequential()
        assert verify_is_permutation(order)
        # second row is traversed backwards
        assert order.coordinate_at(small_geometry.words_per_row) == (
            1, small_geometry.words_per_row - 1)

    def test_pseudo_random_is_deterministic_per_seed(self, small_geometry):
        a = PseudoRandomOrder(small_geometry, seed=7).sequence()
        b = PseudoRandomOrder(small_geometry, seed=7).sequence()
        c = PseudoRandomOrder(small_geometry, seed=8).sequence()
        assert a == b
        assert a != c

    def test_out_of_range_position(self, small_geometry):
        with pytest.raises(OrderingError):
            RowMajorOrder(small_geometry).coordinate_at(small_geometry.word_count)

    def test_make_order_registry(self, small_geometry):
        assert isinstance(make_order("wordline", small_geometry), RowMajorOrder)
        assert isinstance(make_order("fast-row", small_geometry), ColumnMajorOrder)
        with pytest.raises(OrderingError):
            make_order("bogus", small_geometry)


class TestWalker:
    def test_step_count_matches_formula(self, small_geometry):
        order = RowMajorOrder(small_geometry)
        steps = list(walk(MARCH_CM, order))
        assert len(steps) == count_steps(MARCH_CM, order)
        assert len(steps) == MARCH_CM.operation_count * small_geometry.word_count

    def test_indices_are_sequential(self, tiny_geometry):
        steps = list(walk(MATS_PLUS, RowMajorOrder(tiny_geometry)))
        assert [s.index for s in steps] == list(range(len(steps)))

    def test_operations_applied_per_address_in_order(self, tiny_geometry):
        algorithm = parse_march("{⇑(r0,w1)}", name="pair")
        steps = list(walk(algorithm, RowMajorOrder(tiny_geometry)))
        assert steps[0].operation.to_notation() == "r0"
        assert steps[1].operation.to_notation() == "w1"
        assert (steps[0].row, steps[0].word) == (steps[1].row, steps[1].word)

    def test_descending_element_reverses_addresses(self, tiny_geometry):
        algorithm = parse_march("{⇓(w0)}", name="down")
        steps = list(walk(algorithm, RowMajorOrder(tiny_geometry)))
        assert (steps[0].row, steps[0].word) == (tiny_geometry.rows - 1,
                                                 tiny_geometry.words_per_row - 1)
        assert steps[0].direction is AddressingDirection.DOWN

    def test_any_direction_resolution(self, tiny_geometry):
        algorithm = parse_march("{⇕(w0)}", name="any")
        up = list(walk(algorithm, RowMajorOrder(tiny_geometry),
                       AddressingDirection.UP))
        down = list(walk(algorithm, RowMajorOrder(tiny_geometry),
                         AddressingDirection.DOWN))
        assert (up[0].row, up[0].word) == (0, 0)
        assert (down[0].row, down[0].word) == (tiny_geometry.rows - 1,
                                               tiny_geometry.words_per_row - 1)

    def test_lookahead_next_address(self, tiny_geometry):
        steps = list(walk(MATS_PLUS, RowMajorOrder(tiny_geometry)))
        for current, following in zip(steps, steps[1:]):
            assert current.next_row == following.row
            assert current.next_word == following.word
        assert steps[-1].next_row is None
        assert steps[-1].last_of_test

    def test_last_access_on_row_flags(self, tiny_geometry):
        order = RowMajorOrder(tiny_geometry)
        steps = list(walk(MATS_PLUS, order))
        flagged = [s for s in steps if s.last_access_on_row]
        # At most one per row per element for a word-line-sequential order;
        # an element boundary where the next element starts on the same row
        # (e.g. ⇑ followed by ⇓) does not need a restoration cycle.
        upper = MATS_PLUS.element_count * tiny_geometry.rows
        lower = upper - (MATS_PLUS.element_count - 1)
        assert lower <= len(flagged) <= upper
        for step in flagged:
            assert step.operation_index == len(
                MATS_PLUS.elements[step.element_index].operations) - 1
        assert row_transition_count(MATS_PLUS, order) == len(flagged)
        # every actual row change is preceded by a flagged access
        for current, following in zip(steps, steps[1:]):
            if following.row != current.row:
                assert current.last_access_on_row

    def test_first_of_element_flag(self, tiny_geometry):
        steps = list(walk(MATS_PLUS, RowMajorOrder(tiny_geometry)))
        firsts = [s for s in steps if s.first_of_element]
        assert len(firsts) == MATS_PLUS.element_count


class TestDegreesOfFreedom:
    def test_six_degrees_enumerated(self):
        assert len(all_degrees()) == 6
        for degree in all_degrees():
            assert degree.summary()

    def test_paper_choice_is_row_major_ascending(self, small_geometry):
        choice = paper_choice(MARCH_CM, small_geometry)
        assert isinstance(choice.order, RowMajorOrder)
        assert choice.any_direction is AddressingDirection.UP
        assert "word line" in choice.describe() or "row-major" in choice.describe()

    def test_coverage_equivalence_orders(self, small_geometry):
        orders = coverage_equivalence_orders(small_geometry, seeds=(1, 2))
        assert len(orders) == 4
        for order in orders:
            assert verify_is_permutation(order)

    def test_complement_data_transform(self):
        complemented = complement_data(MARCH_CM)
        complemented.validate()
        assert complemented.operation_count == MARCH_CM.operation_count
        assert complemented.elements[0].operations[0].value == 1

    def test_dof1_is_the_address_sequence(self):
        assert DegreeOfFreedom.ADDRESS_SEQUENCE.value == 1
        assert "word line" in DegreeOfFreedom.ADDRESS_SEQUENCE.summary()
