"""The distributed orchestrator: ledger protocol, workers, kill-and-steal,
and the verified journal merge.

Four layers:

* lease planning and the durable ledger's state machine (claim tokens,
  heartbeats, generation-bumping expiry) — pure filesystem protocol;
* in-process workers (threads sharing one ledger) completing campaigns
  with exactly-once execution;
* the subprocess integration: a worker SIGKILLed mid-lease, its chunk
  re-leased exactly once, no case executed twice — asserted from the
  journals themselves;
* ``merge_journals`` / ``python -m repro.sweep merge``: verified unions,
  duplicate tolerance (``elapsed_s`` only), conflict rejection.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distrib import (
    Coordinator,
    DistribWorker,
    LeaseLedger,
    LeaseRevoked,
    LedgerError,
    plan_leases,
    spawn_worker,
)
from repro.sweep import (
    JournalError,
    MergeError,
    RunJournal,
    SweepRunner,
    case_fingerprint,
    fingerprint_digest,
    load_grid_fingerprints,
    load_journal,
    merge_journals,
    sweep_grid,
)
from repro.sweep.__main__ import main as sweep_main

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _tiny_cases(count=4):
    """Small, fast, distinct vectorized power cases."""
    geometries = ["8x8", "8x16", "16x8", "16x16", "16x32", "32x16",
                  "32x32", "8x32"]
    assert count <= len(geometries)
    return sweep_grid(geometries[:count], ["MATS+"],
                      backends=("vectorized",))


def _all_journal_entries(ledger):
    entries = []
    for journal in sorted(ledger.journal_dir.glob("*.jsonl")):
        entries.extend(load_journal(journal))
    return entries


def _execution_counts(ledger):
    """How many times each distinct case was executed, campaign-wide.

    Journal entries are appended once per *execution* (restores rewrite
    nothing), so cross-journal digest counts are the double-execution
    audit.
    """
    counts = {}
    for entry in _all_journal_entries(ledger):
        digest = fingerprint_digest(entry.case)
        counts[digest] = counts.get(digest, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Lease planning
# ----------------------------------------------------------------------
class TestPlanLeases:
    def test_chunks_partition_the_grid(self):
        chunks = plan_leases(101, workers=4)
        flat = [index for chunk in chunks for index in chunk]
        assert flat == list(range(101))

    def test_chunks_shrink_toward_the_tail(self):
        sizes = [len(chunk) for chunk in plan_leases(1000, workers=4)]
        assert sizes[0] == 125        # ceil(1000 / (2 * 4))
        assert sizes[0] > sizes[-1]   # guided self-scheduling decay
        assert sizes == sorted(sizes, reverse=True)

    def test_min_chunk_floors_the_tail(self):
        chunks = plan_leases(100, workers=4, min_chunk=10)
        assert all(len(chunk) >= 10 for chunk in chunks[:-1])
        flat = [index for chunk in chunks for index in chunk]
        assert flat == list(range(100))

    def test_single_worker_single_chunk_when_floored(self):
        assert plan_leases(4, workers=1, min_chunk=4) == [[0, 1, 2, 3]]

    @pytest.mark.parametrize("kwargs", [
        {"n_cases": 0, "workers": 1},
        {"n_cases": 4, "workers": 0},
        {"n_cases": 4, "workers": 1, "min_chunk": 0},
        {"n_cases": 4, "workers": 1, "factor": 0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(LedgerError):
            plan_leases(**kwargs)


# ----------------------------------------------------------------------
# The ledger state machine
# ----------------------------------------------------------------------
class TestLedger:
    def _campaign(self, tmp_path, count=4, workers=2, **kwargs):
        cases = _tiny_cases(count)
        coordinator = Coordinator.create(tmp_path / "camp", cases,
                                         workers, **kwargs)
        return coordinator.ledger, cases

    def test_initialise_round_trips(self, tmp_path):
        ledger, cases = self._campaign(tmp_path)
        manifest = ledger.load_manifest()
        assert manifest["cases"] == len(cases)
        grid = ledger.load_grid()
        assert grid == [case_fingerprint(case) for case in cases]
        leases = ledger.leases()
        covered = sorted(index for lease in leases
                         for index in lease.case_indices)
        assert covered == list(range(len(cases)))
        assert all(lease.state == "pending" and lease.generation == 1
                   for lease in leases)

    def test_reinitialise_is_refused(self, tmp_path):
        ledger, cases = self._campaign(tmp_path)
        with pytest.raises(LedgerError, match="already initialised"):
            ledger.initialise([case_fingerprint(c) for c in cases],
                              [[0], [1], [2], [3]], "digest")

    def test_chunks_must_partition_exactly(self, tmp_path):
        ledger = LeaseLedger(tmp_path / "bad")
        fingerprints = [case_fingerprint(c) for c in _tiny_cases(3)]
        with pytest.raises(LedgerError, match="partition"):
            ledger.initialise(fingerprints, [[0], [1]], "digest")
        with pytest.raises(LedgerError, match="partition"):
            ledger.initialise(fingerprints, [[0], [1], [1], [2]], "digest")

    def test_foreign_and_wrong_version_documents_are_rejected(self,
                                                              tmp_path):
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        path = ledger.lease_path(lease_id)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(LedgerError, match="version"):
            ledger.read_lease(lease_id)
        path.write_text('{"format": "something-else"}')
        with pytest.raises(LedgerError, match="not a repro-distrib"):
            ledger.read_lease(lease_id)
        path.write_text("not json")
        with pytest.raises(LedgerError, match="not valid JSON"):
            ledger.read_lease(lease_id)

    def test_missing_manifest_is_an_error(self, tmp_path):
        with pytest.raises(LedgerError, match="manifest"):
            LeaseLedger(tmp_path / "nowhere").load_manifest()

    def test_claim_is_single_winner_under_contention(self, tmp_path):
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        winners = []
        barrier = threading.Barrier(8)

        def contend(worker):
            barrier.wait()
            lease = ledger.claim(lease_id, worker)
            if lease is not None:
                winners.append(worker)

        threads = [threading.Thread(target=contend, args=(f"w{n}",))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1
        lease = ledger.read_lease(lease_id)
        assert lease.state == "claimed"
        assert lease.worker == winners[0]
        # The generation's claim token names the winner.
        token = ledger.claim_token_path(lease_id, 1)
        assert token.read_text() == winners[0]

    def test_claim_on_non_pending_lease_returns_none(self, tmp_path):
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        lease = ledger.claim(lease_id, "w0")
        assert lease is not None
        assert ledger.claim(lease_id, "w1") is None
        ledger.complete(lease)
        assert ledger.claim(lease_id, "w1") is None

    def test_heartbeat_after_steal_raises_lease_revoked(self, tmp_path):
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        lease = ledger.claim(lease_id, "victim")
        # Simulate a supervisor declaring the victim dead: far future.
        released = ledger.release_expired(
            timeout=1.0, now=time.time() + 3600)
        assert released == [lease_id]
        with pytest.raises(LeaseRevoked, match="generation"):
            ledger.heartbeat(lease)

    def test_release_expired_bumps_generation_once_and_audits(self,
                                                              tmp_path):
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        ledger.claim(lease_id, "victim")
        moment = time.time() + 3600
        assert ledger.release_expired(1.0, now=moment) == [lease_id]
        stolen = ledger.read_lease(lease_id)
        assert stolen.state == "pending"
        assert stolen.generation == 2
        assert stolen.worker is None
        assert len(stolen.steals) == 1
        assert stolen.steals[0]["worker"] == "victim"
        assert stolen.steals[0]["generation"] == 1
        # A second pass does not steal again: no new claim, no token.
        assert ledger.release_expired(1.0, now=moment) == []

    def test_fresh_heartbeat_is_not_released(self, tmp_path):
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        lease = ledger.claim(lease_id, "alive")
        ledger.heartbeat(lease)
        assert ledger.release_expired(timeout=3600.0) == []
        assert ledger.read_lease(lease_id).generation == 1

    def test_orphaned_claim_token_is_recovered(self, tmp_path):
        # A claimer that died after winning the token but before
        # publishing the claimed state: the lease looks pending, but its
        # current-generation token blocks every future claim.
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        token = ledger.claim_token_path(lease_id, 1)
        token.write_text("dead-claimer")
        assert ledger.claim(lease_id, "w1") is None  # blocked
        released = ledger.release_expired(1.0, now=time.time() + 3600)
        assert released == [lease_id]
        lease = ledger.claim(lease_id, "w1")  # generation 2 token is free
        assert lease is not None and lease.generation == 2

    def test_complete_is_idempotent_and_final(self, tmp_path):
        ledger, _ = self._campaign(tmp_path)
        lease_id = ledger.lease_ids()[0]
        lease = ledger.claim(lease_id, "w0")
        ledger.complete(lease)
        ledger.complete(lease)  # idempotent
        done = ledger.read_lease(lease_id)
        assert done.state == "done"
        assert done.completed_unix is not None
        assert ledger.release_expired(0.001,
                                      now=time.time() + 3600) == []

    def test_status_counts(self, tmp_path):
        ledger, cases = self._campaign(tmp_path)
        status = ledger.status()
        assert status["leases"] == status["pending"] > 0
        assert status["complete"] is False
        for lease_id in ledger.lease_ids():
            lease = ledger.claim(lease_id, "w0")
            ledger.complete(lease)
        status = ledger.status()
        assert status["complete"] is True
        assert status["cases_done"] == len(cases)


# ----------------------------------------------------------------------
# In-process campaigns (threads sharing the ledger)
# ----------------------------------------------------------------------
class TestWorkers:
    def test_single_worker_completes_a_campaign(self, tmp_path):
        cases = _tiny_cases(4)
        coordinator = Coordinator.create(tmp_path / "camp", cases,
                                         workers=2)
        worker = DistribWorker(coordinator.ledger.root, worker_id="w0")
        summary = worker.run()
        assert summary["executed"] == len(coordinator.ledger.lease_ids())
        assert coordinator.status()["complete"] is True
        counts = _execution_counts(coordinator.ledger)
        assert len(counts) == len(cases)
        assert set(counts.values()) == {1}

    def test_two_workers_share_one_campaign_exactly_once(self, tmp_path):
        cases = _tiny_cases(6)
        coordinator = Coordinator.create(tmp_path / "camp", cases,
                                         workers=2, min_chunk=1)
        workers = [DistribWorker(coordinator.ledger.root,
                                 worker_id=f"w{n}", poll_interval=0.01)
                   for n in range(2)]
        threads = [threading.Thread(target=worker.run)
                   for worker in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert coordinator.status()["complete"] is True
        counts = _execution_counts(coordinator.ledger)
        assert len(counts) == len(cases)
        assert set(counts.values()) == {1}, "a case executed twice"

    def test_lease_journal_header_carries_lease_identity(self, tmp_path):
        cases = _tiny_cases(4)
        coordinator = Coordinator.create(tmp_path / "camp", cases,
                                         workers=1, min_chunk=4)
        DistribWorker(coordinator.ledger.root, worker_id="w0").run()
        [lease_id] = coordinator.ledger.lease_ids()
        meta = RunJournal(
            coordinator.ledger.journal_path(lease_id)).read_header()
        assert meta["lease_id"] == lease_id
        assert meta["case_indices"] == [0, 1, 2, 3]
        assert meta["worker"] == "w0"
        assert meta["generation"] == 1

    def test_merge_verifies_against_the_campaign_grid(self, tmp_path):
        cases = _tiny_cases(4)
        coordinator = Coordinator.create(tmp_path / "camp", cases,
                                         workers=2)
        DistribWorker(coordinator.ledger.root, worker_id="w0").run()
        report = coordinator.merge()
        assert report.complete is True
        assert report.cases == len(cases)
        merged = load_journal(coordinator.ledger.merged_path)
        assert [entry.case_index for entry in merged] == \
            list(range(len(cases)))
        assert [entry.case for entry in merged] == \
            [case_fingerprint(case) for case in cases]

    def test_merge_before_any_worker_is_an_error(self, tmp_path):
        coordinator = Coordinator.create(tmp_path / "camp",
                                         _tiny_cases(2), workers=1)
        with pytest.raises(LedgerError, match="no lease journals"):
            coordinator.merge()


# ----------------------------------------------------------------------
# Kill-and-steal: the integration the subsystem exists for
# ----------------------------------------------------------------------
class TestKillAndSteal:
    def _worker_env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return env

    def _kill_mid_lease(self, root, cases):
        """SIGKILL a per-case victim mid-way through a one-lease campaign.

        Returns ``(coordinator, lease_id, entries)`` once the kill
        provably landed mid-lease (>= 1 durable entry, lease still
        claimed), or ``None`` when the victim won the race and finished
        the whole lease first (possible on a badly stalled machine).
        """
        coordinator = Coordinator.create(root, cases,
                                         workers=1, min_chunk=len(cases))
        ledger = coordinator.ledger
        [lease_id] = ledger.lease_ids()
        journal_path = ledger.journal_path(lease_id)

        # --strategy percase journals every case as it completes, so
        # entries appear while the lease is still claimed; the batched
        # strategy would journal the whole lease in one burst and leave
        # no window in which to die mid-lease.
        victim = spawn_worker(ledger.root, worker_id="victim",
                              strategy="percase", lease_timeout=None)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if journal_path.exists() and load_journal(journal_path):
                    break
                time.sleep(0.005)
            else:
                pytest.fail("victim never journaled a case")
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=30)

        before_steal = load_journal(journal_path)
        assert before_steal, "kill landed before any durable entry"
        if ledger.read_lease(lease_id).state != "claimed":
            return None
        return coordinator, lease_id, before_steal

    def test_sigkilled_worker_chunk_is_stolen_exactly_once(self, tmp_path):
        # One big lease of slow-enough cases: the victim must die
        # mid-lease, not between leases, for the steal to have anything
        # to recover.  The mid-lease kill is a race against the victim
        # draining its lease, so it gets a few fresh-campaign retries.
        cases = sweep_grid(["96x96", "96x128", "128x96", "128x128",
                            "128x160", "160x128", "160x160", "96x160",
                            "160x96", "128x192", "192x128", "192x192"],
                           ["MATS+"], backends=("vectorized",))
        for attempt in range(3):
            outcome = self._kill_mid_lease(tmp_path / f"camp{attempt}",
                                           cases)
            if outcome is not None:
                break
        else:
            pytest.fail("victim finished before SIGKILL in 3 attempts")
        coordinator, lease_id, before_steal = outcome
        ledger = coordinator.ledger

        survivor = spawn_worker(ledger.root, worker_id="survivor",
                                lease_timeout=0.5)
        assert survivor.wait(timeout=180) == 0

        stolen = ledger.read_lease(lease_id)
        assert stolen.state == "done"
        assert stolen.generation == 2, "re-leased exactly once"
        assert len(stolen.steals) == 1
        assert stolen.steals[0]["worker"] == "victim"
        assert coordinator.status()["complete"] is True

        # The exactly-once audit: every case appears once across every
        # journal — the victim's durable work was restored, not redone.
        counts = _execution_counts(ledger)
        assert len(counts) == len(cases)
        assert set(counts.values()) == {1}, "a case executed twice"
        victim_digests = {fingerprint_digest(entry.case)
                          for entry in before_steal}
        merged = load_journal(coordinator.merge().output)
        merged_digests = {fingerprint_digest(entry.case)
                          for entry in merged}
        assert victim_digests <= merged_digests
        assert len(merged) == len(cases)

    def test_run_distributed_end_to_end(self, tmp_path):
        cases = _tiny_cases(5)
        from repro.distrib import run_distributed

        report = run_distributed(tmp_path / "camp", cases, workers=2,
                                 lease_timeout=5.0,
                                 supervise_deadline=180.0)
        assert report.complete is True
        assert report.cases == len(cases)
        counts = _execution_counts(LeaseLedger(tmp_path / "camp"))
        assert set(counts.values()) == {1}


# ----------------------------------------------------------------------
# Runner lease hooks (header_meta / case_sink)
# ----------------------------------------------------------------------
class TestRunnerHooks:
    def test_header_meta_merges_into_fresh_journal_header(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        SweepRunner(_tiny_cases(2), journal=journal,
                    header_meta={"lease_id": "lease-7",
                                 "cases": "overridden?"}).run()
        meta = RunJournal(journal).read_header()
        assert meta["lease_id"] == "lease-7"
        assert meta["cases"] == 2  # runner-owned keys win over the caller

    def test_case_sink_sees_only_fresh_executions(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        cases = _tiny_cases(3)
        first = SweepRunner(cases[:3], journal=journal)
        seen = []
        first.run(case_sink=lambda index, record: seen.append(index))
        assert sorted(seen) == [0, 1, 2]
        # Resume re-executes nothing, so the sink must see nothing.
        resumed = []
        SweepRunner(cases, journal=journal).run(
            resume=True,
            case_sink=lambda index, record: resumed.append(index))
        assert resumed == []

    def test_case_sink_exception_aborts_but_keeps_durable_work(self,
                                                               tmp_path):
        journal = tmp_path / "run.jsonl"
        cases = _tiny_cases(4)

        def abort_after_first(index, record):
            raise LeaseRevoked("stolen")

        with pytest.raises(LeaseRevoked):
            SweepRunner(cases, journal=journal, strategy="percase",
                        processes=1).run(case_sink=abort_after_first)
        entries = load_journal(journal)
        assert len(entries) == 1  # the aborting case was already durable
        result = SweepRunner(cases, journal=journal).run(resume=True)
        assert len(result.records) == len(cases)


# ----------------------------------------------------------------------
# Journal header version validation (RPR007 applied to the journal)
# ----------------------------------------------------------------------
class TestHeaderVersion:
    def test_wrong_header_version_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({
            "format": "repro-sweep-journal-header",
            "version": 99, "meta": {"cases": 1},
        }, sort_keys=True) + "\n")
        with pytest.raises(JournalError, match="version"):
            RunJournal(path).read_header()

    def test_torn_header_fragment_still_reads_as_no_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"format": "repro-sweep-journal-header", "vers')
        assert RunJournal(path).read_header() is None


# ----------------------------------------------------------------------
# merge_journals: verified unions
# ----------------------------------------------------------------------
class TestMerge:
    def _shards(self, tmp_path, count=4):
        """Two shard journals over one grid, with header index maps."""
        cases = _tiny_cases(count)
        half = count // 2
        paths = []
        for number, (lo, hi) in enumerate([(0, half), (half, count)]):
            path = tmp_path / f"shard{number}.jsonl"
            SweepRunner(cases[lo:hi], journal=path,
                        header_meta={"case_indices":
                                     list(range(lo, hi))}).run()
            paths.append(path)
        return cases, paths

    def test_union_is_verified_and_grid_ordered(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        grid = [case_fingerprint(case) for case in cases]
        report = merge_journals(tmp_path / "merged.jsonl", paths,
                                grid=grid, require_complete=True)
        assert report.cases == len(cases)
        assert report.duplicates == 0
        assert report.complete is True
        merged = load_journal(tmp_path / "merged.jsonl")
        assert [entry.case_index for entry in merged] == \
            list(range(len(cases)))
        meta = RunJournal(tmp_path / "merged.jsonl").read_header()
        assert meta["grid_complete"] is True
        assert meta["cases"] == len(cases)

    def test_identical_duplicates_tolerated_elapsed_aside(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        # Re-record shard 0's cases with a different wall clock: the
        # work-stealing overlap shape.
        duplicate = tmp_path / "dup.jsonl"
        entries = load_journal(paths[0])
        with RunJournal(duplicate) as journal:
            journal.write_header({"case_indices": [0, 1]})
            for entry in entries:
                record = dict(entry.record)
                record["elapsed_s"] = 99.9
                journal.append(type(entry)(
                    case_index=entry.case_index, kind=entry.kind,
                    case=entry.case, record=record))
        report = merge_journals(tmp_path / "merged.jsonl",
                                [*paths, duplicate],
                                grid=[case_fingerprint(c) for c in cases],
                                require_complete=True)
        assert report.duplicates == 2
        assert report.cases == len(cases)

    def test_conflicting_records_are_rejected(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        conflict = tmp_path / "conflict.jsonl"
        entries = load_journal(paths[0])
        with RunJournal(conflict) as journal:
            journal.write_header({"case_indices": [0, 1]})
            for entry in entries:
                record = dict(entry.record)
                record["total_energy_pj"] = -1.0  # physics disagreement
                journal.append(type(entry)(
                    case_index=entry.case_index, kind=entry.kind,
                    case=entry.case, record=record))
        with pytest.raises(MergeError, match="conflicting records"):
            merge_journals(tmp_path / "merged.jsonl", [*paths, conflict])

    def test_missing_cases_fail_require_complete(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        grid = [case_fingerprint(case) for case in cases]
        report = merge_journals(tmp_path / "merged.jsonl", [paths[0]],
                                grid=grid)
        assert report.complete is False
        with pytest.raises(MergeError, match="missing"):
            merge_journals(tmp_path / "merged.jsonl", [paths[0]],
                           grid=grid, require_complete=True)

    def test_entries_outside_the_grid_are_rejected(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        grid = [case_fingerprint(case) for case in cases[:2]]
        with pytest.raises(MergeError, match="not in the campaign grid"):
            merge_journals(tmp_path / "merged.jsonl", paths, grid=grid)

    def test_index_disagreement_is_rejected(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        grid = [case_fingerprint(case) for case in cases]
        grid.reverse()  # every entry now sits at the wrong position
        with pytest.raises(MergeError, match="grid holds it at"):
            merge_journals(tmp_path / "merged.jsonl", paths, grid=grid)

    def test_shards_disagreeing_about_an_index_are_rejected(self,
                                                            tmp_path):
        cases, paths = self._shards(tmp_path)
        moved = tmp_path / "moved.jsonl"
        entries = load_journal(paths[0])
        with RunJournal(moved) as journal:
            journal.write_header({"case_indices": [7, 8]})
            for entry in entries:
                journal.append(entry)
        with pytest.raises(MergeError, match="disagree about the grid"):
            merge_journals(tmp_path / "merged.jsonl", [*paths, moved])

    def test_duplicate_grid_is_rejected(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        grid = [case_fingerprint(cases[0])] * len(cases)
        with pytest.raises(MergeError, match="duplicate-free"):
            merge_journals(tmp_path / "merged.jsonl", paths, grid=grid)

    def test_merged_artifact_is_itself_mergeable(self, tmp_path):
        cases, paths = self._shards(tmp_path)
        grid = [case_fingerprint(case) for case in cases]
        merge_journals(tmp_path / "merged.jsonl", paths, grid=grid,
                       require_complete=True)
        again = merge_journals(tmp_path / "merged2.jsonl",
                               [tmp_path / "merged.jsonl"], grid=grid,
                               require_complete=True)
        assert again.cases == len(cases)


# ----------------------------------------------------------------------
# The merge CLI: python -m repro.sweep merge
# ----------------------------------------------------------------------
class TestMergeCli:
    def _shards_and_grid(self, tmp_path):
        cases = _tiny_cases(4)
        paths = []
        for number, (lo, hi) in enumerate([(0, 2), (2, 4)]):
            path = tmp_path / f"shard{number}.jsonl"
            SweepRunner(cases[lo:hi], journal=path,
                        header_meta={"case_indices":
                                     list(range(lo, hi))}).run()
            paths.append(str(path))
        grid_path = tmp_path / "grid.jsonl"
        grid_path.write_text("\n".join(
            json.dumps(case_fingerprint(case), sort_keys=True)
            for case in cases) + "\n")
        return cases, paths, grid_path

    def test_merge_subcommand_end_to_end(self, tmp_path, capsys):
        cases, paths, grid_path = self._shards_and_grid(tmp_path)
        output = tmp_path / "merged.jsonl"
        code = sweep_main(["merge", str(output), *paths,
                           "--grid", str(grid_path), "--require-complete"])
        assert code == 0
        assert "merged 4 cases" in capsys.readouterr().out
        assert len(load_journal(output)) == len(cases)

    def test_merge_subcommand_error_contract(self, tmp_path, capsys):
        cases, paths, grid_path = self._shards_and_grid(tmp_path)
        output = tmp_path / "merged.jsonl"
        code = sweep_main(["merge", str(output), paths[0],
                           "--grid", str(grid_path), "--require-complete"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")
        code = sweep_main(["merge", str(output), paths[0],
                           "--require-complete"])
        assert code == 2

    def test_grid_loader_validates(self, tmp_path):
        bad = tmp_path / "grid.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(MergeError, match="not valid JSON"):
            load_grid_fingerprints(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(MergeError, match="no case fingerprints"):
            load_grid_fingerprints(empty)


# ----------------------------------------------------------------------
# The distrib CLI
# ----------------------------------------------------------------------
class TestDistribCli:
    def test_init_status_merge_flow(self, tmp_path, capsys):
        from repro.distrib.__main__ import main as distrib_main

        root = tmp_path / "camp"
        code = distrib_main(["init", str(root), "--workers", "2",
                             "--geometry", "8x8", "--geometry", "16x16",
                             "--algorithm", "MATS+",
                             "--backend", "vectorized"])
        assert code == 0
        assert "2 cases" in capsys.readouterr().out
        DistribWorker(root, worker_id="w0").run()
        assert distrib_main(["status", str(root), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True
        assert distrib_main(["merge", str(root)]) == 0
        assert "merged 2 cases" in capsys.readouterr().out
        assert (root / "merged.jsonl").exists()

    def test_init_without_cases_is_an_error(self, tmp_path, capsys):
        from repro.distrib.__main__ import main as distrib_main

        assert distrib_main(["init", str(tmp_path / "camp")]) == 2
        assert capsys.readouterr().err.startswith("error:")
