"""Kernel-tier seam: availability fallback, provenance, cache immutability.

The compiled tiers (``kernel="jit"`` via numba, ``kernel="gpu"`` via CuPy)
are strictly optional: these tests pin the contract that holds *without*
the dependency — a request for an absent tier falls back to the ``"flat"``
numpy kernel with exactly one process-wide warning, ``"auto"`` resolves to
``"flat"`` with the same single warning, results are identical to an
explicit flat run, and every result/record truthfully carries the tier
that actually executed.  Where numba/cupy *are* importable (the CI
optional-deps job) the same tests exercise the real tier paths, and the
differential suites (``test_engine_equivalence`` /
``test_banked_differential``) pin the numeric matrix.
"""

from __future__ import annotations

import sys
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MARCH_CM, TestSession
from repro.bist import BistController, BistError, BistOrder
from repro.bist.address_generator import AddressGenerator
from repro.core.session import SessionError
from repro.engine import (
    KERNEL_CHOICES,
    available_kernels,
    kernel_available,
    reset_kernel_state,
    resolve_kernel,
)
from repro.march.library import get_algorithm
from repro.march.ordering import RowMajorOrder
from repro.sram import ArrayGeometry, OperatingMode
from repro.sweep.runner import (
    SweepError,
    SweepRecord,
    SweepRunner,
    prr_grid,
    sweep_grid,
)

from differential import assert_identical_records

GEOMETRY = ArrayGeometry(rows=8, columns=16)

#: The compiled-tier modules and the third-party imports behind them;
#: poisoning both in ``sys.modules`` simulates an absent dependency even
#: in environments (the CI optional-deps job) where numba is installed.
_TIER_IMPORTS = {
    "jit": ("numba", "repro.engine.compiled"),
    "gpu": ("cupy", "repro.engine.gpu"),
}


@pytest.fixture
def clean_kernels(monkeypatch):
    """Fresh tier cache + warn-once registry around each test."""
    reset_kernel_state()
    yield monkeypatch
    reset_kernel_state()


def _absent(monkeypatch, *tiers: str) -> None:
    """Force ``tiers`` to be unavailable, whatever this host has installed.

    A ``None`` entry in ``sys.modules`` makes ``import`` raise
    ``ImportError`` even for an already-imported module.
    """
    for tier in tiers:
        for name in _TIER_IMPORTS[tier]:
            monkeypatch.setitem(sys.modules, name, None)
    reset_kernel_state()  # drop memoised availability probed before poisoning


# ----------------------------------------------------------------------
# Resolution and the warn-once contract (satellite: dependency-absent)
# ----------------------------------------------------------------------
def test_kernel_choices_cover_all_tiers():
    assert KERNEL_CHOICES == ("flat", "segmented", "jit", "gpu", "auto")
    concrete = available_kernels()
    assert "flat" in concrete and "segmented" in concrete
    assert "auto" not in concrete


def test_explicit_jit_falls_back_to_flat_with_one_warning(clean_kernels):
    _absent(clean_kernels, "jit")
    with pytest.warns(RuntimeWarning, match="fall"):
        assert resolve_kernel("jit") == "flat"
    # Warn-once: the second resolution is silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_kernel("jit") == "flat"


def test_auto_resolves_to_flat_with_a_single_warning(clean_kernels):
    _absent(clean_kernels, "jit", "gpu")
    with pytest.warns(RuntimeWarning) as caught:
        assert resolve_kernel("auto") == "flat"
        assert resolve_kernel("auto") == "flat"
    assert len(caught) == 1


@pytest.mark.skipif(not kernel_available("jit"),
                    reason="numba not installed")
def test_auto_prefers_jit_when_numba_is_importable(clean_kernels):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_kernel("auto") == "jit"


def test_flat_and_segmented_never_warn(clean_kernels):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_kernel("flat") == "flat"
        assert resolve_kernel("segmented") == "segmented"


# ----------------------------------------------------------------------
# Truthful provenance + identical results under fallback
# ----------------------------------------------------------------------
def test_session_fallback_result_is_identical_and_truthful(clean_kernels):
    _absent(clean_kernels, "jit")
    flat = TestSession(GEOMETRY, backend="vectorized", kernel="flat").run(
        MARCH_CM, OperatingMode.LOW_POWER_TEST)
    with pytest.warns(RuntimeWarning):
        jit = TestSession(GEOMETRY, backend="vectorized", kernel="jit").run(
            MARCH_CM, OperatingMode.LOW_POWER_TEST)
    assert flat.kernel == "flat"
    assert jit.kernel == "flat"  # the tier that actually ran, not the wish
    assert jit.energy_by_source == flat.energy_by_source  # bit-identical
    assert jit.total_energy == flat.total_energy
    assert jit.cycles == flat.cycles


def test_reference_backend_leaves_kernel_blank():
    result = TestSession(GEOMETRY, backend="reference").run(
        MARCH_CM, OperatingMode.FUNCTIONAL)
    assert result.kernel == ""


def test_unknown_kernel_rejected_everywhere():
    with pytest.raises(SessionError, match="unknown kernel"):
        TestSession(GEOMETRY, kernel="simd")
    with pytest.raises(BistError, match="unknown kernel"):
        BistController(GEOMETRY, kernel="simd")
    with pytest.raises(SweepError, match="unknown kernel"):
        sweep_grid(["8x8"], ["MATS+"], kernel="simd")


def test_bist_controller_threads_and_stamps_kernel(clean_kernels):
    controller = BistController(GEOMETRY, backend="vectorized",
                                kernel="flat",
                                order=BistOrder.WORDLINE_SEQUENTIAL)
    result = controller.run(get_algorithm("MATS+"), low_power=True)
    assert result.kernel == "flat"
    controller.warm(get_algorithm("MATS+"))  # best-effort, must not raise


# ----------------------------------------------------------------------
# Dispatcher warm hook
# ----------------------------------------------------------------------
def test_engine_warm_is_chainable_and_safe(clean_kernels):
    from repro.engine import VectorizedEngine

    engine = VectorizedEngine(GEOMETRY)
    assert engine.warm(MARCH_CM) is engine
    # Warming compiled the trace: the memo returns the same object.
    assert engine.trace_for(MARCH_CM) is engine.trace_for(MARCH_CM)


def test_dispatcher_warm_reports_success(clean_kernels):
    session = TestSession(GEOMETRY, backend="vectorized")
    assert session._dispatch.warm(MARCH_CM) is True


# ----------------------------------------------------------------------
# Sweep records: requested vs. executed tier, strategy parity
# ----------------------------------------------------------------------
def test_sweep_records_carry_requested_and_executed_tier(clean_kernels):
    _absent(clean_kernels, "jit")
    cases = sweep_grid(["8x16"], ["MATS+"], kernel="jit")
    with pytest.warns(RuntimeWarning):
        batched = SweepRunner(cases, strategy="batched").run(progress=False)
    record = batched.records[0]
    assert record.kernel == "jit"        # what the case asked for
    assert record.kernel_used == "flat"  # what actually executed
    reset_kernel_state()
    with pytest.warns(RuntimeWarning):
        percase = SweepRunner(cases, processes=1,
                              strategy="percase").run(progress=False)
    assert_identical_records(percase, batched)


def test_prr_records_carry_kernel_fields(clean_kernels):
    cases = prr_grid(["8x16"], ["MATS+"], backend="vectorized",
                     kernel="flat")
    result = SweepRunner(cases, processes=1,
                         strategy="percase").run(progress=False)
    record = result.records[0]
    assert record.kernel == "flat"
    assert record.kernel_used == "flat"


def test_grid_engine_tracks_last_kernel_used(clean_kernels):
    from repro.engine.grid import BatchedGridEngine

    engine = BatchedGridEngine(sweep_grid(["8x16"], ["MATS+"],
                                          kernel="flat"))
    records = [record for _, record in engine.completions()]
    assert records and engine.last_kernel_used == "flat"


def test_engine_run_state_is_thread_local(clean_kernels):
    # One engine shared by a serving worker pool: last_kernel_used /
    # last_stress / last_counters are per-thread observations, so a run
    # on one thread must not leak provenance into another.
    import threading

    from repro.engine.vectorized import VectorizedEngine

    engine = VectorizedEngine(ArrayGeometry(8, 16), kernel="flat")
    engine.run(get_algorithm("MATS+"), OperatingMode.FUNCTIONAL)
    assert engine.last_kernel_used == "flat"
    assert engine.last_counters

    observed = {}

    def probe():
        observed["kernel"] = engine.last_kernel_used
        observed["counters"] = engine.last_counters
        observed["stress"] = engine.last_stress
        engine.run(get_algorithm("MATS+"), OperatingMode.LOW_POWER_TEST)
        observed["after"] = engine.last_kernel_used

    worker = threading.Thread(target=probe)
    worker.start()
    worker.join()
    # The fresh thread starts blank and its own run fills its own slot...
    assert observed["kernel"] is None
    assert observed["counters"] == {}
    assert observed["stress"] is None
    assert observed["after"] == "flat"
    # ...without clobbering the main thread's provenance.
    assert engine.last_kernel_used == "flat"
    assert engine.last_counters


def test_fallback_warns_exactly_once_across_threads(clean_kernels):
    # The warn-once registry is shared process state hit concurrently by
    # the serving pool: N racing resolutions of a missing tier must
    # produce exactly one warning, not N and not zero.
    import threading

    monkeypatch = clean_kernels
    _absent(monkeypatch, "jit")
    caught = []
    barrier = threading.Barrier(4)

    def resolve():
        barrier.wait()
        with warnings.catch_warnings(record=True) as log:
            warnings.simplefilter("always")
            resolve_kernel("jit")
        caught.extend(log)

    threads = [threading.Thread(target=resolve) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len([w for w in caught if "falling back" in str(w.message)]) == 1


def test_old_exports_import_with_default_kernel_fields():
    row = {"rows": 8, "columns": 8, "bits_per_word": 1,
           "algorithm": "MATS+", "order": "row-major", "any_direction": "up",
           "backend": "auto", "backend_used": "vectorized",
           "cycles_per_mode": 320, "functional_power_w": 1.0,
           "low_power_power_w": 0.5, "measured_prr": 0.5,
           "analytical_prr": 0.5, "analytical_prr_recharge": 0.5,
           "passed": True, "elapsed_s": 0.1}
    record = SweepRecord.from_dict(row)
    assert record.kernel == "default" and record.kernel_used == ""


# ----------------------------------------------------------------------
# Warm-path regression: the BIST order memo (the 4096x4096 fix)
# ----------------------------------------------------------------------
def test_address_generator_memoises_its_order():
    generator = AddressGenerator(GEOMETRY)
    first = generator.as_address_order()
    assert generator.as_address_order() is first
    # The memo is per configured order: reconfiguring builds the other
    # order once and memoises that instead.
    generator.order = BistOrder.FAST_ROW
    fast_row = generator.as_address_order()
    assert fast_row is not first
    assert generator.as_address_order() is fast_row
    # The memoised order keeps its per-instance caches warm.
    generator.order = BistOrder.WORDLINE_SEQUENTIAL
    again = generator.as_address_order()
    assert again.rank_array() is again.rank_array()


# ----------------------------------------------------------------------
# Property: per-order/per-trace caches are immutable under every tier
# ----------------------------------------------------------------------
@given(rows=st.integers(min_value=1, max_value=8),
       columns=st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_rank_array_and_segment_walk_immutable_under_every_tier(
        rows, columns):
    """No kernel tier may scribble on the shared cached structures.

    ``AddressOrder.rank_array()`` and the compiled trace's
    ``segment_walk()`` arrays are per-instance memos shared by every run
    on that order/trace; a tier that mutated them (e.g. an in-place
    dtype normalisation) would silently corrupt all subsequent runs.
    """
    import numpy as np

    from repro.engine import UnsupportedConfiguration, VectorizedEngine

    geometry = ArrayGeometry(rows=rows, columns=columns)
    for tier in available_kernels():
        order = RowMajorOrder(geometry)
        engine = VectorizedEngine(geometry, order=order, kernel=tier)
        rank_before = order.rank_array().copy()
        walk = engine.trace_for(MARCH_CM).segment_walk()
        snapshot = {name: getattr(walk, name).copy()
                    for name in ("element", "length", "first_word",
                                 "last_word", "carry_in", "in_chain")}
        for mode in OperatingMode:
            try:
                engine.run_aggregates(MARCH_CM, mode)
            except UnsupportedConfiguration:
                continue
        assert order.rank_array() is not None
        assert np.array_equal(order.rank_array(), rank_before), tier
        after = engine.trace_for(MARCH_CM).segment_walk()
        assert after is walk, tier  # the memo survived the runs
        for name, expected in snapshot.items():
            assert np.array_equal(getattr(after, name), expected), \
                (tier, name)
