"""Tests of the low-power planner and the analytical Section 5 power model."""

import pytest

from repro.core.lowpower import FunctionalModePlanner, LowPowerTestPlanner
from repro.core.prr import AnalyticalModelError, AnalyticalPowerModel
from repro.march import (
    AddressingDirection,
    MARCH_CM,
    MARCH_SS,
    MATS_PLUS,
    PAPER_TABLE1_ALGORITHMS,
    RowMajorOrder,
    walk,
)
from repro.sram import FUNCTIONAL_PLAN
from repro.sram.geometry import ArrayGeometry, PAPER_GEOMETRY


class TestFunctionalPlanner:
    def test_always_returns_functional_plan(self, small_geometry):
        planner = FunctionalModePlanner()
        for step in walk(MATS_PLUS, RowMajorOrder(small_geometry)):
            assert planner.plan(step) is FUNCTIONAL_PLAN
        assert planner.requires_low_power_mode is False


class TestLowPowerPlanner:
    def plans_for(self, algorithm, geometry):
        planner = LowPowerTestPlanner(geometry)
        order = RowMajorOrder(geometry)
        return list(zip(walk(algorithm, order), (planner.plan(s) for s in walk(algorithm, order))))

    def test_enables_only_the_following_column(self, small_geometry):
        planner = LowPowerTestPlanner(small_geometry)
        steps = list(walk(MATS_PLUS, RowMajorOrder(small_geometry)))
        for step in steps:
            plan = planner.plan(step)
            if step.direction is AddressingDirection.UP:
                expected = {step.word + 1} if step.word + 1 < small_geometry.words_per_row else set()
            else:
                expected = {step.word - 1} if step.word - 1 >= 0 else set()
            assert set(plan.enabled_columns) == expected

    def test_full_restore_exactly_on_last_access_of_each_row(self, small_geometry):
        planner = LowPowerTestPlanner(small_geometry)
        steps = list(walk(MARCH_CM, RowMajorOrder(small_geometry)))
        restores = [s for s in steps if planner.plan(s).full_restore]
        planner.reset()
        upper = MARCH_CM.element_count * small_geometry.rows
        assert upper - (MARCH_CM.element_count - 1) <= len(restores) <= upper
        assert all(s.last_access_on_row for s in restores)
        # every actual row change is covered by a restoration cycle
        for current, following in zip(steps, steps[1:]):
            if following.row != current.row:
                assert current.last_access_on_row

    def test_lptest_toggles_only_on_restore_cycles(self, small_geometry):
        planner = LowPowerTestPlanner(small_geometry)
        for step in walk(MATS_PLUS, RowMajorOrder(small_geometry)):
            plan = planner.plan(step)
            assert (plan.lptest_toggles > 0) == step.last_access_on_row

    def test_control_energy_booked_on_column_changes(self, small_geometry):
        planner = LowPowerTestPlanner(small_geometry)
        steps = list(walk(MARCH_CM, RowMajorOrder(small_geometry)))
        plans = [planner.plan(step) for step in steps]
        # March C- applies up to 2 operations per address: the second access
        # of a pair stays on the same column and must not pay control energy.
        charged = [p.control_energy > 0 for p in plans]
        assert charged[0] is True
        same_column_steps = [i for i, s in enumerate(steps[1:], start=1)
                             if s.word == steps[i - 1].word and s.row == steps[i - 1].row]
        assert same_column_steps, "March C- should revisit addresses"
        assert all(not charged[i] for i in same_column_steps)

    def test_statistics_accumulate(self, tiny_geometry):
        planner = LowPowerTestPlanner(tiny_geometry)
        for step in walk(MATS_PLUS, RowMajorOrder(tiny_geometry)):
            planner.plan(step)
        stats = planner.statistics
        assert stats.cycles == MATS_PLUS.operation_count * tiny_geometry.word_count
        upper = MATS_PLUS.element_count * tiny_geometry.rows
        assert upper - (MATS_PLUS.element_count - 1) <= stats.restore_cycles <= upper
        planner.reset()
        assert planner.statistics.cycles == 0

    def test_word_oriented_geometry_enables_whole_word_group(self):
        geometry = ArrayGeometry(rows=4, columns=16, bits_per_word=4)
        planner = LowPowerTestPlanner(geometry)
        step = next(iter(walk(MATS_PLUS, RowMajorOrder(geometry))))
        plan = planner.plan(step)
        assert set(plan.enabled_columns) == set(geometry.columns_of_word(1))


class TestAnalyticalModel:
    def test_prr_close_to_paper_band(self):
        """Paper Table 1: PRR between 47.3 % and 50.5 % on the 512x512 array.

        Our per-event energies are not the authors' (unpublished) Spice
        values, so we accept a wider band around ~50 %, but every algorithm
        must show a large reduction of the same order as the paper's.
        """
        model = AnalyticalPowerModel(PAPER_GEOMETRY)
        for algorithm in PAPER_TABLE1_ALGORITHMS:
            prr = model.prr(algorithm)
            assert 0.40 < prr < 0.70, algorithm.name

    def test_low_power_always_cheaper(self):
        model = AnalyticalPowerModel(PAPER_GEOMETRY)
        for algorithm in PAPER_TABLE1_ALGORITHMS:
            assert model.low_power_test_power(algorithm) < model.functional_power(algorithm)

    def test_secondary_overheads_are_negligible(self):
        # Paper sources 3 and 5: LPtest driver and control logic barely move PRR.
        model = AnalyticalPowerModel(PAPER_GEOMETRY)
        for algorithm in PAPER_TABLE1_ALGORITHMS:
            delta = model.prr(algorithm) - model.prr(algorithm, include_secondary=True)
            assert delta < 0.01

    def test_next_column_recharge_lowers_prr(self):
        # The term the paper's equation omits (see EXPERIMENTS.md) reduces
        # the predicted PRR, most strongly for few-operations-per-element tests.
        model = AnalyticalPowerModel(PAPER_GEOMETRY)
        for algorithm in PAPER_TABLE1_ALGORITHMS:
            assert model.prr(algorithm, include_next_column_recharge=True) \
                < model.prr(algorithm)

    def test_prr_grows_with_column_count(self):
        narrow = AnalyticalPowerModel(ArrayGeometry(rows=512, columns=64))
        wide = AnalyticalPowerModel(ArrayGeometry(rows=512, columns=512))
        assert wide.prr(MARCH_CM) > narrow.prr(MARCH_CM)

    def test_savings_term_matches_formula(self, tech):
        model = AnalyticalPowerModel(PAPER_GEOMETRY, tech=tech)
        expected = (PAPER_GEOMETRY.columns - 2) * (
            model.energies.res_per_column + model.energies.cell_res)
        assert model.res_savings_per_cycle() == pytest.approx(expected)

    def test_row_transition_term_matches_formula(self):
        model = AnalyticalPowerModel(PAPER_GEOMETRY)
        expected = (MARCH_CM.element_count / MARCH_CM.operation_count) \
            * model.energies.restore_per_column
        assert model.row_transition_overhead_per_cycle(MARCH_CM) == pytest.approx(expected)

    def test_prediction_bundle_consistency(self):
        model = AnalyticalPowerModel(PAPER_GEOMETRY)
        prediction = model.predict(MARCH_SS)
        assert prediction.prr == pytest.approx(
            1.0 - prediction.low_power_per_cycle / prediction.functional_per_cycle)
        row = prediction.as_row()
        assert row["algorithm"] == "March SS"

    def test_degenerate_geometry_rejected(self):
        with pytest.raises(AnalyticalModelError):
            AnalyticalPowerModel(ArrayGeometry(rows=4, columns=2))
