"""Unit tests for the cell array, data backgrounds and the per-column bundle."""

import pytest

from repro.sram.array import (
    ArrayError,
    CellArray,
    checkerboard_background,
    column_stripe_background,
    row_stripe_background,
    solid_background,
)
from repro.sram.cell import SixTransistorCell
from repro.sram.column import Column, ColumnError
from repro.sram.geometry import ArrayGeometry
from repro.sram.timing import ClockCycle


class TestBackgrounds:
    def test_solid_background(self, small_geometry):
        array = CellArray(small_geometry)
        array.apply_background(solid_background(1))
        assert array.count_value(1) == small_geometry.cell_count
        assert array.count_value(0) == 0

    def test_checkerboard_background(self, small_geometry):
        array = CellArray(small_geometry)
        array.apply_background(checkerboard_background())
        assert array.count_value(0) == small_geometry.cell_count // 2
        assert array.cell(0, 0).value == 0
        assert array.cell(0, 1).value == 1

    def test_stripe_backgrounds(self, small_geometry):
        array = CellArray(small_geometry)
        array.apply_background(row_stripe_background())
        assert array.cell(0, 3).value == 0
        assert array.cell(1, 3).value == 1
        array.apply_background(column_stripe_background(invert=True))
        assert array.cell(3, 0).value == 1
        assert array.cell(3, 1).value == 0

    def test_invalid_solid_value(self):
        with pytest.raises(ArrayError):
            solid_background(3)


class TestArrayAccess:
    def test_out_of_range(self, small_geometry):
        array = CellArray(small_geometry)
        with pytest.raises(ArrayError):
            array.cell(small_geometry.rows, 0)
        with pytest.raises(ArrayError):
            array.cell(0, small_geometry.columns)

    def test_replace_cell_for_fault_injection(self, small_geometry):
        array = CellArray(small_geometry)
        replacement = SixTransistorCell(value=1)
        old = array.replace_cell(2, 3, replacement)
        assert array.cell(2, 3) is replacement
        assert old is not replacement

    def test_snapshot_roundtrip_and_differences(self, small_geometry):
        array = CellArray(small_geometry)
        array.apply_background(checkerboard_background())
        snapshot = array.snapshot()
        array.cell(1, 1).force(1 - array.cell(1, 1).value)
        assert array.differences(snapshot) == [(1, 1)]
        array.load_snapshot(snapshot)
        assert array.differences(snapshot) == []

    def test_load_snapshot_validates_shape(self, small_geometry):
        array = CellArray(small_geometry)
        with pytest.raises(ArrayError):
            array.load_snapshot([[0]])

    def test_statistics_aggregation(self, tiny_geometry):
        array = CellArray(tiny_geometry)
        array.apply_background(solid_background(0))
        array.cell(0, 0).apply_read_equivalent_stress()
        array.cell(0, 1).apply_read_equivalent_stress(partial=True)
        assert array.total_full_res() == 1
        assert array.total_partial_res() == 1
        array.reset_statistics()
        assert array.total_full_res() == 0

    def test_clear(self, tiny_geometry):
        array = CellArray(tiny_geometry)
        array.apply_background(solid_background(1))
        array.clear()
        assert array.cell(0, 0).value is None


class TestColumnBundle:
    def make_column(self, tech, rows=16):
        return Column(index=0, rows=rows, clock=ClockCycle.from_technology(tech), tech=tech)

    def test_floating_lifecycle(self, tech):
        column = self.make_column(tech, rows=512)
        assert not column.is_floating
        column.begin_floating(cycle=0, cell_pulls_bl_low=True)
        assert column.is_floating
        v_bl, v_blb = column.voltages_at(9)
        assert v_bl < 0.3 * tech.vdd       # discharged within ~9 cycles
        assert v_blb == pytest.approx(tech.vdd)
        result = column.restore(cycle=10)
        assert result.energy > 0
        assert not column.is_floating

    def test_catch_up_cannot_go_backwards(self, tech):
        column = self.make_column(tech)
        column.catch_up(5)
        with pytest.raises(ColumnError):
            column.catch_up(3)

    def test_idle_float_without_cell_barely_decays(self, tech):
        column = self.make_column(tech, rows=512)
        column.begin_floating(cycle=0, cell_pulls_bl_low=None)
        v_bl, v_blb = column.voltages_at(100)
        assert v_bl > 0.99 * tech.vdd
        assert v_blb > 0.99 * tech.vdd

    def test_operation_sequence_restores_pair(self, tech):
        column = self.make_column(tech)
        column.prepare_operation(cycle=0)
        column.pair.force_write_levels(1)
        result = column.finish_operation(cycle=0)
        assert result.energy > 0
        assert column.pair.is_fully_precharged()

    def test_reset_restores_powerup_state(self, tech):
        column = self.make_column(tech)
        column.begin_floating(0, True)
        column.reset()
        assert not column.is_floating
        assert column.pair.is_fully_precharged()
