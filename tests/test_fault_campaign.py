"""Backend-pluggable fault campaigns: compiled traces, vectorized kernels.

Three properties are pinned here:

* the compiled :class:`~repro.march.execution.OperationTrace` replays the
  exact access stream of :func:`repro.march.execution.walk` (the reference
  backend's trace sharing changes *nothing* but runtime);
* the vectorized campaign engine produces per-fault detection verdicts
  bit-identical to the reference simulator across every standard fault
  model, both addressing directions and several address orders;
* coupling-fault aggressor enumeration is well-defined at array borders
  and corners, on both backends.
"""

from __future__ import annotations

import pytest

from repro.engine import UnsupportedFaultCampaign
from repro.faults import (
    FAULT_BACKENDS,
    FaultInjection,
    FaultSimulationError,
    FaultSimulator,
    LogicalMemory,
    build_fault_list,
    coupling_fault_models,
    default_fault_locations,
    neighbour_of,
    run_campaign,
    run_coverage,
    single_cell_fault_models,
)
from repro.faults.backend import ReferenceFaultBackend
from repro.faults.models import (
    DataRetentionFault,
    FaultModel,
    StuckAtFault,
    StuckOpenFault,
)
from repro.march import (
    MARCH_CM,
    MARCH_G,
    MARCH_SR,
    MARCH_SS,
    MATS,
    MATS_PLUS,
    ColumnMajorOrder,
    OperationTrace,
    PseudoRandomOrder,
    RowMajorOrder,
    RowMajorSnakeOrder,
    TraceCache,
    walk,
)
from repro.march.element import AddressingDirection
from repro.march.ordering import AddressComplementOrder, make_order
from repro.sram.geometry import ArrayGeometry

from differential import (
    assert_fault_verdicts_identical,
    fault_verdict as verdict,
)

GEOMETRY = ArrayGeometry(rows=6, columns=6)
LOCATIONS = [(0, 0), (0, 5), (2, 3), (5, 0), (5, 5)]

ORDER_FACTORIES = {
    "row-major": RowMajorOrder,
    "column-major": ColumnMajorOrder,
    "pseudo-random": lambda g: PseudoRandomOrder(g, seed=11),
    "snake": RowMajorSnakeOrder,
    "address-complement": AddressComplementOrder,
}


def full_battery(geometry=GEOMETRY, locations=LOCATIONS):
    """Standard battery plus retention faults (not in the default lists)."""
    injections = build_fault_list(geometry, locations=locations)
    for leak_to in (0, 1):
        for retention in (1, 40, 100000):
            injections.append(FaultInjection(
                DataRetentionFault(leak_to=leak_to, retention_cycles=retention),
                victim=(2, 2)))
    return injections


# ----------------------------------------------------------------------
# Compiled traces
# ----------------------------------------------------------------------
class TestOperationTrace:
    @pytest.mark.parametrize("order_name", sorted(ORDER_FACTORIES))
    @pytest.mark.parametrize("direction",
                             [AddressingDirection.UP, AddressingDirection.DOWN])
    def test_trace_replays_walk_exactly(self, order_name, direction):
        order = ORDER_FACTORIES[order_name](GEOMETRY)
        trace = OperationTrace(MARCH_CM, order, direction)
        walked = [(step.index, step.row, step.word, step.operation)
                  for step in walk(MARCH_CM, order, direction)]
        assert list(trace.iter_accesses()) == walked
        assert trace.step_count == len(walked)

    def test_element_backgrounds_follow_writes(self):
        trace = OperationTrace(MARCH_CM, RowMajorOrder(GEOMETRY))
        # March C-: {w0; (r0,w1); (r1,w0); (r0,w1); (r1,w0); (r0)}
        assert trace.element_backgrounds() == [None, 0, 1, 0, 1, 0]

    def test_trace_cache_reuses_compiled_traces(self):
        cache = TraceCache()
        order = RowMajorOrder(GEOMETRY)
        first = cache.get(MARCH_CM, order)
        assert cache.get(MARCH_CM, order) is first
        assert cache.get(MARCH_CM, order, AddressingDirection.DOWN) is not first
        assert len(cache) == 2

    def test_shared_coordinate_lists_across_same_direction_elements(self):
        trace = OperationTrace(MARCH_CM, RowMajorOrder(GEOMETRY))
        ups = [e for e in trace.elements
               if e.direction is AddressingDirection.UP]
        assert len(ups) >= 2
        assert all(e.coordinates is ups[0].coordinates for e in ups)


# ----------------------------------------------------------------------
# Satellite regression: trace sharing must not change reference results
# ----------------------------------------------------------------------
class TestReferenceTraceSharingRegression:
    def naive_simulate(self, algorithm, order, injection):
        """The pre-refactor per-fault path: a fresh walk per injection."""
        memory = LogicalMemory(GEOMETRY, injection)
        mismatches = 0
        first = None
        for step in walk(algorithm, order, AddressingDirection.UP):
            if step.is_write:
                memory.write(step.row, step.word, step.operation.value)
                continue
            if memory.read(step.row, step.word) != step.operation.value:
                mismatches += 1
                if first is None:
                    first = step.index
        return (mismatches > 0, first, mismatches)

    def test_shared_trace_results_unchanged(self):
        order = PseudoRandomOrder(GEOMETRY, seed=3)
        backend = ReferenceFaultBackend(GEOMETRY)
        battery = full_battery()
        shared = backend.simulate_many(MARCH_SS, order, battery)
        for injection, result in zip(battery, shared):
            assert verdict(result) == self.naive_simulate(MARCH_SS, order,
                                                          injection), \
                injection.describe()


# ----------------------------------------------------------------------
# Tentpole: vectorized verdicts bit-identical to the reference simulator
# ----------------------------------------------------------------------
class TestVectorizedEquivalence:
    def compare(self, algorithm, order, direction=AddressingDirection.UP,
                geometry=GEOMETRY, battery=None):
        battery = battery if battery is not None else full_battery(geometry)
        assert_fault_verdicts_identical(geometry, algorithm, order, battery,
                                        direction=direction)

    @pytest.mark.parametrize("order_name", sorted(ORDER_FACTORIES))
    @pytest.mark.parametrize("direction",
                             [AddressingDirection.UP, AddressingDirection.DOWN])
    def test_march_cm_all_orders_both_directions(self, order_name, direction):
        self.compare(MARCH_CM, ORDER_FACTORIES[order_name](GEOMETRY),
                     direction=direction)

    @pytest.mark.parametrize("algorithm",
                             [MATS, MATS_PLUS, MARCH_SS, MARCH_SR, MARCH_G],
                             ids=lambda a: a.name)
    def test_every_algorithm_under_contrasting_orders(self, algorithm):
        self.compare(algorithm, ColumnMajorOrder(GEOMETRY))
        self.compare(algorithm, PseudoRandomOrder(GEOMETRY, seed=7),
                     direction=AddressingDirection.DOWN)

    def test_non_square_geometry(self):
        geometry = ArrayGeometry(rows=4, columns=8)
        battery = full_battery(geometry, locations=[(0, 0), (3, 7), (1, 4)])
        self.compare(MARCH_CM, ColumnMajorOrder(geometry), geometry=geometry,
                     battery=battery)

    def test_stuck_open_victim_at_every_traversal_position(self):
        """SOF reads observe the data bus — the position-dependent case."""
        order = PseudoRandomOrder(GEOMETRY, seed=5)
        battery = [FaultInjection(StuckOpenFault(), victim=(row, col))
                   for row in range(GEOMETRY.rows)
                   for col in range(GEOMETRY.columns)]
        self.compare(MARCH_SS, order, battery=battery)

    def test_retention_faults_across_geometry_scale(self):
        """DRF decay depends on absolute idle cycles, so scale matters."""
        geometry = ArrayGeometry(rows=8, columns=8)
        battery = [FaultInjection(
            DataRetentionFault(leak_to=leak, retention_cycles=retention),
            victim=victim)
            for leak in (0, 1)
            for retention in (1, 60, 128, 600, 10**6)
            for victim in [(0, 0), (3, 3), (7, 7)]]
        self.compare(MARCH_SR, RowMajorOrder(geometry), geometry=geometry,
                     battery=battery)

    def test_full_array_campaign_single_class(self):
        """Every cell of the array as victim, one fault class, one pass."""
        battery = [FaultInjection(StuckAtFault(1), victim=(row, col))
                   for row in range(GEOMETRY.rows)
                   for col in range(GEOMETRY.columns)]
        results = FaultSimulator(GEOMETRY, backend="vectorized") \
            .simulate_many(MARCH_CM, RowMajorOrder(GEOMETRY), battery)
        assert all(result.detected for result in results)


# ----------------------------------------------------------------------
# Backend dispatch
# ----------------------------------------------------------------------
class _CustomFault(FaultModel):
    """A user fault model no vectorized kernel exists for."""

    name = "custom"

    def on_read(self, state):
        return 1  # always reads 1, whatever is stored


class TestBackendDispatch:
    def test_unknown_backend_rejected(self):
        with pytest.raises(FaultSimulationError):
            FaultSimulator(GEOMETRY, backend="no-such-backend")
        assert FAULT_BACKENDS == ("reference", "vectorized", "auto")

    def test_vectorized_rejects_unknown_fault_model(self):
        simulator = FaultSimulator(GEOMETRY, backend="vectorized")
        injection = FaultInjection(_CustomFault(), victim=(1, 1))
        with pytest.raises(UnsupportedFaultCampaign):
            simulator.simulate_many(MARCH_CM, RowMajorOrder(GEOMETRY),
                                    [injection])

    def test_auto_falls_back_for_unknown_fault_model(self):
        simulator = FaultSimulator(GEOMETRY, backend="auto")
        injection = FaultInjection(_CustomFault(), victim=(1, 1))
        results = simulator.simulate_many(MARCH_CM, RowMajorOrder(GEOMETRY),
                                          [injection])
        assert simulator.last_backend_used == "reference"
        assert results[0].detected  # r0 after w0 observes 1

    def test_auto_uses_vectorized_for_standard_battery(self):
        simulator = FaultSimulator(GEOMETRY)  # backend defaults to auto
        simulator.simulate_many(MARCH_CM, RowMajorOrder(GEOMETRY),
                                build_fault_list(GEOMETRY, locations=[(1, 1)]))
        assert simulator.last_backend_used == "vectorized"

    def test_vectorized_rejects_word_oriented_geometry(self):
        geometry = ArrayGeometry(rows=4, columns=8, bits_per_word=4)
        simulator = FaultSimulator(geometry, backend="vectorized")
        injection = FaultInjection(StuckAtFault(0), victim=(0, 0))
        with pytest.raises(UnsupportedFaultCampaign):
            simulator.simulate_many(MARCH_CM, RowMajorOrder(geometry),
                                    [injection])

    def test_vectorized_rejects_foreign_order_geometry(self):
        other = ArrayGeometry(rows=4, columns=4)
        simulator = FaultSimulator(GEOMETRY, backend="vectorized")
        injection = FaultInjection(StuckAtFault(0), victim=(0, 0))
        with pytest.raises(UnsupportedFaultCampaign):
            simulator.simulate_many(MARCH_CM, RowMajorOrder(other), [injection])

    def test_fault_free_run_uses_reference_path(self):
        simulator = FaultSimulator(GEOMETRY, backend="vectorized")
        assert simulator.fault_free_passes(MARCH_CM, RowMajorOrder(GEOMETRY))
        assert simulator.last_backend_used == "reference"


# ----------------------------------------------------------------------
# Satellite: aggressor enumeration at borders and corners
# ----------------------------------------------------------------------
class TestBorderAggressorEnumeration:
    def test_corner_aggressors_stay_in_array(self):
        rows, cols = GEOMETRY.rows, GEOMETRY.columns
        assert neighbour_of(GEOMETRY, (0, 0)) == (0, 1)
        assert neighbour_of(GEOMETRY, (0, cols - 1)) == (0, cols - 2)
        assert neighbour_of(GEOMETRY, (rows - 1, 0)) == (rows - 1, 1)
        assert neighbour_of(GEOMETRY, (rows - 1, cols - 1)) == (rows - 1, cols - 2)

    def test_single_column_array_uses_vertical_neighbours(self):
        geometry = ArrayGeometry(rows=4, columns=1)
        assert neighbour_of(geometry, (0, 0)) == (1, 0)
        assert neighbour_of(geometry, (3, 0)) == (2, 0)
        assert neighbour_of(geometry, (2, 0)) == (3, 0)

    def test_every_cell_has_adjacent_distinct_aggressor(self):
        for row in range(GEOMETRY.rows):
            for col in range(GEOMETRY.columns):
                aggressor = neighbour_of(GEOMETRY, (row, col))
                assert aggressor != (row, col)
                GEOMETRY.validate_coordinates(*aggressor)
                distance = abs(aggressor[0] - row) + abs(aggressor[1] - col)
                assert distance == 1

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_border_coupling_detection_on_both_backends(self, backend):
        """March C- detects the unlinked coupling battery at every border."""
        rows, cols = GEOMETRY.rows, GEOMETRY.columns
        borders = [(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1),
                   (0, cols // 2), (rows - 1, cols // 2),
                   (rows // 2, 0), (rows // 2, cols - 1)]
        battery = build_fault_list(GEOMETRY, locations=borders,
                                   include_single=False)
        report = run_coverage(MARCH_CM, RowMajorOrder(GEOMETRY), GEOMETRY,
                              battery, backend=backend)
        assert report.backend == backend
        assert report.coverage == 1.0, report.missed[:4]

    def test_border_coupling_verdicts_identical_across_backends(self):
        """Single-column array: vertical aggressors, both traversal edges."""
        geometry = ArrayGeometry(rows=8, columns=1)
        battery = []
        for victim in [(0, 0), (3, 0), (7, 0)]:
            aggressor = neighbour_of(geometry, victim)
            for model in coupling_fault_models():
                battery.append(FaultInjection(fault=model, victim=victim,
                                              aggressor=aggressor))
        order = ColumnMajorOrder(geometry)
        for direction in (AddressingDirection.UP, AddressingDirection.DOWN):
            assert_fault_verdicts_identical(geometry, MARCH_SS, order,
                                            battery, direction=direction)


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
class TestRunCampaign:
    def test_campaign_derives_both_reports_from_one_pass(self):
        orders = [RowMajorOrder(GEOMETRY), ColumnMajorOrder(GEOMETRY),
                  PseudoRandomOrder(GEOMETRY, seed=11)]
        battery = build_fault_list(GEOMETRY, locations=[(0, 0), (2, 3)])
        campaign = run_campaign(MARCH_CM, orders, GEOMETRY, battery)
        assert campaign.backend_used == "vectorized"
        assert campaign.total_faults == len(battery)
        invariance = campaign.invariance_report()
        assert invariance.invariant
        assert invariance.backend == "vectorized"
        first = campaign.coverage_report()
        named = campaign.coverage_report(orders[1].name)
        assert first.order == orders[0].name
        assert named.order == orders[1].name
        assert first.detected_faults == named.detected_faults  # DOF-1
        assert first.total_faults == len(battery)

    def test_campaign_requires_orders(self):
        with pytest.raises(ValueError):
            run_campaign(MARCH_CM, [], GEOMETRY, [])

    def test_location_sampling_seed_is_deterministic(self):
        base = default_fault_locations(GEOMETRY, sample=8, seed=1)
        assert base == default_fault_locations(GEOMETRY, sample=8, seed=1)
        assert base != default_fault_locations(GEOMETRY, sample=8, seed=2)
