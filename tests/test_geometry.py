"""Unit tests for the array geometry / addressing conversions."""

import pytest

from repro.sram.geometry import ArrayGeometry, PAPER_GEOMETRY, SMALL_GEOMETRY


class TestValidation:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            ArrayGeometry(rows=0, columns=8)
        with pytest.raises(ValueError):
            ArrayGeometry(rows=8, columns=0)
        with pytest.raises(ValueError):
            ArrayGeometry(rows=8, columns=8, bits_per_word=0)

    def test_rejects_non_divisible_word_width(self):
        with pytest.raises(ValueError):
            ArrayGeometry(rows=8, columns=10, bits_per_word=4)

    def test_rejects_word_width_wider_than_the_array(self):
        """bits_per_word > columns is physically impossible (one operation
        cannot select more bit-line pairs than exist); the dedicated check
        names that contradiction instead of hiding it behind the generic
        divisibility message."""
        with pytest.raises(ValueError, match="cannot select more"):
            ArrayGeometry(rows=8, columns=4, bits_per_word=8)
        with pytest.raises(ValueError, match=r"bits_per_word \(16\)"):
            ArrayGeometry(rows=8, columns=8, bits_per_word=16)

    def test_rejects_bad_bank_counts(self):
        with pytest.raises(ValueError, match="banks must be positive"):
            ArrayGeometry(rows=8, columns=8, banks=0)
        with pytest.raises(ValueError, match="multiple of banks"):
            ArrayGeometry(rows=8, columns=8, banks=3)

    def test_rejects_unknown_interleave_mode(self):
        with pytest.raises(ValueError, match="bank_interleave"):
            ArrayGeometry(rows=8, columns=8, banks=2,
                          bank_interleave="diagonal")

    def test_banked_properties_and_describe(self):
        geometry = ArrayGeometry(rows=16, columns=8, banks=4,
                                 bank_interleave="interleaved")
        assert geometry.is_banked
        assert geometry.rows_per_bank == 4
        assert "4 banks of 4 rows" in geometry.describe()
        monolithic = ArrayGeometry(rows=16, columns=8)
        assert not monolithic.is_banked
        assert monolithic.rows_per_bank == 16
        assert "bank" not in monolithic.describe()

    def test_paper_geometry_is_512_by_512_bit_oriented(self):
        assert PAPER_GEOMETRY.rows == 512
        assert PAPER_GEOMETRY.columns == 512
        assert PAPER_GEOMETRY.is_bit_oriented
        assert PAPER_GEOMETRY.word_count == 512 * 512

    def test_small_geometry_is_bit_oriented(self):
        assert SMALL_GEOMETRY.is_bit_oriented


class TestBitOrientedAddressing:
    def test_address_roundtrip(self, small_geometry):
        for address in range(small_geometry.word_count):
            row, word = small_geometry.coordinates_of(address)
            assert small_geometry.address_of(row, word) == address

    def test_row_major_is_wordline_after_wordline(self, small_geometry):
        addresses = list(small_geometry.iter_addresses_row_major())
        coords = [small_geometry.coordinates_of(a) for a in addresses]
        # all words of row 0 first, then row 1, ...
        assert coords[: small_geometry.words_per_row] == [
            (0, w) for w in range(small_geometry.words_per_row)]
        assert coords[small_geometry.words_per_row] == (1, 0)

    def test_out_of_range_rejected(self, small_geometry):
        with pytest.raises(ValueError):
            small_geometry.coordinates_of(small_geometry.word_count)
        with pytest.raises(ValueError):
            small_geometry.address_of(small_geometry.rows, 0)
        with pytest.raises(ValueError):
            small_geometry.columns_of_word(small_geometry.words_per_row)

    def test_columns_of_word_bit_oriented(self, small_geometry):
        assert small_geometry.columns_of_word(3) == (3,)
        assert small_geometry.word_of_column(3) == 3


class TestWordOrientedAddressing:
    def test_word_oriented_counts(self):
        geometry = ArrayGeometry(rows=16, columns=64, bits_per_word=8)
        assert geometry.words_per_row == 8
        assert geometry.word_count == 16 * 8
        assert not geometry.is_bit_oriented

    def test_columns_of_word_interleaved(self):
        geometry = ArrayGeometry(rows=4, columns=16, bits_per_word=4)
        columns = geometry.columns_of_word(1)
        # bit b of word w sits at b * words_per_row + w
        assert columns == (1, 5, 9, 13)
        for column in columns:
            assert geometry.word_of_column(column) == 1

    def test_all_columns_covered_exactly_once(self):
        geometry = ArrayGeometry(rows=4, columns=16, bits_per_word=4)
        seen = []
        for word in range(geometry.words_per_row):
            seen.extend(geometry.columns_of_word(word))
        assert sorted(seen) == list(range(16))

    def test_describe_mentions_organisation(self):
        geometry = ArrayGeometry(rows=4, columns=16, bits_per_word=4)
        assert "word-oriented" in geometry.describe()
        assert "bit-oriented" in PAPER_GEOMETRY.describe()
