"""Equivalence of the vectorized engine against the reference backend.

The vectorized backend is only useful if it measures *exactly* what the
cycle-accurate reference memory measures.  These tests run both engines on
identical configurations and require:

* identical energy ledgers (total, per-source breakdown, average power) up
  to floating-point summation order,
* identical stress counters (RES column-cycles, floating column-cycles,
  row transitions, full restores),
* identical fault detections (none on a fault-free memory),
* identical per-cell stress statistics where the reference memory tracks
  them.

Coverage spans all five Table 1 algorithms, both operating modes, both
traversal directions, word-oriented geometries and every address order the
engine supports — plus the guarantee that unsupported configurations are
refused (``backend="vectorized"``) or transparently fall back
(``backend="auto"``) rather than measured wrongly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MARCH_CM,
    MARCH_SR,
    PAPER_TABLE1_ALGORITHMS,
    SMALL_GEOMETRY,
    TestSession,
    checkerboard_background,
)
from repro.core.session import SessionError
from repro.engine import EngineError, UnsupportedConfiguration, VectorizedEngine
from repro.march.element import AddressingDirection
from repro.march.ordering import (
    ColumnMajorOrder,
    PseudoRandomOrder,
    RowMajorSnakeOrder,
)
from repro.sram import SRAM, ArrayGeometry, OperatingMode, solid_background

from differential import (
    REL_TOL,
    assert_aggregates_match,
    assert_session_equivalent as assert_equivalent,
    kernel_engines as _kernel_engines,
    kernel_pair as _kernel_pair,
    run_both_backends as both_backends,
)


# ----------------------------------------------------------------------
# Main equivalence matrix: Table 1 algorithms x modes on SMALL_GEOMETRY
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
@pytest.mark.parametrize("algorithm", PAPER_TABLE1_ALGORITHMS,
                         ids=lambda a: a.name)
def test_equivalence_table1_algorithms(algorithm, mode):
    reference, vectorized = both_backends(SMALL_GEOMETRY, algorithm, mode)
    assert_equivalent(reference, vectorized, label=f"{algorithm.name}/{mode.value}")


def test_equivalence_compare_modes_prr():
    for algorithm in PAPER_TABLE1_ALGORITHMS:
        reference = TestSession(SMALL_GEOMETRY).compare_modes(algorithm)
        vectorized = TestSession(SMALL_GEOMETRY).compare_modes(
            algorithm, backend="vectorized")
        # Note: on a tiny 16x16 array the PRR is legitimately small or even
        # negative (few suppressed columns, frequent row restores); the
        # equivalence of the two backends is what matters here.
        assert vectorized.prr == pytest.approx(reference.prr, rel=REL_TOL)


# ----------------------------------------------------------------------
# Directions, backgrounds, orders, geometries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
def test_equivalence_descending_any_direction(mode):
    reference, vectorized = both_backends(
        SMALL_GEOMETRY, MARCH_CM, mode,
        any_direction=AddressingDirection.DOWN)
    assert_equivalent(reference, vectorized, label="any-down")


@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
def test_equivalence_checkerboard_background(mode):
    reference, vectorized = both_backends(
        SMALL_GEOMETRY, MARCH_SR, mode, background=checkerboard_background())
    assert_equivalent(reference, vectorized, label="checkerboard")


@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
def test_equivalence_column_major_order(mode):
    """Fast-row order: every access is a row transition (worst case)."""
    geometry = ArrayGeometry(rows=8, columns=8)
    reference, vectorized = both_backends(
        geometry, MARCH_CM, mode, order=ColumnMajorOrder(geometry))
    assert_equivalent(reference, vectorized, label="column-major")


@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
def test_equivalence_word_oriented_geometry(mode):
    geometry = ArrayGeometry(rows=8, columns=16, bits_per_word=4)
    reference, vectorized = both_backends(geometry, MARCH_CM, mode)
    assert_equivalent(reference, vectorized, label="word-oriented")


def test_equivalence_wide_geometry_low_power():
    """Wide array: the savings regime the paper targets."""
    geometry = ArrayGeometry(rows=4, columns=64)
    reference, vectorized = both_backends(
        geometry, MARCH_CM, OperatingMode.LOW_POWER_TEST)
    assert_equivalent(reference, vectorized, label="wide")


# ----------------------------------------------------------------------
# Per-cell stress statistics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", list(OperatingMode), ids=lambda m: m.value)
def test_per_cell_stress_matches_reference(mode):
    geometry = ArrayGeometry(rows=8, columns=8)
    session = TestSession(geometry)
    memory = SRAM(geometry, mode=mode)
    memory.apply_background(solid_background(0))
    session.run(MARCH_CM, mode, memory=memory)

    engine = VectorizedEngine(geometry)
    engine.run(MARCH_CM, mode)
    stress = engine.last_stress
    assert stress is not None

    def per_cell(attribute):
        return np.array([[getattr(memory.array.cell(row, column).stats, attribute)
                          for column in range(geometry.columns)]
                         for row in range(geometry.rows)])

    assert np.array_equal(per_cell("full_res_count"), stress.full_res)
    assert np.array_equal(per_cell("partial_res_count"), stress.partial_res)
    assert np.all(per_cell("reads") == stress.reads_per_cell)
    assert np.all(per_cell("writes") == stress.writes_per_cell)
    assert (engine.last_counters["partial_res_column_cycles"]
            == memory.counters.partial_res_column_cycles)


# ----------------------------------------------------------------------
# Unsupported configurations: refuse or fall back, never mis-measure
# ----------------------------------------------------------------------
@pytest.mark.parametrize("order_factory", [PseudoRandomOrder, RowMajorSnakeOrder],
                         ids=["pseudo-random", "snake"])
def test_unsupported_order_raises_on_explicit_vectorized(order_factory):
    geometry = ArrayGeometry(rows=8, columns=8)
    session = TestSession(geometry, order=order_factory(geometry),
                          backend="vectorized")
    with pytest.raises(UnsupportedConfiguration):
        session.run(MARCH_CM, OperatingMode.LOW_POWER_TEST)


@pytest.mark.parametrize("order_factory", [PseudoRandomOrder, RowMajorSnakeOrder],
                         ids=["pseudo-random", "snake"])
def test_unsupported_order_auto_falls_back_to_reference(order_factory):
    geometry = ArrayGeometry(rows=8, columns=8)
    reference = TestSession(geometry, order=order_factory(geometry)).run(
        MARCH_CM, OperatingMode.LOW_POWER_TEST)
    auto = TestSession(geometry, order=order_factory(geometry),
                       backend="auto").run(MARCH_CM, OperatingMode.LOW_POWER_TEST)
    assert_equivalent(reference, auto, label="auto-fallback")


def test_functional_mode_supports_any_order_vectorized():
    """Functional mode has no floating state, so every order vectorizes."""
    geometry = ArrayGeometry(rows=8, columns=8)
    reference, vectorized = both_backends(
        geometry, MARCH_CM, OperatingMode.FUNCTIONAL,
        order=PseudoRandomOrder(geometry))
    assert_equivalent(reference, vectorized, label="pseudo-random functional")


def test_vectorized_rejects_custom_memory():
    memory = SRAM(SMALL_GEOMETRY)
    memory.apply_background(solid_background(0))
    session = TestSession(SMALL_GEOMETRY, backend="vectorized")
    with pytest.raises(SessionError):
        session.run(MARCH_CM, OperatingMode.FUNCTIONAL, memory=memory)


def test_unknown_backend_rejected():
    with pytest.raises(SessionError):
        TestSession(SMALL_GEOMETRY, backend="warp-drive")
    with pytest.raises(SessionError):
        TestSession(SMALL_GEOMETRY).run(MARCH_CM, OperatingMode.FUNCTIONAL,
                                        backend="warp-drive")


def test_auto_falls_back_when_numpy_unavailable(monkeypatch):
    """Without numpy, 'auto' silently takes the reference path; explicit
    'vectorized' surfaces the missing dependency."""
    import repro.engine.vectorized as vectorized

    monkeypatch.setattr(vectorized, "np", None)
    result = TestSession(SMALL_GEOMETRY, backend="auto").run(
        MARCH_CM, OperatingMode.FUNCTIONAL)
    assert result.passed
    with pytest.raises(EngineError):
        TestSession(SMALL_GEOMETRY, backend="vectorized").run(
            MARCH_CM, OperatingMode.FUNCTIONAL)


def test_auto_uses_custom_memory_on_reference_path():
    """A custom memory under backend='auto' silently runs the reference path."""
    memory = SRAM(SMALL_GEOMETRY)
    memory.apply_background(solid_background(0))
    result = TestSession(SMALL_GEOMETRY, backend="auto").run(
        MARCH_CM, OperatingMode.FUNCTIONAL, memory=memory)
    assert result.passed
    assert memory.cycle == result.cycles  # the supplied memory really ran


# ----------------------------------------------------------------------
# Flat kernel vs. the segmented oracle
# ----------------------------------------------------------------------
# The flat kernel re-derives every segmented quantity as closed-form
# reductions over the compiled segment structure; the original segmented
# evaluation is retained as its differential oracle.  Counters and stress
# arrays must agree exactly, energies to summation order.

KERNEL_ORDERS = (None, ColumnMajorOrder, RowMajorSnakeOrder, PseudoRandomOrder)


@pytest.mark.parametrize("order_cls", KERNEL_ORDERS)
@pytest.mark.parametrize("mode", list(OperatingMode))
@pytest.mark.parametrize("any_direction",
                         [AddressingDirection.UP, AddressingDirection.DOWN])
def test_flat_kernel_matches_segmented(order_cls, mode, any_direction):
    """The full kernel matrix against the segmented oracle: the flat
    numpy kernel always, plus the compiled jit/gpu tiers wherever their
    dependency is importable (the CI optional-deps job)."""
    geometry = ArrayGeometry(rows=16, columns=32)
    segmented, *others = _kernel_engines(geometry, order_cls, any_direction,
                                         detailed=True)
    for algorithm in PAPER_TABLE1_ALGORITHMS:
        try:
            expected = segmented.run_aggregates(algorithm, mode)
        except UnsupportedConfiguration:
            for engine in others:
                with pytest.raises(UnsupportedConfiguration):
                    engine.run_aggregates(algorithm, mode)
            continue
        for engine in others:
            observed = engine.run_aggregates(algorithm, mode)
            assert_aggregates_match(
                expected, observed,
                label=(engine.kernel, algorithm.name, mode))


def test_flat_kernel_handles_single_row_chains():
    """A one-row geometry never restores mid-run: the whole run is one
    carried-over chain, the flat kernel's worst case."""
    from repro.march.parser import parse_march

    # Bouncing traversal: each element resumes exactly where the previous
    # one parked (and kept pre-charged), so the single-row run stays
    # replayable — a chain spanning every element.
    bounce = parse_march("{⇑(w0); ⇓(r0,w1); ⇑(r1,w0); ⇓(r0)}", name="bounce")
    bounce.validate()
    geometry = ArrayGeometry(rows=1, columns=16)
    segmented, flat = _kernel_pair(geometry, None, AddressingDirection.UP,
                                   detailed=True)
    for mode in OperatingMode:
        expected = segmented.run_aggregates(bounce, mode)
        observed = flat.run_aggregates(bounce, mode)
        assert_aggregates_match(expected, observed, label=mode)
    # March C-'s up→up element boundary parks on the last row's far edge
    # and restarts on its first word, which floats mid-chain: both kernels
    # must refuse identically.
    for engine in (segmented, flat):
        with pytest.raises(UnsupportedConfiguration):
            engine.run_aggregates(MARCH_CM, OperatingMode.LOW_POWER_TEST)


def test_stacked_batch_is_bit_identical_to_single_runs():
    """run_aggregates_batch stacks a whole grid into one pass; every unit's
    energies must equal the stand-alone evaluation bit for bit (the
    guarantee the batched sweep strategy builds on)."""
    geometry = ArrayGeometry(rows=16, columns=64)
    engine = VectorizedEngine(geometry, detailed=False)
    requests = [(algorithm, mode, None)
                for algorithm in PAPER_TABLE1_ALGORITHMS
                for mode in OperatingMode]
    stacked = engine.run_aggregates_batch(requests)
    for (algorithm, mode, _), batch_result in zip(requests, stacked):
        by_source_b, counters_b, cycles_b, _ = batch_result
        by_source_s, counters_s, cycles_s, _ = engine.run_aggregates(
            algorithm, mode)
        assert cycles_b == cycles_s and counters_b == counters_s
        assert by_source_b == by_source_s  # bit-identical, not approx


def test_batch_collects_unsupported_units():
    """collect_errors=True isolates the unsupported unit instead of
    failing the whole stack."""
    geometry = ArrayGeometry(rows=8, columns=16)
    snake = RowMajorSnakeOrder(geometry)
    engine = VectorizedEngine(geometry, order=snake, detailed=False)
    requests = [(MARCH_CM, OperatingMode.FUNCTIONAL, None),
                (MARCH_CM, OperatingMode.LOW_POWER_TEST, None)]
    outcomes = engine.run_aggregates_batch(requests, collect_errors=True)
    assert not isinstance(outcomes[0], Exception)   # functional always replays
    assert isinstance(outcomes[1], UnsupportedConfiguration)
    with pytest.raises(UnsupportedConfiguration):
        engine.run_aggregates_batch(requests)


def test_engine_memoises_traces_across_runs_and_modes():
    """Both modes of a compare share one compiled trace (and its segment
    structure), through the engine's own cache."""
    geometry = ArrayGeometry(rows=8, columns=16)
    engine = VectorizedEngine(geometry, detailed=False)
    engine.run_aggregates(MARCH_CM, OperatingMode.FUNCTIONAL)
    trace = engine.trace_for(MARCH_CM)
    walk = trace.segment_walk()
    engine.run_aggregates(MARCH_CM, OperatingMode.LOW_POWER_TEST)
    assert engine.trace_for(MARCH_CM) is trace
    assert trace.segment_walk() is walk
    assert len(engine.traces) == 1
