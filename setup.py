"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
wheels cannot be built) can still do a legacy editable install via
``python setup.py develop`` or older pip versions.
"""

from setuptools import setup

setup()
