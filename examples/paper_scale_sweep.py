#!/usr/bin/env python3
"""Paper-scale sweep: the measured Table 1 on the full 512 x 512 array.

The seed reproduction measured Table 1 on a reduced-row stand-in because the
cycle-accurate reference engine needs minutes per algorithm at the paper's
real geometry.  The vectorized backend (:mod:`repro.engine`) removes that
limit: this example batch-executes the functional vs. low-power-test-mode
comparison for all five Table 1 algorithms on the actual 512 x 512 array —
2.6 to 6 million clock cycles per mode per algorithm — in a few seconds,
then prints the measured PRR next to the paper's reported values and the
Section 5 analytical model.

Equivalent CLI:  python -m repro.sweep --paper

Run with:  python examples/paper_scale_sweep.py
"""

from repro.analysis import render_table
from repro.sweep import SweepRunner, paper_table1_cases

#: PRR values reported in the paper's Table 1 (percent).
PAPER_PRR = {
    "March C-": 47.3,
    "March SS": 50.0,
    "MATS+": 48.1,
    "March SR": 49.5,
    "March G": 50.5,
}


def main() -> None:
    cases = paper_table1_cases(backend="vectorized")
    result = SweepRunner(cases).run(progress=True)

    rows = []
    for record in result:
        rows.append({
            "Algorithm": record.algorithm,
            "PRR paper": f"{PAPER_PRR[record.algorithm]:.1f} %",
            "PRR analytical (paper eq.)": f"{100 * record.analytical_prr:.1f} %",
            "PRR analytical (+recharge)":
                f"{100 * record.analytical_prr_recharge:.1f} %",
            "PRR measured (512x512)": f"{100 * record.measured_prr:.1f} %",
            "Cycles/mode": record.cycles_per_mode,
            "Runtime (s)": f"{record.elapsed_s:.2f}",
        })
    print()
    print(render_table(
        rows,
        title="Table 1 at paper scale — measured on the full 512x512 array "
              "(vectorized backend)"))
    print()
    print("The '+recharge' analytical variant includes the next-column "
          "recharge cost the paper's\nequation omits; the measurement "
          "tracks it within a fraction of a percentage point.")


if __name__ == "__main__":
    main()
