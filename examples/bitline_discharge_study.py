#!/usr/bin/env python3
"""Floating bit-line physics: Figures 5, 6 and 7 of the paper.

Uses the Spice-substitute transient solver to reproduce the two electrical
phenomena behind the low-power test mode:

1. with its pre-charge switched off, a column's bit line is slowly
   discharged by the cell the word line keeps selected (so the read
   equivalent stress dies out and no supply power is drawn);
2. at the next row transition those discharged lines would overwrite the
   newly selected cells (the "faulty swap") unless the pre-charge is
   re-activated for one clock cycle — which is exactly the rule the
   modified control logic implements.

Run with:  python examples/bitline_discharge_study.py
"""

from repro.analysis import bitline_discharge_fixture, faulty_swap_fixture
from repro.circuit import default_technology


def main() -> None:
    tech = default_technology()
    cycle = tech.clock_period

    print("1. Floating bit line discharged by an unselected cell (Figure 6a)")
    fixture = bitline_discharge_fixture(tech=tech, rows=512)
    result = fixture.simulate(t_stop=12 * cycle, dt=50e-12, record_every=4)
    bl = result.waveform("BL")
    print(bl.render_ascii(width=70, height=12))
    crossing = bl.first_crossing(0.3 * tech.vdd, "falling")
    print(f"   logic '0' reached after {crossing / cycle:.1f} clock cycles "
          f"(paper: within ~9 cycles)")
    print(f"   BLB stays at {result.waveform('BLB').final_value():.2f} V — no stress "
          "on the complementary side\n")

    print("2. Row transition onto the discharged lines (Figures 6c and 7)")
    for restore in (False, True):
        fixture = faulty_swap_fixture(restore_before_transition=restore, tech=tech)
        res = fixture.simulate(t_stop=5 * cycle, dt=0.5e-12, record_every=400)
        s = res.final_voltage("victim_S")
        sb = res.final_voltage("victim_SB")
        label = "with one-cycle restoration" if restore else "without restoration"
        verdict = "data preserved" if sb > s else "FAULTY SWAP"
        print(f"   {label:28s}: S = {s:5.2f} V, SB = {sb:5.2f} V  -> {verdict}")


if __name__ == "__main__":
    main()
