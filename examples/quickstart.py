#!/usr/bin/env python3
"""Quickstart: measure the test-power saving of the low-power test mode.

Builds a modest SRAM, runs March C- in functional mode and in the paper's
low-power test mode (word-line-after-word-line addressing, pre-charge
restricted to the selected column and its successor), and prints the power
breakdown and the resulting Power Reduction Ratio, together with the
analytical prediction of the paper's Section 5 equations for the full
512 x 512 array.

Run with:  python examples/quickstart.py
"""

from repro import (
    AnalyticalPowerModel,
    ArrayGeometry,
    MARCH_CM,
    PAPER_GEOMETRY,
    TestSession,
)
from repro.analysis import format_power, format_percent, render_table
from repro.power import PowerSource


def main() -> None:
    geometry = ArrayGeometry(rows=16, columns=64)
    print(f"Memory under test : {geometry.describe()}")
    print(f"March algorithm   : {MARCH_CM}")
    print()

    session = TestSession(geometry)
    comparison = session.compare_modes(MARCH_CM)

    rows = []
    for result in (comparison.functional, comparison.low_power):
        rows.append({
            "Mode": result.mode,
            "Cycles": result.cycles,
            "Average power": format_power(result.average_power),
            "Unselected pre-charge share":
                format_percent(result.source_fraction(PowerSource.PRECHARGE_UNSELECTED)),
            "Test verdict": "pass" if result.passed else "FAIL",
        })
    print(render_table(rows, title="March C- in both operating modes"))
    print()
    print(f"Measured Power Reduction Ratio on this array : {format_percent(comparison.prr)}")

    analytical = AnalyticalPowerModel(PAPER_GEOMETRY)
    prediction = analytical.predict(MARCH_CM)
    print(f"Analytical PRR for the paper's 512x512 array  : {format_percent(prediction.prr)}"
          f"  (paper reports 47.3 %)")


if __name__ == "__main__":
    main()
