#!/usr/bin/env python3
"""Deploying the low-power test mode through the BIST engine.

This is the scenario the paper's introduction motivates: an embedded SRAM
tested by an on-chip BIST controller, where test power threatens the power
budget.  The example runs a small production-style test flow — MATS+ as a
quick screen, then March C- and March SS — in both modes, shows the energy
saved per algorithm, and demonstrates that an injected defect (a stuck-at-0
cell) is still caught in the low-power test mode.

Run with:  python examples/low_power_bist_session.py
"""

from repro import ArrayGeometry, OperatingMode, SRAM, solid_background
from repro.analysis import format_energy, format_percent, render_table
from repro.bist import BistController
from repro.march import MARCH_CM, MARCH_SS, MATS_PLUS
from repro.sram import CellFactory


class StuckAtZeroFactory(CellFactory):
    """Plants a single manufacturing defect: cell (5, 17) cannot hold a '1'."""

    def create(self, row, column):
        cell = super().create(row, column)
        if (row, column) == (5, 17):
            original = cell.write
            cell.write = lambda value: original(0)  # type: ignore[assignment]
        return cell


def main() -> None:
    geometry = ArrayGeometry(rows=16, columns=64)
    controller = BistController(geometry)
    suite = [MATS_PLUS, MARCH_CM, MARCH_SS]

    rows = []
    for algorithm in suite:
        functional = controller.run(algorithm, low_power=False)
        low_power = controller.run(algorithm, low_power=True)
        saving = 1.0 - low_power.total_energy / functional.total_energy
        rows.append({
            "Algorithm": algorithm.name,
            "Cycles": low_power.cycles,
            "Functional energy": format_energy(functional.total_energy),
            "Low-power energy": format_energy(low_power.total_energy),
            "Energy saved": format_percent(saving),
            "Verdict": "pass" if low_power.passed else "FAIL",
        })
    print(render_table(rows, title=f"BIST test flow on {geometry.describe()}"))
    print()

    # Now the same flow on a die with a defect: the low-power mode must not
    # mask it (fault coverage is untouched by the pre-charge policy).
    faulty = SRAM(geometry, mode=OperatingMode.LOW_POWER_TEST,
                  cell_factory=StuckAtZeroFactory())
    faulty.apply_background(solid_background(0))
    result = controller.run(MARCH_CM, low_power=True, memory=faulty)
    print("Defective die, March C- in low-power test mode:", result.describe())
    first = result.failure_log[0]
    print(f"  first failing access: row {first.row}, column {first.word}, "
          f"expected {first.expected}, read {first.observed}")
    assert not result.passed


if __name__ == "__main__":
    main()
