#!/usr/bin/env python3
"""Degree-of-freedom 1: choosing the address order does not change coverage.

The paper's scheme is only legal because a March test may use any address
permutation as its ⇑ sequence.  This example injects the classical fault
battery and fault-simulates March C- under three very different orders —
the word-line order the paper needs, the fast-row order a legacy BIST
would use, and a pseudo-random permutation — showing that every fault is
detected (or missed) identically, then prints which faults a weaker test
(MATS+) misses.

The campaign runs twice: once on a small array with the scalar reference
simulator, then at the paper's full 512 x 512 geometry on the vectorized
fault-campaign engine (one batch pass per order, a couple of seconds).

Run with:  python examples/dof1_coverage_study.py
"""

import time

from repro.analysis import render_table
from repro.faults import build_fault_list, run_campaign
from repro.march import MARCH_CM, MATS_PLUS
from repro.march.dof import coverage_equivalence_orders
from repro.sram import ArrayGeometry
from repro.sram.geometry import PAPER_GEOMETRY


def study(geometry: ArrayGeometry, backend: str) -> None:
    """Run the DOF-1 campaign on one geometry/backend and print the report."""
    orders = coverage_equivalence_orders(geometry, seeds=(42,))
    battery = build_fault_list(geometry)
    print(f"=== {geometry.describe()} — backend {backend!r}, "
          f"{len(battery)} injected faults ===")

    rows = []
    campaigns = {}
    started = time.perf_counter()
    for algorithm in (MARCH_CM, MATS_PLUS):
        campaign = run_campaign(algorithm, orders, geometry, battery,
                                backend=backend)
        campaigns[algorithm.name] = campaign
        for order in orders:
            report = campaign.coverage_report(order.name)
            rows.append({
                "Address order": order.name,
                "Algorithm": algorithm.name,
                "Coverage": f"{100 * report.coverage:.1f} %",
                "Missed faults": len(report.missed),
            })
    elapsed = time.perf_counter() - started
    print(render_table(rows, title="Fault coverage under different DOF-1 choices"))

    invariance = campaigns[MARCH_CM.name].invariance_report()
    print(f"Per-fault invariance for March C-: {invariance.describe()} "
          f"[{invariance.backend} backend, {elapsed:.2f} s]")
    assert invariance.invariant
    print()


def main() -> None:
    study(ArrayGeometry(rows=6, columns=6), backend="reference")
    study(PAPER_GEOMETRY, backend="vectorized")

    geometry = ArrayGeometry(rows=6, columns=6)
    orders = coverage_equivalence_orders(geometry, seeds=(42,))
    battery = build_fault_list(geometry, locations=[(0, 0), (2, 4), (5, 5)])
    weakest = run_campaign(MATS_PLUS, orders, geometry, battery) \
        .coverage_report()
    print("Faults MATS+ misses (it only targets stuck-at/address faults):")
    for description in weakest.missed[:8]:
        print("  -", description)
    if len(weakest.missed) > 8:
        print(f"  ... and {len(weakest.missed) - 8} more")


if __name__ == "__main__":
    main()
