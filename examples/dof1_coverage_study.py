#!/usr/bin/env python3
"""Degree-of-freedom 1: choosing the address order does not change coverage.

The paper's scheme is only legal because a March test may use any address
permutation as its ⇑ sequence.  This example injects the classical fault
battery into a small array and fault-simulates March C- under three very
different orders — the word-line order the paper needs, the fast-row order a
legacy BIST would use, and a pseudo-random permutation — showing that every
fault is detected (or missed) identically, then prints which faults a weaker
test (MATS+) misses.

Run with:  python examples/dof1_coverage_study.py
"""

from repro.analysis import render_table
from repro.faults import build_fault_list, check_order_invariance, run_coverage
from repro.march import MARCH_CM, MATS_PLUS
from repro.march.dof import coverage_equivalence_orders
from repro.sram import ArrayGeometry


def main() -> None:
    geometry = ArrayGeometry(rows=6, columns=6)
    orders = coverage_equivalence_orders(geometry, seeds=(42,))
    battery = build_fault_list(geometry, locations=[(0, 0), (2, 4), (5, 5)])
    print(f"Fault battery: {len(battery)} injected faults "
          f"(stuck-at, transition, read-destructive, write-destructive, coupling)")
    print()

    rows = []
    for order in orders:
        for algorithm in (MARCH_CM, MATS_PLUS):
            report = run_coverage(algorithm, order, geometry, battery)
            rows.append({
                "Address order": order.name,
                "Algorithm": algorithm.name,
                "Coverage": f"{100 * report.coverage:.1f} %",
                "Missed faults": len(report.missed),
            })
    print(render_table(rows, title="Fault coverage under different DOF-1 choices"))
    print()

    invariance = check_order_invariance(MARCH_CM, orders, geometry, battery)
    print("Per-fault invariance for March C-:", invariance.describe())
    assert invariance.invariant

    weakest = run_coverage(MATS_PLUS, orders[0], geometry, battery)
    print()
    print("Faults MATS+ misses (it only targets stuck-at/address faults):")
    for description in weakest.missed[:8]:
        print("  -", description)
    if len(weakest.missed) > 8:
        print(f"  ... and {len(weakest.missed) - 8} more")


if __name__ == "__main__":
    main()
