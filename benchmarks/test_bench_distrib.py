"""Experiment ``distributed-paper-grid[workers=N]`` — scale-out with a
mid-campaign worker kill.

Runs the same campaign grid twice through :mod:`repro.distrib`:

* ``workers=1`` — one worker subprocess drains every lease (the scale-out
  baseline; this is the ordinary journaled sweep plus ledger overhead);
* ``workers=4`` — four worker subprocesses work-steal from the shared
  ledger, and the benchmark SIGKILLs the first worker mid-lease to price
  in fault recovery, not just the happy path.

Always asserted, both tiers: the killed worker's chunk is re-leased
(generation bump recorded in the lease's steal audit), the merged
artifact is complete and grid-verified, and **no case executed twice**
(counted from journal digests across every shard — journal entries are
appends per execution, so the count is the audit).

The ``>= 3x`` speedup claim is asserted only on hardware that can
deliver it (``os.cpu_count() >= 4``) and only at the full tier, where
the grid is >= 10^4 cases and worker start-up is amortised; the measured
ratio is recorded unconditionally so the committed trajectory documents
what this machine achieved (``cpus`` rides along for interpretation).

Both entries land in ``BENCH_<id>.json`` and are gated by
``benchmarks/check_regression.py --workload distributed-paper-grid``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.distrib import Coordinator, spawn_worker
from repro.sweep import fingerprint_digest, load_journal, sweep_grid

#: Table 1's five algorithms — the paper's workload mix.
ALGORITHMS = ("MATS+", "March C-", "March SS", "March SR", "March G")
#: Quick tier: small grid, worker start-up dominates (correctness smoke).
QUICK_GEOMETRIES = tuple(f"{rows}x{cols}"
                         for rows in (8, 16, 24, 32)
                         for cols in (8, 16, 24, 32))
#: Full tier: >= 10^4 cases (19 x 19 geometries x 5 algorithms x
#: 2 orders x 3 bank counts = 10830), the acceptance campaign scale.  Only
#: the two orders the vectorized low-power kernel replays exactly —
#: pseudo-random orders would surface ``UnsupportedConfiguration`` under
#: ``backend="vectorized"``.
FULL_GEOMETRIES = tuple(f"{rows}x{cols}"
                        for rows in range(4, 80, 4)
                        for cols in range(4, 80, 4))
#: Scale-out bar asserted when the hardware can express it at all.
SPEEDUP_BAR = 3.0


def _campaign_cases(full_tier):
    if full_tier:
        return sweep_grid(FULL_GEOMETRIES, ALGORITHMS,
                          orders=("row-major", "column-major"),
                          backends=("vectorized",), banks=(1, 2, 4))
    return sweep_grid(QUICK_GEOMETRIES, ALGORITHMS[:3],
                      orders=("row-major", "column-major"),
                      backends=("vectorized",))


def _execution_counts(ledger):
    """Executions per distinct case, across every shard journal."""
    counts = {}
    for journal in sorted(ledger.journal_dir.glob("*.jsonl")):
        for entry in load_journal(journal):
            digest = fingerprint_digest(entry.case)
            counts[digest] = counts.get(digest, 0) + 1
    return counts


def _wait_all(processes, timeout):
    deadline = time.time() + timeout
    for process in processes:
        remaining = max(1.0, deadline - time.time())
        assert process.wait(timeout=remaining) == 0, \
            f"worker exited {process.returncode}"


def _run_single(root, cases, lease_timeout):
    coordinator = Coordinator.create(root, cases, workers=1)
    worker = spawn_worker(root, worker_id="solo",
                          lease_timeout=lease_timeout)
    _wait_all([worker], timeout=3600)
    return coordinator


def _run_four_with_kill(root, cases, lease_timeout):
    """Victim first (killed mid-lease), then three stealing survivors."""
    coordinator = Coordinator.create(root, cases, workers=4)
    ledger = coordinator.ledger
    # The victim journals per case so durable entries appear while its
    # lease is still claimed — the window in which the SIGKILL must land
    # for the steal to have anything to recover.
    victim = spawn_worker(root, worker_id="victim", strategy="percase",
                          lease_timeout=lease_timeout)
    try:
        deadline = time.time() + 600
        while time.time() < deadline:
            claimed = [lease for lease in ledger.leases()
                       if lease.state == "claimed"
                       and lease.worker == "victim"]
            if claimed and any(
                    ledger.journal_path(lease.lease_id).exists()
                    and load_journal(ledger.journal_path(lease.lease_id))
                    for lease in claimed):
                break
            time.sleep(0.01)
        else:
            pytest.fail("victim never journaled inside a claimed lease")
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=60)
    survivors = [spawn_worker(root, worker_id=f"survivor{number}",
                              lease_timeout=lease_timeout)
                 for number in range(3)]
    _wait_all(survivors, timeout=3600)
    return coordinator


@pytest.mark.benchmark(group="distrib")
def test_distributed_paper_grid_scaleout(benchmark, once, bench_record,
                                         tmp_path):
    full_tier = bool(os.environ.get("REPRO_BENCH_FULL"))
    cases = _campaign_cases(full_tier)
    if full_tier:
        assert len(cases) >= 10_000  # the acceptance campaign scale
    lease_timeout = 5.0 if full_tier else 1.0
    tier = "full" if full_tier else "quick"

    # --- workers=1 baseline --------------------------------------------
    start = time.perf_counter()
    single = _run_single(tmp_path / "solo", cases, lease_timeout)
    single_s = time.perf_counter() - start
    assert single.status()["complete"] is True
    assert single.merge().complete is True

    # --- workers=4, one SIGKILLed mid-lease (the benchmark proper) -----
    coordinator = once(benchmark, lambda: _run_four_with_kill(
        tmp_path / "fleet", cases, lease_timeout))
    four_s = benchmark.stats.stats.mean

    status = coordinator.status()
    assert status["complete"] is True
    assert status["steals"] >= 1, "the SIGKILL never forced a steal"
    stolen = [lease for lease in coordinator.ledger.leases()
              if lease.steals]
    assert all(lease.state == "done" and lease.generation >= 2
               for lease in stolen)
    assert any(record["worker"] == "victim"
               for lease in stolen for record in lease.steals)

    report = coordinator.merge()
    assert report.complete is True
    assert report.cases == len(cases)
    counts = _execution_counts(coordinator.ledger)
    assert len(counts) == len(cases)
    assert set(counts.values()) == {1}, "a case executed twice"

    speedup = single_s / four_s
    cpus = os.cpu_count() or 1
    if full_tier and cpus >= 4:
        assert speedup >= SPEEDUP_BAR, \
            f"{speedup:.2f}x < {SPEEDUP_BAR}x on {cpus} CPUs"

    bench_record("distributed-paper-grid[workers=1]",
                 wall_clock_s=single_s, cases=len(cases),
                 workers=1, tier=tier, cpus=cpus)
    bench_record("distributed-paper-grid[workers=4]",
                 wall_clock_s=four_s, cases=len(cases),
                 workers=4, tier=tier, cpus=cpus,
                 baseline_s=single_s, speedup=speedup,
                 killed=1, steals=status["steals"],
                 leases=status["leases"])
    print(f"\n[distrib] {tier} tier: {len(cases)} cases — "
          f"workers=1 {single_s:.2f}s, workers=4 (one SIGKILLed) "
          f"{four_s:.2f}s, speedup {speedup:.2f}x on {cpus} CPU(s), "
          f"{status['steals']} steal(s), merged artifact verified")


@pytest.mark.benchmark(group="distrib")
def test_merge_throughput(benchmark, once, bench_record, tmp_path):
    """``journal merge`` itself must stay cheap next to the campaign."""
    cases = _campaign_cases(full_tier=False)
    coordinator = _run_single(tmp_path / "camp", cases, lease_timeout=1.0)
    report = once(benchmark, lambda: coordinator.merge())
    merge_s = benchmark.stats.stats.mean
    assert report.complete is True
    bench_record("distributed-merge", wall_clock_s=merge_s,
                 cases=len(cases),
                 shards=len(list(
                     coordinator.ledger.journal_dir.glob("*.jsonl"))))
    print(f"\n[distrib] merge: {len(cases)} cases from "
          f"{len(list(coordinator.ledger.journal_dir.glob('*.jsonl')))} "
          f"shards in {merge_s * 1000:.1f}ms")
