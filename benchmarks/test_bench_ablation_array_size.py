"""Experiment ``ablation_array_size`` — Section 5's dependence claim.

"The power dissipation reduction depends on the memory array organisation
(#row and #col) and on the March algorithm that is being run."  Sweeps the
analytical model over column counts and algorithms (and over the word-width
extension) to show those dependences.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import AnalyticalPowerModel
from repro.march import PAPER_TABLE1_ALGORITHMS
from repro.sram.geometry import ArrayGeometry

COLUMN_SWEEP = (64, 128, 256, 512, 1024)


def sweep():
    rows = []
    for columns in COLUMN_SWEEP:
        geometry = ArrayGeometry(rows=512, columns=columns)
        model = AnalyticalPowerModel(geometry)
        row = {"# columns": columns}
        for algorithm in PAPER_TABLE1_ALGORITHMS:
            row[algorithm.name] = f"{100 * model.prr(algorithm):.1f} %"
        rows.append(row)
    word_rows = []
    for bits in (1, 4, 8, 16, 32):
        geometry = ArrayGeometry(rows=512, columns=512, bits_per_word=bits)
        model = AnalyticalPowerModel(geometry)
        word_rows.append({
            "bits per word": bits,
            "PRR March C-": f"{100 * model.prr(PAPER_TABLE1_ALGORITHMS[0]):.1f} %",
        })
    return rows, word_rows


@pytest.mark.benchmark(group="ablation")
def test_prr_dependence_on_array_organisation(benchmark, once):
    rows, word_rows = once(benchmark, sweep)
    print()
    print(render_table(rows, title="Analytical PRR vs. array width "
                                   "(512 rows, bit-oriented, Section 5 equations)"))
    print()
    print(render_table(word_rows, title="Word-oriented extension (paper future work): "
                                        "PRR of March C- vs. word width (512x512 array)"))

    # PRR must grow monotonically with the column count for every algorithm
    # (more pre-charge circuits are switched off), and shrink as the word
    # width grows (more columns stay active per access).
    for algorithm in PAPER_TABLE1_ALGORITHMS:
        series = [float(row[algorithm.name].split()[0]) for row in rows]
        assert all(b > a for a, b in zip(series, series[1:])), algorithm.name
    word_series = [float(row["PRR March C-"].split()[0]) for row in word_rows]
    assert all(b < a for a, b in zip(word_series, word_series[1:]))
