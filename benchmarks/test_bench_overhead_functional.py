"""Experiment ``overhead_functional`` — Section 4's negligible-impact claim.

Quantifies what the modified pre-charge control logic costs when the memory
operates normally: area (ten transistors per column), extra delay on the
``Pr_j`` path (one transmission gate), and switching energy per column
change relative to the energies that dominate an access.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import ModifiedPrechargeController
from repro.circuit import default_technology
from repro.power import PowerModel
from repro.sram.geometry import PAPER_GEOMETRY


def measure_overhead():
    tech = default_technology()
    controller = ModifiedPrechargeController(columns=64, tech=tech)
    controller.evaluate(lptest=True, selected_column=10)
    change = controller.evaluate(lptest=True, selected_column=11)
    energies = PowerModel(PAPER_GEOMETRY, tech=tech).energies()
    return tech, controller, change, energies


@pytest.mark.benchmark(group="overhead")
def test_modified_control_logic_overhead(benchmark, once):
    tech, controller, change, energies = once(benchmark, measure_overhead)
    rows = [
        {"metric": "added transistors per column", "value": controller.transistors_per_column(),
         "reference": "10 (paper §4)"},
        {"metric": "extra delay on Pr_j path", "value": f"{controller.added_delay_on_pr_path() * 1e12:.0f} ps",
         "reference": f"clock cycle = {tech.clock_period * 1e9:.0f} ns"},
        {"metric": "control switching energy per column change",
         "value": f"{change.switching_energy * 1e15:.2f} fJ",
         "reference": f"one write cycle P_w = {energies.write * 1e15:.0f} fJ"},
        {"metric": "controller critical path",
         "value": f"{change.critical_path_delay * 1e12:.0f} ps",
         "reference": "must settle well inside half a cycle"},
    ]
    print()
    print(render_table(rows, title="Overhead of the modified pre-charge control logic"))

    assert controller.transistors_per_column() == 10
    assert controller.added_delay_on_pr_path() < 0.05 * tech.clock_period
    assert change.switching_energy < 0.02 * energies.write
    assert change.critical_path_delay < 0.5 * (tech.clock_period / 2)
