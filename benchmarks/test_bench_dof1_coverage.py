"""Experiment ``dof1_coverage`` — Section 3's premise.

"The fault detection properties are independent of the utilized address
sequence."  Fault-simulates March C- (full single-cell + coupling battery)
and MATS+ (its target single-cell battery) under the word-line order, the
fast-row order and a pseudo-random permutation, and checks the per-fault
detection results are identical — which is what makes the paper's choice of
the word-line-after-word-line order admissible.

Each (algorithm, battery) pair is one :func:`repro.faults.run_campaign`
call: the fault list is batch-simulated once per order and both the
coverage and the invariance views derive from that single pass.  The
paper-scale version of this experiment (full 512 x 512 array, vectorized
campaign engine) lives in ``test_bench_fault_campaign.py``.
"""

from __future__ import annotations

import pytest

from repro.analysis import coverage_table
from repro.faults import build_fault_list, run_campaign
from repro.march import MARCH_CM, MATS_PLUS
from repro.march.dof import coverage_equivalence_orders
from repro.sram.geometry import ArrayGeometry

GEOMETRY = ArrayGeometry(rows=6, columns=6)
LOCATIONS = [(0, 0), (0, 5), (2, 3), (5, 0), (5, 5)]


def run_experiment():
    orders = coverage_equivalence_orders(GEOMETRY, seeds=(2006,))
    results = []
    full_battery = build_fault_list(GEOMETRY, locations=LOCATIONS)
    single_cell = build_fault_list(GEOMETRY, locations=LOCATIONS, include_coupling=False)
    for algorithm, battery, label in ((MARCH_CM, full_battery, "SAF+TF+RDF+CF battery"),
                                      (MATS_PLUS, single_cell, "single-cell battery")):
        campaign = run_campaign(algorithm, orders, GEOMETRY, battery)
        results.append((algorithm, label, campaign))
    return results


@pytest.mark.benchmark(group="dof1")
def test_dof1_fault_coverage_invariance(benchmark, once):
    results = once(benchmark, run_experiment)
    reports = [campaign.coverage_report(order)
               for _, _, campaign in results
               for order in campaign.orders]
    print()
    print(coverage_table(
        reports, title="DOF-1: fault coverage under different address orders"))
    for algorithm, label, campaign in results:
        invariance = campaign.invariance_report()
        print(f"  {invariance.describe()} [{label}, {campaign.backend_used}]")
        assert invariance.invariant, invariance.disagreements[:3]
        coverages = [campaign.coverage_report(order).coverage
                     for order in campaign.orders]
        assert all(c == pytest.approx(coverages[0]) for c in coverages)
    # March C- must cover the classical battery essentially completely.
    march_cm_cov = results[0][2].coverage_report().coverage
    assert march_cm_cov > 0.85
