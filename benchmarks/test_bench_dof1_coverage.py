"""Experiment ``dof1_coverage`` — Section 3's premise.

"The fault detection properties are independent of the utilized address
sequence."  Fault-simulates March C- (full single-cell + coupling battery)
and MATS+ (its target single-cell battery) under the word-line order, the
fast-row order and a pseudo-random permutation, and checks the per-fault
detection results are identical — which is what makes the paper's choice of
the word-line-after-word-line order admissible.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.faults import build_fault_list, check_order_invariance, run_coverage
from repro.march import MARCH_CM, MATS_PLUS
from repro.march.dof import coverage_equivalence_orders
from repro.sram.geometry import ArrayGeometry

GEOMETRY = ArrayGeometry(rows=6, columns=6)
LOCATIONS = [(0, 0), (0, 5), (2, 3), (5, 0), (5, 5)]


def run_campaign():
    orders = coverage_equivalence_orders(GEOMETRY, seeds=(2006,))
    results = []
    full_battery = build_fault_list(GEOMETRY, locations=LOCATIONS)
    single_cell = build_fault_list(GEOMETRY, locations=LOCATIONS, include_coupling=False)
    for algorithm, battery, label in ((MARCH_CM, full_battery, "SAF+TF+RDF+CF battery"),
                                      (MATS_PLUS, single_cell, "single-cell battery")):
        invariance = check_order_invariance(algorithm, orders, GEOMETRY, battery)
        coverages = [run_coverage(algorithm, order, GEOMETRY, battery) for order in orders]
        results.append((algorithm, label, invariance, coverages))
    return results


@pytest.mark.benchmark(group="dof1")
def test_dof1_fault_coverage_invariance(benchmark, once):
    results = once(benchmark, run_campaign)
    rows = []
    for algorithm, label, invariance, coverages in results:
        for coverage in coverages:
            rows.append({
                "Algorithm": algorithm.name,
                "Fault battery": label,
                "Address order": coverage.order,
                "Detected": f"{coverage.detected_faults}/{coverage.total_faults}",
                "Coverage": f"{100 * coverage.coverage:.1f} %",
            })
    print()
    print(render_table(rows, title="DOF-1: fault coverage under different address orders"))
    for algorithm, label, invariance, coverages in results:
        print(f"  {invariance.describe()}")
        assert invariance.invariant, invariance.disagreements[:3]
        baseline = coverages[0].coverage
        assert all(c.coverage == pytest.approx(baseline) for c in coverages)
    # March C- must cover the classical battery essentially completely.
    march_cm_cov = results[0][3][0].coverage
    assert march_cm_cov > 0.85
