"""Experiment ``serve-trace-replay`` — the campaign service under load.

Replays the committed duplicate-heavy synthetic workload trace
(``benchmarks/data/serve_trace.jsonl``: 120 requests over 14 distinct
case fingerprints, Zipf-ish hot-case mix) against a live
:class:`repro.serve.CampaignService` and measures the two claims the
serving layer makes:

* **dedup + coalescing** — however the duplicate burst interleaves,
  each distinct case reaches the engine exactly once (asserted from the
  service's own recorded trace: one ``miss`` per digest, everything
  else served as ``hit``/``coalesced``);
* **cached-hit latency** — a second full pass over the trace is served
  entirely from the content-addressed cache with a mean per-request
  service latency under :data:`HIT_LATENCY_BUDGET_MS`.

Both passes land in ``BENCH_<id>.json``: ``serve-trace-replay`` (cold
pass wall clock) and ``serve-cache-hit`` (hot pass wall clock, with the
mean/max hit latency as extra fields) — the committed trajectory CI
gates with ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import statistics
from pathlib import Path

import pytest

from repro.serve import ServeClient, load_trace, replay, replay_cases, running_service

#: The committed synthetic workload this benchmark replays.
TRACE_PATH = Path(__file__).parent / "data" / "serve_trace.jsonl"
#: Acceptance bar on the mean service-side latency of a cached hit.
HIT_LATENCY_BUDGET_MS = 10.0
#: Client fan-out while replaying (duplicate-heavy: exercises coalescing).
REPLAY_CONCURRENCY = 8


@pytest.mark.benchmark(group="serve")
def test_trace_replay_executes_each_distinct_case_once(benchmark, once,
                                                       bench_record,
                                                       tmp_path):
    cases = list(replay_cases(TRACE_PATH))
    distinct = {line["digest"] for line in load_trace(TRACE_PATH)}
    assert len(cases) >= 100 and len(distinct) <= 20  # the committed shape

    with running_service(tmp_path / "cache",
                         trace_path=tmp_path / "trace.jsonl") \
            as (service, host, port):
        # --- cold pass: every request is a miss, hit or coalesced ------
        responses = once(benchmark, lambda: replay(
            host, port, cases, concurrency=REPLAY_CONCURRENCY))
        stats = service.stats_snapshot()

        # --- hot pass: the cache now holds every distinct case ---------
        with ServeClient(host, port) as client:
            hot = [client.submit(case) for case in cases]
        hot_stats = service.stats_snapshot()

    assert len(responses) == len(cases)
    assert stats["errors"] == 0

    # Dedup claim, from the service's own trace: however the burst
    # interleaved, each distinct digest missed exactly once...
    served = load_trace(tmp_path / "trace.jsonl")[:len(cases)]
    misses = [line["digest"] for line in served if line["outcome"] == "miss"]
    assert sorted(misses) == sorted(distinct)
    # ...and the engine executed exactly that set, nothing twice.
    assert stats["executed_cases"] == len(distinct)
    assert stats["engine_passes"] <= len(distinct)

    # Hot-pass claim: pure cache hits, no engine, under the latency bar.
    assert [r["served"]["outcome"] for r in hot] == ["hit"] * len(cases)
    assert hot_stats["engine_passes"] == stats["engine_passes"]
    hit_ms = [r["served"]["latency_ms"] for r in hot]
    mean_ms = statistics.fmean(hit_ms)
    assert mean_ms < HIT_LATENCY_BUDGET_MS, \
        f"mean cached-hit latency {mean_ms:.3f}ms >= {HIT_LATENCY_BUDGET_MS}ms"

    cold_s = benchmark.stats.stats.mean
    bench_record("serve-trace-replay", wall_clock_s=cold_s,
                 cases=len(cases), distinct=len(distinct),
                 engine_passes=stats["engine_passes"],
                 coalesced=stats["coalesced"], hits=stats["hits"])
    bench_record("serve-cache-hit", wall_clock_s=mean_ms / 1000.0,
                 cases=len(cases), hit_mean_ms=round(mean_ms, 3),
                 hit_max_ms=round(max(hit_ms), 3),
                 budget_ms=HIT_LATENCY_BUDGET_MS)

    print(f"\n[serve] cold replay: {len(cases)} requests "
          f"({len(distinct)} distinct) in {cold_s:.3f}s — "
          f"{stats['engine_passes']} engine pass(es), "
          f"{stats['hits']} hits, {stats['coalesced']} coalesced")
    print(f"[serve] hot replay: mean hit {mean_ms:.3f}ms, "
          f"max {max(hit_ms):.3f}ms (budget {HIT_LATENCY_BUDGET_MS}ms)")
