"""Experiment ``kernel_tiers`` — warm PRR latency per kernel tier at scale.

The compiled-tier series' acceptance bar: a full 4096 x 4096 PRR
measurement (both operating modes through the BIST path — the workload
that took ~2 s per case before this series) completes in **under 100 ms
warm** on every tier that can run here.  "Warm" means the controller's
caches are populated — the compiled operation trace, the segment walk,
the BIST order memo and (for ``kernel="jit"``) numba's on-disk function
cache — exactly the steady state of a sweep evaluating many algorithms on
one geometry.

One entry per available tier lands in ``BENCH_<id>.json`` (workload
``paper-prr-4096x4096-warm[<tier>]``) with the cold first measurement as
its ``baseline_s``, so the committed trajectory records the per-tier
cold/warm trajectory and ``check_regression.py`` gates each tier against
its own committed baseline (like-for-like via the ``kernel`` field).

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — a 1024 x 1024 array for smoke jobs; the
  <100 ms bar is asserted on the full tier only (the claim is about the
  paper-extrapolated 4096-row geometry).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import render_table
from repro.bist import BistController
from repro.march.library import get_algorithm
from repro.sram import ArrayGeometry

#: The tentpole acceptance bar: warm 4096 x 4096 PRR under 100 ms.
WARM_BUDGET_S = 0.1

ALGORITHM = "March C-"


def _tiers():
    """Every tier that can execute a PRR campaign here, fastest-first.

    The segmented kernel is excluded: it is the differential oracle (a
    chunked Python loop), not a performance tier, and the <100 ms bar is
    not a claim about it.
    """
    from repro.engine import available_kernels

    return tuple(tier for tier in available_kernels()
                 if tier != "segmented")


def _workload_geometry():
    if os.environ.get("REPRO_BENCH_QUICK"):
        return ArrayGeometry(rows=1024, columns=1024), "1024x1024", False
    return ArrayGeometry(rows=4096, columns=4096), "4096x4096", True


@pytest.mark.benchmark(group="kernel-tiers")
@pytest.mark.parametrize("tier", _tiers())
def test_prr_warm_latency_per_tier(benchmark, once, bench_record, tier):
    geometry, label, enforce_budget = _workload_geometry()
    algorithm = get_algorithm(ALGORITHM)
    controller = BistController(geometry, backend="vectorized", kernel=tier)

    # Cold: trace compilation + first kernel pass (for jit, loading or
    # building numba's cached machine code) + the first measurement.
    started = time.perf_counter()
    cold_functional = controller.run(algorithm, low_power=False)
    cold_low_power = controller.run(algorithm, low_power=True)
    cold_s = time.perf_counter() - started
    assert cold_functional.passed and cold_low_power.passed

    # Warm: the same full PRR measurement on populated caches.
    timing = {}

    def run_warm():
        started = time.perf_counter()
        functional = controller.run(algorithm, low_power=False)
        low_power = controller.run(algorithm, low_power=True)
        timing["warm"] = time.perf_counter() - started
        return functional, low_power

    functional, low_power = once(benchmark, run_warm)
    warm_s = timing["warm"]
    assert functional.passed and low_power.passed
    # Truthful tier provenance on the results themselves.
    expected_tier = {"jit", "gpu"} if tier in ("jit", "gpu") else {tier}
    assert functional.kernel in expected_tier | {"flat"}

    measured_prr = 1.0 - low_power.average_power / functional.average_power
    print()
    print(render_table(
        [{"Tier": tier, "Cold (s)": f"{cold_s:.3f}",
          "Warm (s)": f"{warm_s:.4f}",
          "PRR": f"{100.0 * measured_prr:.1f} %",
          "Ran on": functional.kernel}],
        title=f"{ALGORITHM} PRR @ {label} — kernel tier {tier!r}"))

    if enforce_budget:
        assert warm_s < WARM_BUDGET_S, (
            f"warm {label} PRR on tier {tier!r} took {warm_s:.3f}s "
            f"(budget {WARM_BUDGET_S}s)")

    bench_record(
        f"paper-prr-{label}-warm[{tier}]",
        wall_clock_s=warm_s,
        baseline_s=cold_s,
        speedup=cold_s / warm_s if warm_s > 0 else None,
        cases=1,
        geometry=label,
        kernel=functional.kernel,   # the tier that actually executed
        requested_kernel=tier,
        algorithm=ALGORITHM,
    )
