"""Experiment ``table1_paper_scale`` — Table 1 measured at the paper's scale.

The seed reproduction measured Table 1 on an 8-row full-width stand-in
(``test_bench_table1_prr.py``) because the cycle-accurate reference engine
needs minutes per algorithm on the real geometry.  This benchmark runs the
measurement on the actual 512 x 512 array — 2.6 to 6 million clock cycles
per mode per algorithm — through the vectorized backend, and checks it
against the Section 5 analytical model:

* the *paper equation* variant reproduces the published PRR band;
* the *+recharge* variant additionally accounts for recharging the next
  column's discharged bit line (a cost the paper's equation omits but every
  cycle-accurate measurement includes); the measured PRR must track it
  within half a percentage point.

Paper values for reference: March C- 47.3 %, March SS 50.0 %, MATS+ 48.1 %,
March SR 49.5 %, March G 50.5 %.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import AnalyticalPowerModel, TestSession
from repro.march import PAPER_TABLE1_ALGORITHMS
from repro.sram.geometry import PAPER_GEOMETRY

PAPER_PRR = {
    "March C-": 47.3,
    "March SS": 50.0,
    "MATS+": 48.1,
    "March SR": 49.5,
    "March G": 50.5,
}


def reproduce_table1_paper_scale():
    session = TestSession(PAPER_GEOMETRY, detailed=False, backend="vectorized")
    analytical = AnalyticalPowerModel(PAPER_GEOMETRY)
    rows = []
    for algorithm in PAPER_TABLE1_ALGORITHMS:
        comparison = session.compare_modes(algorithm)
        prediction = analytical.predict(algorithm)
        prediction_full = analytical.predict(algorithm, include_secondary=True,
                                             include_next_column_recharge=True)
        rows.append({
            "Algorithm": algorithm.name,
            "# elm": algorithm.element_count,
            "# oper": algorithm.operation_count,
            "PRR paper": f"{PAPER_PRR[algorithm.name]:.1f} %",
            "PRR analytical (paper eq.)": f"{100 * prediction.prr:.1f} %",
            "PRR analytical (+recharge)": f"{100 * prediction_full.prr:.1f} %",
            "PRR measured": f"{100 * comparison.prr:.1f} %",
            "P_F measured (mW)": f"{comparison.functional.average_power * 1e3:.3f}",
            "P_LPT measured (mW)": f"{comparison.low_power.average_power * 1e3:.3f}",
            "Cycles/mode": comparison.functional.cycles,
        })
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_prr_at_paper_scale(benchmark, once):
    rows = once(benchmark, reproduce_table1_paper_scale)
    print()
    print(render_table(
        rows,
        title="Table 1 at paper scale — PRR measured on the full 512x512 "
              "SRAM (0.13um, 1.6V, 3ns; vectorized backend)"))
    # Same shape tolerances as the seed's stand-in benchmark, plus the
    # paper-scale reconciliation: the full-array measurement must track the
    # analytical model (with the recharge term) closely.
    for row in rows:
        measured = float(row["PRR measured"].split()[0])
        analytical = float(row["PRR analytical (paper eq.)"].split()[0])
        analytical_recharge = float(row["PRR analytical (+recharge)"].split()[0])
        assert measured > 15.0, row["Algorithm"]
        assert 40.0 < analytical < 70.0, row["Algorithm"]
        assert abs(measured - analytical_recharge) < 2.0, row["Algorithm"]
