"""Experiment ``grid_batched`` — flat-kernel batched grids vs the PR 4 path.

The paper's measured workloads are grid-shaped — Table 1 is
*(algorithm x planner)* on one geometry, the scaling studies add array
size — and PR 4's orchestrator evaluated them one case at a time on the
segmented kernel (a Python loop over row segments inside every run).
This experiment measures the two layers this series replaced that with:

* the **flat kernel** — whole-run NumPy reductions over the compiled
  segment structure, memoised on the shared operation trace;
* the **batched grid strategy** — all algorithms, orders and both
  planners of a geometry evaluated in one stacked kernel pass.

The baseline is the PR 4 configuration reproduced exactly: per-case
strategy on the segmented kernel (``default_kernel("segmented")`` pins the
process default, reaching the engines inside the facades).  The claim
asserted here is the series' acceptance bar: the batched paper-scale grid
beats that baseline by >= 5x wall-clock with records that are
field-for-field identical (``elapsed_s`` aside), and the measurement is
recorded in ``BENCH_<id>.json`` as the committed perf trajectory.

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — a 64-row grid for smoke jobs (the identity
  assertion is unchanged; the speedup bar drops to 2x, fixed costs
  dominate tiny grids);
* default — the full paper-scale grid: the measured 512 x 512 Table 1
  through the BIST path plus the session power sweep, both planners each.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import render_table
from repro.engine.vectorized import default_kernel
from repro.sweep import SweepRunner
from repro.sweep.runner import paper_prr_cases, paper_table1_cases, prr_grid, sweep_grid

#: Acceptance bar on the full paper-scale grid (PR 4 baseline / batched).
MINIMUM_GRID_SPEEDUP = 5.0
#: Smoke-tier bar: fixed per-run costs dominate 64-row grids.
MINIMUM_QUICK_SPEEDUP = 2.0

ALGORITHMS = ("March C-", "March SS", "MATS+", "March SR", "March G")


def _grid_cases():
    if os.environ.get("REPRO_BENCH_QUICK"):
        return (prr_grid(["64x512"], ALGORITHMS, backend="vectorized")
                + sweep_grid(["64x512"], ALGORITHMS,
                             backends=("vectorized",)), "64x512")
    return paper_prr_cases() + paper_table1_cases(), "512x512"


def _drop_elapsed(record):
    row = record.as_dict()
    row.pop("elapsed_s")
    return row


def _drop_kernel_provenance(row):
    """The cross-kernel baseline comparison: ``kernel_used`` records the
    tier that actually executed, which differs *by design* between the
    segmented-kernel baseline and today's kernel — every physical field
    must still agree."""
    row = dict(row)
    row.pop("kernel_used")
    return row


@pytest.mark.benchmark(group="grid-batched")
def test_batched_grid_speedup_over_percase_segmented(benchmark, once,
                                                     bench_record):
    cases, geometry = _grid_cases()

    # --- PR 4 baseline: per-case strategy on the segmented kernel -------
    started = time.perf_counter()
    with default_kernel("segmented"):
        baseline = SweepRunner(cases, processes=1, strategy="percase").run()
    baseline_s = time.perf_counter() - started

    # --- this series: one stacked flat-kernel pass per geometry ---------
    timing = {}

    def run_batched():
        started = time.perf_counter()
        result = SweepRunner(cases, strategy="batched").run()
        timing["batched"] = time.perf_counter() - started
        return result

    batched = once(benchmark, run_batched)
    batched_s = timing["batched"]
    speedup = baseline_s / batched_s

    print()
    print(render_table(
        [{"Path": "PR 4 baseline (percase + segmented kernel)",
          "Wall clock (s)": f"{baseline_s:.3f}", "Cases": len(cases)},
         {"Path": "batched grid (stacked flat kernel)",
          "Wall clock (s)": f"{batched_s:.3f}", "Cases": len(cases)}],
        title=f"Paper-scale grid on {geometry} — batched speedup "
              f"{speedup:.1f}x"))

    # Records are the experiment's ground truth.  Against the PR 4
    # baseline the energies agree to floating-point summation order (the
    # flat kernel evaluates the same physics with closed-form sums);
    # against the per-case strategy on today's kernel they are identical
    # bit for bit.
    assert len(batched) == len(baseline)
    for expected, observed in zip(baseline, batched):
        left = _drop_kernel_provenance(_drop_elapsed(expected))
        right = _drop_kernel_provenance(_drop_elapsed(observed))
        assert set(left) == set(right)
        for field, value in left.items():
            if isinstance(value, float):
                assert right[field] == pytest.approx(value, rel=1e-9), field
            else:
                assert right[field] == value, field
    percase_flat = SweepRunner(cases, processes=1, strategy="percase").run()
    for expected, observed in zip(percase_flat, batched):
        assert _drop_elapsed(observed) == _drop_elapsed(expected)

    minimum = (MINIMUM_QUICK_SPEEDUP if os.environ.get("REPRO_BENCH_QUICK")
               else MINIMUM_GRID_SPEEDUP)
    assert speedup >= minimum, (
        f"batched grid speedup {speedup:.1f}x under the {minimum}x bar "
        f"(baseline {baseline_s:.3f}s, batched {batched_s:.3f}s)")

    bench_record(
        f"paper-grid-batched[{geometry}]",
        wall_clock_s=batched_s,
        baseline_s=baseline_s,
        speedup=speedup,
        cases=len(cases),
        geometry=geometry,
        baseline="percase strategy + segmented kernel (PR 4)",
    )


# ----------------------------------------------------------------------
# Banked variant: the beyond-paper 4-bank grid through the same layers
# ----------------------------------------------------------------------
def _banked_grid_cases():
    if os.environ.get("REPRO_BENCH_QUICK"):
        return (prr_grid(["64x512"], ALGORITHMS, backend="vectorized",
                         banks=(4,)), "64x512")
    return (prr_grid(["512x512"], ALGORITHMS, backend="vectorized",
                     banks=(4,)), "512x512")


@pytest.mark.benchmark(group="grid-batched")
def test_banked_batched_grid_speedup_over_percase_segmented(benchmark, once,
                                                            bench_record):
    """The 4-bank Table 1 grid: per-bank pre-charge accounting (bank-select
    transition counting, bank-height bit lines) must ride the stacked flat
    kernel at the same speedup class as the monolithic grid, with records
    identical to the per-case strategy."""
    cases, geometry = _banked_grid_cases()

    started = time.perf_counter()
    with default_kernel("segmented"):
        baseline = SweepRunner(cases, processes=1, strategy="percase").run()
    baseline_s = time.perf_counter() - started

    timing = {}

    def run_batched():
        started = time.perf_counter()
        result = SweepRunner(cases, strategy="batched").run()
        timing["batched"] = time.perf_counter() - started
        return result

    batched = once(benchmark, run_batched)
    batched_s = timing["batched"]
    speedup = baseline_s / batched_s

    print()
    print(render_table(
        [{"Path": "percase + segmented kernel",
          "Wall clock (s)": f"{baseline_s:.3f}", "Cases": len(cases)},
         {"Path": "batched grid (stacked flat kernel)",
          "Wall clock (s)": f"{batched_s:.3f}", "Cases": len(cases)}],
        title=f"Banked (4-bank) grid on {geometry} — batched speedup "
              f"{speedup:.1f}x"))

    assert len(batched) == len(baseline)
    for expected, observed in zip(baseline, batched):
        left = _drop_kernel_provenance(_drop_elapsed(expected))
        right = _drop_kernel_provenance(_drop_elapsed(observed))
        assert set(left) == set(right)
        for field, value in left.items():
            if isinstance(value, float):
                assert right[field] == pytest.approx(value, rel=1e-9), field
            else:
                assert right[field] == value, field
        assert left["banks"] == 4
    percase_flat = SweepRunner(cases, processes=1, strategy="percase").run()
    for expected, observed in zip(percase_flat, batched):
        assert _drop_elapsed(observed) == _drop_elapsed(expected)

    minimum = (MINIMUM_QUICK_SPEEDUP if os.environ.get("REPRO_BENCH_QUICK")
               else MINIMUM_GRID_SPEEDUP)
    assert speedup >= minimum, (
        f"banked batched grid speedup {speedup:.1f}x under the {minimum}x "
        f"bar (baseline {baseline_s:.3f}s, batched {batched_s:.3f}s)")

    bench_record(
        f"paper-grid-batched[{geometry},banks=4]",
        wall_clock_s=batched_s,
        baseline_s=baseline_s,
        speedup=speedup,
        cases=len(cases),
        geometry=geometry,
        banks=4,
        baseline="percase strategy + segmented kernel",
    )
