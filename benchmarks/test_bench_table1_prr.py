"""Experiment ``table1_prr`` — the paper's Table 1.

Reproduces the Power Reduction Ratio of the five March algorithms
(March C-, March SS, MATS+, March SR, March G) on the paper's 512 x 512,
0.13 µm, 1.6 V, 3 ns SRAM:

* *measured*: cycle-accurate behavioural simulation in both modes on a
  reduced-row stand-in (full 512-column width, full-length bit-line
  capacitance, 8 instantiated rows — see ``repro.analysis.scaling``);
* *analytical*: the paper's Section 5 equations on the full 512 x 512 array.

Paper values for reference: March C- 47.3 %, March SS 50.0 %, MATS+ 48.1 %,
March SR 49.5 %, March G 50.5 %.
"""

from __future__ import annotations

import pytest

from repro.analysis import reduced_row_equivalent, render_table
from repro.core import AnalyticalPowerModel, TestSession
from repro.march import PAPER_TABLE1_ALGORITHMS
from repro.sram.geometry import PAPER_GEOMETRY

PAPER_PRR = {
    "March C-": 47.3,
    "March SS": 50.0,
    "MATS+": 48.1,
    "March SR": 49.5,
    "March G": 50.5,
}


def reproduce_table1():
    equivalent = reduced_row_equivalent(PAPER_GEOMETRY, rows=8)
    session = TestSession(equivalent.reduced, tech=equivalent.tech, detailed=False)
    analytical = AnalyticalPowerModel(PAPER_GEOMETRY)
    rows = []
    for algorithm in PAPER_TABLE1_ALGORITHMS:
        comparison = session.compare_modes(algorithm)
        prediction = analytical.predict(algorithm)
        prediction_full = analytical.predict(algorithm, include_secondary=True,
                                              include_next_column_recharge=True)
        rows.append({
            "Algorithm": algorithm.name,
            "# elm": algorithm.element_count,
            "# oper": algorithm.operation_count,
            "# read": algorithm.read_count,
            "# write": algorithm.write_count,
            "PRR paper": f"{PAPER_PRR[algorithm.name]:.1f} %",
            "PRR analytical (paper eq.)": f"{100 * prediction.prr:.1f} %",
            "PRR analytical (+recharge)": f"{100 * prediction_full.prr:.1f} %",
            "PRR measured": f"{100 * comparison.prr:.1f} %",
            "P_F measured (mW)": f"{comparison.functional.average_power * 1e3:.3f}",
            "P_LPT measured (mW)": f"{comparison.low_power.average_power * 1e3:.3f}",
        })
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_power_reduction_ratio(benchmark, once):
    rows = once(benchmark, reproduce_table1)
    print()
    print(render_table(
        rows,
        title="Table 1 — PRR for different March algorithms "
              "(512x512 SRAM, 0.13um, 1.6V, 3ns; measured on an 8-row "
              "full-width stand-in with full-length bit lines)"))
    # Shape checks: the low-power test mode always wins, by a large factor,
    # for every algorithm, and the analytical model sits in the paper's band.
    for row in rows:
        measured = float(row["PRR measured"].split()[0])
        analytical = float(row["PRR analytical (paper eq.)"].split()[0])
        assert measured > 15.0, row["Algorithm"]
        assert 40.0 < analytical < 70.0, row["Algorithm"]
