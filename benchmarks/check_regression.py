"""Gate a fresh BENCH_*.json against the committed perf baseline.

Usage::

    python benchmarks/check_regression.py BASELINE.json FRESH.json \
        [--workload paper-grid-batched] [--factor 2.0] [--margin 0.5]

Two checks per gated workload (fresh entries whose name matches the
``--workload`` prefix, compared against the committed entry of the same
name):

* **wall clock** — fails when the fresh wall clock exceeds
  ``factor x committed + margin``.  The additive margin (not a floor that
  could swallow the factor on sub-second workloads) absorbs scheduler
  noise on shared runners;
Comparisons are like-for-like on the kernel tier: when both entries carry
a ``kernel`` field and the tiers differ (e.g. a fresh flat-tier smoke run
against a committed jit-tier baseline), the workload is skipped instead of
mis-gated; entries without the field predate it and match anything.

* **speedup ratio** — when both entries record a measured ``speedup``
  (the grid benchmark measures batched against its own in-session PR 4
  baseline), fails when the fresh speedup drops below
  ``committed / factor``.  Both sides of that ratio run on the same
  machine in the same session, so this check is hardware-independent and
  catches kernel regressions even when absolute wall clocks are noisy.

CI runs this after the bench job: the committed ``BENCH_<id>.json`` *is*
the perf contract, so a paper-scale grid regression fails the build
instead of landing silently.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_entries(path: Path):
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != "repro-bench":
        raise SystemExit(f"error: {path} is not a repro-bench trajectory")
    return {entry["workload"]: entry for entry in payload["entries"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument("--workload", default="paper-grid-batched",
                        help="workload-name prefix to gate (default: the "
                             "paper-scale grid)")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed regression factor on wall clock and "
                             "measured speedup (default: 2.0)")
    parser.add_argument("--margin", type=float, default=0.5,
                        help="additive wall-clock allowance in seconds for "
                             "runner noise (default: 0.5)")
    args = parser.parse_args(argv)

    baseline = load_entries(args.baseline)
    fresh = load_entries(args.fresh)
    gated = {workload: entry for workload, entry in fresh.items()
             if workload.startswith(args.workload)}
    if not gated:
        print(f"error: fresh trajectory has no '{args.workload}*' workload "
              "to gate", file=sys.stderr)
        return 2

    failures = 0
    for workload, entry in sorted(gated.items()):
        committed = baseline.get(workload)
        if committed is None:
            print(f"[gate] {workload}: no committed baseline — skipped")
            continue
        # Like-for-like kernel tiers only: a fresh flat-tier measurement
        # must not be gated against a committed jit-tier baseline (or
        # vice versa).  An entry without a tier predates the field and
        # matches anything.
        fresh_tier = entry.get("kernel")
        committed_tier = committed.get("kernel")
        if fresh_tier is not None and committed_tier is not None \
                and fresh_tier != committed_tier:
            print(f"[gate] {workload}: kernel tier differs "
                  f"(fresh {fresh_tier!r} vs committed {committed_tier!r}) "
                  "— skipped")
            continue
        allowed = args.factor * float(committed["wall_clock_s"]) + args.margin
        observed = float(entry["wall_clock_s"])
        wall_ok = observed <= allowed
        print(f"[gate] {workload}: wall {observed:.3f}s vs committed "
              f"{float(committed['wall_clock_s']):.3f}s "
              f"(allowed {allowed:.3f}s) — "
              f"{'ok' if wall_ok else 'REGRESSION'}")
        if not wall_ok:
            failures += 1
        if "speedup" in entry and "speedup" in committed:
            required = float(committed["speedup"]) / args.factor
            measured = float(entry["speedup"])
            ratio_ok = measured >= required
            print(f"[gate] {workload}: speedup {measured:.1f}x vs committed "
                  f"{float(committed['speedup']):.1f}x "
                  f"(required >= {required:.1f}x) — "
                  f"{'ok' if ratio_ok else 'REGRESSION'}")
            if not ratio_ok:
                failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
