"""Experiment ``fig6c_fig7_faulty_swap`` — the paper's Figure 6c and Figure 7.

Without the one-cycle functional-mode restoration at the end of each row,
the next row's cells are overwritten by the discharged bit lines (the
"faulty swap"); with the restoration the data survives and the scheme stays
data-background independent.  Shown both at transistor level (the Figure 5
style fixture) and on the behavioural memory running a March element across
a row transition.
"""

from __future__ import annotations

import pytest

from repro.analysis import faulty_swap_fixture
from repro.circuit import default_technology
from repro.sram import (
    ArrayGeometry,
    OperatingMode,
    PrechargePlan,
    SRAM,
    checkerboard_background,
)


def transistor_level_swap():
    tech = default_technology()
    no_restore = faulty_swap_fixture(restore_before_transition=False, tech=tech) \
        .simulate(t_stop=5 * tech.clock_period, dt=0.5e-12, record_every=400)
    with_restore = faulty_swap_fixture(restore_before_transition=True, tech=tech) \
        .simulate(t_stop=5 * tech.clock_period, dt=0.5e-12, record_every=400)
    return tech, no_restore, with_restore


def behavioural_row_transition(restore: bool):
    geometry = ArrayGeometry(rows=8, columns=32)
    memory = SRAM(geometry, mode=OperatingMode.LOW_POWER_TEST)
    memory.apply_background(checkerboard_background())
    last = geometry.words_per_row - 1
    for word in range(geometry.words_per_row):
        enabled = frozenset({word + 1}) if word < last else frozenset()
        plan = PrechargePlan(enabled_columns=enabled,
                             full_restore=restore and word == last)
        memory.write(0, word, 0, plan=plan)
    outcome = memory.read(1, 0, plan=PrechargePlan(enabled_columns=frozenset({1})))
    return memory, outcome


@pytest.mark.benchmark(group="figure7")
def test_figure7_row_transition_restoration(benchmark, once):
    tech, swapped, kept = once(benchmark, transistor_level_swap)
    print()
    print("Figure 6c — transistor-level row transition WITHOUT restoration "
          "(victim cell stored '1', i.e. S=0 / SB=VDD):")
    print(f"  final S = {swapped.final_voltage('victim_S'):.3f} V, "
          f"SB = {swapped.final_voltage('victim_SB'):.3f} V  -> cell swapped")
    print("Figure 7 — same transition WITH the one-cycle pre-charge restoration:")
    print(f"  final S = {kept.final_voltage('victim_S'):.3f} V, "
          f"SB = {kept.final_voltage('victim_SB'):.3f} V  -> data preserved")

    assert swapped.final_voltage("victim_S") > 0.7 * tech.vdd      # flipped
    assert kept.final_voltage("victim_S") < 0.3 * tech.vdd         # preserved

    memory_bad, outcome_bad = behavioural_row_transition(restore=False)
    memory_good, outcome_good = behavioural_row_transition(restore=True)
    print()
    print("Behavioural memory, checkerboard background, row 0 -> row 1 transition:")
    print(f"  restoration skipped : {len(outcome_bad.faulty_swaps)} faulty swap(s) "
          f"detected at {outcome_bad.faulty_swaps[:4]} ...")
    print(f"  restoration applied : {len(outcome_good.faulty_swaps)} faulty swap(s)")
    assert outcome_bad.faulty_swaps
    assert not outcome_good.faulty_swaps
    assert memory_good.counters.full_restores == 1
