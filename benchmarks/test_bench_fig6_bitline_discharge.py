"""Experiment ``fig6_bitline_interaction`` — the paper's Figure 6a/6b.

A cell left selected on floating bit lines (pre-charge OFF) progressively
discharges the line connected to its '0' node — logic '0' is reached within
roughly nine clock cycles — while the complementary line stays at VDD, and
the read-equivalent stress on the cell dies away with the line voltage.
"""

from __future__ import annotations

import pytest

from repro.analysis import bitline_discharge_fixture
from repro.circuit import default_technology


def simulate_discharge():
    tech = default_technology()
    fixture = bitline_discharge_fixture(tech=tech, rows=512)
    result = fixture.simulate(t_stop=12 * tech.clock_period, dt=50e-12, record_every=4)
    return tech, result


@pytest.mark.benchmark(group="figure6")
def test_figure6_floating_bitline_discharge(benchmark, once):
    tech, result = once(benchmark, simulate_discharge)
    bl = result.waveform("BL")
    blb = result.waveform("BLB")
    print()
    print("Figure 6a — floating bit line BL discharged by the unselected cell:")
    print(bl.render_ascii(width=66, height=10))
    logic_low = bl.first_crossing(0.3 * tech.vdd, "falling")
    near_zero = bl.first_crossing(0.05 * tech.vdd, "falling")
    print(f"  BL crosses logic '0' threshold after {logic_low / tech.clock_period:.1f} cycles")
    if near_zero is not None:
        print(f"  BL essentially fully discharged after {near_zero / tech.clock_period:.1f} cycles "
              "(paper: ~9 cycles)")
    print(f"  BLB stays at VDD: final value {blb.final_value():.3f} V (no stress on that side)")
    print()
    print("Figure 6b — residual RES on the cell (proportional to the BL voltage):")
    per_cycle = [bl.value_at(k * tech.clock_period) / tech.vdd for k in range(12)]
    print("  cycle:    " + " ".join(f"{k:5d}" for k in range(12)))
    print("  RES frac: " + " ".join(f"{v:5.2f}" for v in per_cycle))

    assert logic_low is not None
    assert 2.0 < logic_low / tech.clock_period < 12.0
    assert blb.final_value() == pytest.approx(tech.vdd)
    assert bl.final_value() < 0.1 * tech.vdd
    # the residual stress decays monotonically
    assert all(b <= a + 1e-9 for a, b in zip(per_cycle, per_cycle[1:]))
