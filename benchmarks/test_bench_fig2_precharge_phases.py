"""Experiment ``fig2_precharge_phases`` — the paper's Figure 2.

Pre-charge action over one clock cycle for a selected column (pre-charge OFF
during the operation phase, ON during the bit-line restoration phase) and an
unselected column (pre-charge ON for the whole cycle, sustaining the read
equivalent stress).
"""

from __future__ import annotations

import pytest

from repro.analysis import res_fight_fixture, selected_column_cycle_fixture
from repro.circuit import default_technology


def simulate_both_columns():
    tech = default_technology()
    selected = selected_column_cycle_fixture(tech=tech, rows=512) \
        .simulate(t_stop=tech.clock_period, dt=10e-12, record_every=5)
    unselected = res_fight_fixture(tech=tech, rows=512) \
        .simulate(t_stop=tech.clock_period, dt=10e-12, record_every=5)
    return tech, selected, unselected


@pytest.mark.benchmark(group="figure2")
def test_figure2_precharge_action_selected_vs_unselected(benchmark, once):
    tech, selected, unselected = once(benchmark, simulate_both_columns)
    half = tech.clock_period / 2
    sel_bl = selected.waveform("BL")
    unsel_bl = unselected.waveform("BL")
    print()
    print("Figure 2a/2b — selected column bit line over one cycle "
          "(operation phase then restoration phase):")
    print(sel_bl.render_ascii(width=66, height=10))
    print(f"  BL at mid-cycle (end of operation phase): {sel_bl.value_at(half):.3f} V")
    print(f"  BL at end of cycle (after restoration):   {sel_bl.final_value():.3f} V")
    print()
    print("Figure 2c/2d — unselected column bit line (pre-charge ON, RES sustained):")
    print(unsel_bl.render_ascii(width=66, height=10))
    res_energy = unselected.source_energy_for("vdd_precharge")
    print(f"  pre-charge supply energy over the cycle (P_A): {res_energy * 1e15:.2f} fJ")

    # Figure-2 shape: the selected column droops then recovers; the
    # unselected column is held near VDD the whole time while drawing P_A.
    assert sel_bl.value_at(half) < 0.9 * tech.vdd
    assert sel_bl.final_value() > 0.95 * tech.vdd
    assert unsel_bl.minimum() > 0.95 * tech.vdd
    assert res_energy > 0.0
