"""Experiment ``sources_breakdown`` — Section 5's power-source analysis.

Runs March C- in functional mode and in the low-power test mode and reports
the per-source energy breakdown (the five sources the paper enumerates plus
the bookkeeping ones), checking the claims the analysis rests on:

* the pre-charge activity of the unselected columns is the dominant
  functional-mode term (pre-charge activity is 70-80 % of SRAM power per
  the paper's reference [8]);
* cell-side RES energy is three orders of magnitude below the pre-charge
  RES energy;
* the LPtest driver and the added control logic are negligible.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_percent, reduced_row_equivalent, render_table
from repro.core import TestSession
from repro.march import MARCH_CM
from repro.power import PowerSource
from repro.sram import OperatingMode
from repro.sram.geometry import PAPER_GEOMETRY


def run_breakdown():
    equivalent = reduced_row_equivalent(PAPER_GEOMETRY, rows=8)
    session = TestSession(equivalent.reduced, tech=equivalent.tech, detailed=False)
    functional = session.run(MARCH_CM, OperatingMode.FUNCTIONAL)
    low_power = session.run(MARCH_CM, OperatingMode.LOW_POWER_TEST)
    return functional, low_power


@pytest.mark.benchmark(group="sources")
def test_section5_power_source_breakdown(benchmark, once):
    functional, low_power = once(benchmark, run_breakdown)
    rows = []
    for source in PowerSource:
        rows.append({
            "Power source": source.value,
            "paper §5 index": source.paper_source_index if source.paper_source_index else "-",
            "functional": format_percent(functional.source_fraction(source)),
            "low-power test": format_percent(low_power.source_fraction(source)),
        })
    print()
    print(render_table(rows, title="March C- energy breakdown by source "
                                   "(share of each mode's total energy)"))
    print(f"functional average power: {functional.average_power * 1e3:.3f} mW; "
          f"low-power test mode: {low_power.average_power * 1e3:.3f} mW")

    # Claim checks.
    unselected = functional.source_fraction(PowerSource.PRECHARGE_UNSELECTED)
    assert unselected > 0.35, "unselected-column pre-charge must dominate functional test power"
    cell = functional.energy_by_source[PowerSource.CELL_RES]
    precharge = functional.energy_by_source[PowerSource.PRECHARGE_UNSELECTED]
    assert precharge / cell == pytest.approx(1000.0, rel=0.05)
    assert low_power.source_fraction(PowerSource.LPTEST_DRIVER) < 0.01
    assert low_power.source_fraction(PowerSource.CONTROL_LOGIC) < 0.01
    assert low_power.average_power < functional.average_power
