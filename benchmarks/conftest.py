"""Shared helpers for the benchmark harness + the perf trajectory log.

Every benchmark regenerates one table or figure of the paper (or one claim
of its Section 5 analysis) and prints the corresponding rows/series next to
the paper's reported values, so that running

    pytest benchmarks/ --benchmark-only -s

produces a self-contained experimental report.  Timing is measured with
pytest-benchmark (single round — these are experiments, not micro-benchmarks).

Machine-readable trajectory
---------------------------
Alongside the human-readable report, the session writes ``BENCH_<id>.json``
(``id`` from ``REPRO_BENCH_ID``, default the current PR series) to the
repository root: one entry per benchmark with its wall clock, plus any
richer entries (case counts, measured speedups, baselines) benchmarks
record through the :func:`bench_record` fixture.  The file carries git
metadata so a checked-in copy *is* the committed perf baseline — CI's
bench job re-measures and fails when the paper-scale grid wall-clock
regresses past the allowed factor (``benchmarks/check_regression.py``).

Environment knobs:

* ``REPRO_BENCH_ID`` — series id in the output filename (default ``9``);
* ``REPRO_BENCH_JSON`` — full override of the output path;
* ``REPRO_BENCH_QUICK`` / ``REPRO_BENCH_FULL`` — workload tiers, honoured
  per benchmark module (entries record the tier they measured).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

import pytest

#: Series id of the perf-trajectory file this session writes.
BENCH_SERIES = os.environ.get("REPRO_BENCH_ID", "9")


def _active_kernel() -> Optional[str]:
    """The kernel tier a measurement ran on, when the engine layer is up.

    Entries that don't name their tier explicitly get the process-wide
    active tier, so ``check_regression.py`` can compare like-for-like
    tiers across trajectories measured with different optional deps.
    """
    try:
        from repro.engine import active_kernel

        return active_kernel()
    except Exception:  # noqa: BLE001 - engine (numpy) may be absent
        return None


def _git_metadata() -> Dict[str, object]:
    """Best-effort commit/branch description of the measured tree."""
    metadata: Dict[str, object] = {}
    for key, command in (
            ("commit", ["git", "rev-parse", "HEAD"]),
            ("branch", ["git", "rev-parse", "--abbrev-ref", "HEAD"]),
            ("describe", ["git", "describe", "--always", "--dirty"])):
        try:
            metadata[key] = subprocess.run(
                command, capture_output=True, text=True, timeout=10,
                cwd=Path(__file__).parent, check=True).stdout.strip()
        except Exception:  # noqa: BLE001 - metadata only, never fatal
            continue
    return metadata


class BenchTrajectory:
    """Collects one session's benchmark entries and writes the JSON log."""

    def __init__(self) -> None:
        self.entries: List[Dict[str, object]] = []
        #: total record() calls this session (replacements included) —
        #: lets the autouse fixture detect explicit in-test recording.
        self.record_count = 0

    def record(self, workload: str, wall_clock_s: float,
               cases: Optional[int] = None,
               baseline_s: Optional[float] = None,
               speedup: Optional[float] = None,
               **extra: object) -> None:
        """Append one measurement; richer fields are free-form but the
        regression gate understands ``wall_clock_s`` / ``baseline_s``."""
        entry: Dict[str, object] = {
            "workload": workload,
            "wall_clock_s": round(float(wall_clock_s), 6),
        }
        if cases is not None:
            entry["cases"] = int(cases)
        if baseline_s is not None:
            entry["baseline_s"] = round(float(baseline_s), 6)
        if speedup is not None:
            entry["speedup"] = round(float(speedup), 3)
        entry.update(extra)
        if entry.get("kernel") is None:
            active = _active_kernel()
            if active is not None:
                entry["kernel"] = active
        # Last write wins per workload (a bench may refine its entry).
        self.entries = [existing for existing in self.entries
                        if existing["workload"] != workload]
        self.entries.append(entry)
        self.record_count += 1

    # ------------------------------------------------------------------
    def output_path(self, rootdir: Path) -> Path:
        override = os.environ.get("REPRO_BENCH_JSON")
        if override:
            return Path(override)
        return rootdir / f"BENCH_{BENCH_SERIES}.json"

    def write(self, rootdir: Path) -> Optional[Path]:
        if not self.entries:
            return None
        path = self.output_path(rootdir)
        # Merge with an existing trajectory: workloads not re-measured
        # this session (e.g. the full paper-scale tier while running the
        # quick tier) keep their recorded entry, so the file accumulates
        # the union of tiers instead of flip-flopping per invocation.
        merged: Dict[str, Dict[str, object]] = {}
        if path.exists():
            try:
                previous = json.loads(path.read_text(encoding="utf-8"))
                if previous.get("format") == "repro-bench":
                    merged = {entry["workload"]: entry
                              for entry in previous.get("entries", [])}
            except (json.JSONDecodeError, KeyError, TypeError):
                merged = {}
        for entry in self.entries:
            merged[str(entry["workload"])] = entry
        payload = {
            "format": "repro-bench",
            "version": 1,
            "series": BENCH_SERIES,
            "generated_unix": round(time.time(), 3),
            "quick_tier": bool(os.environ.get("REPRO_BENCH_QUICK")),
            "git": _git_metadata(),
            "entries": sorted(merged.values(),
                              key=lambda entry: entry["workload"]),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
        return path


_TRAJECTORY = BenchTrajectory()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once


@pytest.fixture
def bench_record():
    """Record a named workload measurement into ``BENCH_<id>.json``."""
    return _TRAJECTORY.record


@pytest.fixture(autouse=True)
def _auto_record(request):
    """Log every benchmark test's wall clock into the trajectory.

    Explicit :func:`bench_record` entries (richer: baselines, speedups)
    take precedence — a test that recorded anything itself gets no
    duplicate nodeid-named entry; this fallback only guarantees the
    per-workload wall-clock series exists for benchmarks that don't.
    """
    recorded_before = _TRAJECTORY.record_count
    yield
    if _TRAJECTORY.record_count != recorded_before:
        return  # the test recorded its own (richer) entry
    benchmark = request.node.funcargs.get("benchmark") \
        if hasattr(request.node, "funcargs") else None
    if benchmark is None:
        return
    try:
        mean = benchmark.stats.stats.mean
    except AttributeError:
        return
    _TRAJECTORY.record(request.node.nodeid.split("::", 1)[-1],
                       wall_clock_s=mean)


def pytest_sessionfinish(session, exitstatus):
    """Write the session's perf trajectory next to the repository root."""
    rootdir = Path(str(session.config.rootpath))
    path = _TRAJECTORY.write(rootdir)
    if path is not None:
        print(f"\n[bench] perf trajectory written to {path}")
