"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one claim
of its Section 5 analysis) and prints the corresponding rows/series next to
the paper's reported values, so that running

    pytest benchmarks/ --benchmark-only -s

produces a self-contained experimental report.  Timing is measured with
pytest-benchmark (single round — these are experiments, not micro-benchmarks).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
