"""Experiment ``power_campaign`` — vectorized BIST power campaign wall clock.

Two claims are measured:

* the vectorized power-campaign engine beats the cycle-accurate
  behavioural walk by at least an order of magnitude on a BIST
  functional-vs-low-power comparison, with equivalent energy totals and
  identical verdicts — the speedup that turns the measured Table 1 from a
  batch job into an interactive query;
* the full measured 512 x 512 Table 1 (all five paper algorithms, both
  modes, through the BIST deployment path) completes in seconds, lands
  inside the analytical PRR bracket, and runs on the vectorized backend.

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — smaller row count for smoke jobs;
* ``REPRO_BENCH_FULL=1``  — run the reference walk on the literal
  512 x 512 array (minutes of wall clock; the assertion is unchanged).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import prr_table, render_table
from repro.bist import BistController
from repro.march import MARCH_CM
from repro.sram import ArrayGeometry
from repro.sram.geometry import PAPER_GEOMETRY
from repro.sweep import paper_prr_cases, run_prr_case

MINIMUM_SPEEDUP = 10.0
PAPER_TABLE1_BUDGET_S = 10.0


def _benchmark_geometry() -> ArrayGeometry:
    if os.environ.get("REPRO_BENCH_FULL"):
        return PAPER_GEOMETRY
    rows = 8 if os.environ.get("REPRO_BENCH_QUICK") else 32
    return ArrayGeometry(rows=rows, columns=PAPER_GEOMETRY.columns)


def measure_campaign_speedup():
    geometry = _benchmark_geometry()
    timings = {}
    results = {}
    for backend in ("vectorized", "reference"):
        controller = BistController(geometry, backend=backend)
        started = time.perf_counter()
        functional = controller.run(MARCH_CM, low_power=False)
        low_power = controller.run(MARCH_CM, low_power=True)
        timings[backend] = time.perf_counter() - started
        results[backend] = (functional, low_power)
    return geometry, timings, results


@pytest.mark.benchmark(group="power-campaign")
def test_vectorized_power_campaign_speedup(benchmark, once):
    geometry, timings, results = once(benchmark, measure_campaign_speedup)
    speedup = timings["reference"] / timings["vectorized"]
    rows = [{
        "Backend": backend,
        "Wall clock (s)": f"{timings[backend]:.3f}",
        "Cycles simulated": sum(r.cycles for r in results[backend]),
        "PRR measured": f"{100 * (1 - results[backend][1].average_power / results[backend][0].average_power):.2f} %",
    } for backend in ("reference", "vectorized")]
    print()
    print(render_table(
        rows,
        title=f"BIST compare_modes(March C-) on {geometry.describe()} — "
              f"vectorized speedup {speedup:.0f}x"))
    # Both backends measure the same physics and reach the same verdicts...
    for reference, vectorized in zip(*(results[b] for b in
                                       ("reference", "vectorized"))):
        assert vectorized.passed == reference.passed
        assert vectorized.cycles == reference.cycles
        assert vectorized.total_energy == pytest.approx(
            reference.total_energy, rel=1e-9)
    # ...but the campaign engine must be at least an order of magnitude
    # faster (in practice it is two to three).
    assert speedup >= MINIMUM_SPEEDUP, (
        f"vectorized power campaign only {speedup:.1f}x faster than reference")


@pytest.mark.benchmark(group="power-campaign")
def test_paper_table1_through_bist_in_seconds(benchmark, once):
    """The acceptance workload: the full measured Table 1 as a BIST campaign."""
    started = time.perf_counter()
    records = once(benchmark, lambda: [run_prr_case(case)
                                       for case in paper_prr_cases()])
    elapsed = time.perf_counter() - started
    print()
    print(prr_table(
        records,
        title=f"Measured Table 1 through the BIST path on the full "
              f"512x512 array ({elapsed:.2f} s)"))
    assert len(records) == 5
    for record in records:
        assert record.passed, record.algorithm
        assert record.within_bracket, record.algorithm
        assert record.backend_used == "vectorized", record.algorithm
    assert elapsed < PAPER_TABLE1_BUDGET_S, (
        f"paper-scale Table 1 took {elapsed:.1f} s (budget "
        f"{PAPER_TABLE1_BUDGET_S:.0f} s)")
