"""Experiment ``fig4_activation_map`` — the paper's Figure 4 (and Figure 8).

Sweeps the selected column and records which pre-charge circuits the
modified control logic keeps active: in the low-power test mode only the
selected column (during its restoration phase) and the column that
immediately follows it are ever pre-charged; in functional mode every
column is.
"""

from __future__ import annotations

import pytest

from repro.core import ModifiedPrechargeController


COLUMNS = 16


def build_activation_maps():
    controller = ModifiedPrechargeController(columns=COLUMNS)
    low_power = controller.activation_map(lptest=True)
    controller.reset()
    functional = controller.activation_map(lptest=False)
    return controller, low_power, functional


def render_map(table):
    lines = ["   selected ->  " + "".join(f"{c % 10}" for c in range(COLUMNS))]
    for selected, row in enumerate(table):
        cells = "".join("#" if on else "." for on in row)
        lines.append(f"   col {selected:3d} sel   {cells}")
    return "\n".join(lines)


@pytest.mark.benchmark(group="figure4")
def test_figure4_precharge_activation_map(benchmark, once):
    controller, low_power, functional = once(benchmark, build_activation_maps)
    print()
    print("Figure 4 — pre-charge activation in low-power test mode "
          "(rows: selected column; '#' = pre-charge ON during the operation phase):")
    print(render_map(low_power))
    print()
    print("Functional mode for contrast (every unselected column pre-charged):")
    print(render_map(functional))
    print()
    print(f"Added control logic: {controller.transistors_per_column()} transistors "
          f"per column, {controller.total_transistors()} for {COLUMNS} columns; "
          f"extra delay on the Pr_j path: {controller.added_delay_on_pr_path() * 1e12:.0f} ps")

    active_counts_lpt = [sum(row) for row in low_power]
    active_counts_fn = [sum(row) for row in functional]
    # Low-power mode: at most one other column pre-charged per cycle (none
    # when the last column is selected); functional: all but the selected one.
    assert all(count <= 1 for count in active_counts_lpt)
    assert active_counts_lpt[-1] == 0
    assert all(count == COLUMNS - 1 for count in active_counts_fn)
    for selected in range(COLUMNS - 1):
        assert low_power[selected][selected + 1] is True
