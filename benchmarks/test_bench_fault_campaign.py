"""Experiment ``fault_campaign`` — vectorized campaign engine wall clock.

Two claims are measured:

* the vectorized fault-campaign engine beats the (trace-sharing) reference
  simulator by at least an order of magnitude on the standard single-cell
  + coupling battery, with bit-identical per-fault verdicts — the speedup
  that makes full-geometry DOF-1 campaigns routine;
* the paper's Section 3 premise holds *at paper scale*: the full 512 x 512
  array's fault battery is detected identically under the word-line order,
  the fast-row order and a pseudo-random permutation, in seconds.

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — smaller geometries for smoke jobs (the
  invariance campaign drops to 64 x 64);
* ``REPRO_BENCH_FULL=1``  — run the reference engine of the speedup
  comparison on a larger array (more Python minutes, same assertion).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import render_table
from repro.faults import FaultSimulator, build_fault_list
from repro.march import MARCH_CM
from repro.march.ordering import RowMajorOrder
from repro.sram import ArrayGeometry
from repro.sweep import CoverageCase, run_coverage_case

MINIMUM_SPEEDUP = 10.0


def _speedup_geometry() -> ArrayGeometry:
    if os.environ.get("REPRO_BENCH_FULL"):
        return ArrayGeometry(rows=64, columns=64)
    size = 16 if os.environ.get("REPRO_BENCH_QUICK") else 32
    return ArrayGeometry(rows=size, columns=size)


def measure_campaign_speedup():
    geometry = _speedup_geometry()
    battery = build_fault_list(geometry)
    order = RowMajorOrder(geometry)
    timings = {}
    results = {}
    for backend in ("vectorized", "reference"):
        simulator = FaultSimulator(geometry, backend=backend)
        simulator.trace_for(MARCH_CM, order)  # trace compilation off the clock
        started = time.perf_counter()
        results[backend] = simulator.simulate_many(MARCH_CM, order, battery)
        timings[backend] = time.perf_counter() - started
    return geometry, battery, timings, results


@pytest.mark.benchmark(group="fault-campaign")
def test_vectorized_campaign_speedup(benchmark, once):
    geometry, battery, timings, results = once(benchmark, measure_campaign_speedup)
    speedup = timings["reference"] / timings["vectorized"]
    rows = [{
        "Backend": backend,
        "Wall clock (s)": f"{timings[backend]:.3f}",
        "Faults simulated": len(battery),
        "Detected": sum(r.detected for r in results[backend]),
    } for backend in ("reference", "vectorized")]
    print()
    print(render_table(
        rows,
        title=f"March C- campaign ({len(battery)} faults) on "
              f"{geometry.describe()} — vectorized speedup {speedup:.0f}x"))
    # Both backends reach the same verdicts, fault for fault...
    for lhs, rhs in zip(results["reference"], results["vectorized"]):
        assert (lhs.detected, lhs.first_detection_step, lhs.mismatches) == \
            (rhs.detected, rhs.first_detection_step, rhs.mismatches), \
            lhs.injection.describe()
    # ...but the campaign engine must be at least an order of magnitude
    # faster (in practice it is two to three).
    assert speedup >= MINIMUM_SPEEDUP, (
        f"vectorized campaign only {speedup:.1f}x faster than reference")


def _invariance_size() -> int:
    return 64 if os.environ.get("REPRO_BENCH_QUICK") else 512


@pytest.mark.benchmark(group="fault-campaign")
def test_paper_scale_dof1_invariance(benchmark, once):
    """Section 3 at paper scale: detection identical across address orders."""
    size = _invariance_size()
    case = CoverageCase(rows=size, columns=size, algorithm="March C-",
                        backend="vectorized")
    record = once(benchmark, lambda: run_coverage_case(case))
    print()
    print(render_table(
        [record.table_row()],
        title=f"DOF-1 invariance campaign on the {size}x{size} array "
              f"({record.elapsed_s:.2f} s, {record.backend_used})"))
    assert record.backend_used == "vectorized"
    assert record.invariant, f"{record.disagreements} disagreements"
    # March C- must cover the classical battery essentially completely.
    assert record.coverage > 0.85
    # "In seconds": the paper-scale campaign is interactive, not a batch job.
    assert record.elapsed_s < 60.0
