"""Experiment ``engine_speedup`` — vectorized vs. reference wall clock.

Times ``compare_modes(March C-)`` on the same full-width geometry with both
execution backends and asserts the vectorized engine wins by at least an
order of magnitude — the speedup that makes the paper-scale 512 x 512
measured experiments (see ``test_bench_table1_paper_scale.py``) tractable.

The reference measurement uses the full 512-column width (the quantity the
per-cycle physics depends on) and a reduced row count so the benchmark
stays friendly to CI; the per-access cost of the reference engine does not
depend on the row count, so the measured speedup is a *lower bound* for the
full array.  Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — smaller row count for smoke jobs;
* ``REPRO_BENCH_FULL=1``  — run the reference engine on the literal
  512 x 512 array (minutes of wall clock; the assertion is unchanged).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import render_table
from repro.core import TestSession
from repro.march import MARCH_CM
from repro.sram import ArrayGeometry
from repro.sram.geometry import PAPER_GEOMETRY

MINIMUM_SPEEDUP = 10.0


def _benchmark_geometry() -> ArrayGeometry:
    if os.environ.get("REPRO_BENCH_FULL"):
        return PAPER_GEOMETRY
    rows = 8 if os.environ.get("REPRO_BENCH_QUICK") else 32
    return ArrayGeometry(rows=rows, columns=PAPER_GEOMETRY.columns)


def measure_speedup():
    geometry = _benchmark_geometry()
    timings = {}
    results = {}
    for backend in ("vectorized", "reference"):
        session = TestSession(geometry, detailed=False, backend=backend)
        started = time.perf_counter()
        results[backend] = session.compare_modes(MARCH_CM)
        timings[backend] = time.perf_counter() - started
    return geometry, timings, results


@pytest.mark.benchmark(group="engine")
def test_vectorized_backend_speedup(benchmark, once):
    geometry, timings, results = once(benchmark, measure_speedup)
    speedup = timings["reference"] / timings["vectorized"]
    rows = [{
        "Backend": backend,
        "Wall clock (s)": f"{timings[backend]:.3f}",
        "Cycles simulated": 2 * results[backend].functional.cycles,
        "PRR measured": f"{100 * results[backend].prr:.2f} %",
    } for backend in ("reference", "vectorized")]
    print()
    print(render_table(
        rows,
        title=f"compare_modes(March C-) on {geometry.describe()} — "
              f"vectorized speedup {speedup:.0f}x"))
    # Both backends measure the same physics...
    assert results["vectorized"].prr == pytest.approx(
        results["reference"].prr, rel=1e-9)
    # ...but the vectorized engine must be at least an order of magnitude
    # faster (in practice it is two to three).
    assert speedup >= MINIMUM_SPEEDUP, (
        f"vectorized backend only {speedup:.1f}x faster than reference")
