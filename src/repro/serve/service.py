"""The campaign service: asyncio HTTP front, worker-pool execution back.

``CampaignService`` accepts campaign requests — the same flat case
dictionaries the sweep layer serialises (power/Table-1, coverage, PRR;
see :func:`repro.sweep.runner.case_from_dict`) — over a thin JSON/HTTP
protocol and answers each one through three tiers:

1. **cache hit** — the request's :func:`~repro.sweep.runner
   .fingerprint_digest` addresses a stored record in the
   :class:`~repro.serve.cache.ResultCache`; stream it back without
   touching an engine;
2. **coalesced** — an identical-digest request is already executing;
   await its shared future instead of spawning duplicate work;
3. **miss** — park the request in the dispatch backlog; after a short
   coalescing window every distinct parked scenario executes as **one**
   :class:`~repro.engine.grid.BatchedGridEngine` wave on a pool thread
   (the grid engine stacks same-geometry cases into single kernel
   passes), and the stored entries resolve every waiter.

Every request is appended to the replayable JSONL workload trace
(:class:`~repro.serve.trace.WorkloadTrace`) with its outcome and
latency, which is both the service's observability story and the input
format of the trace-driven load benchmark.

The protocol (all bodies JSON):

* ``POST /v1/run`` with ``{"case": {...}}`` →
  ``{"kind": ..., "record": {...}, "served": {"digest", "outcome",
  "latency_ms"}}``; malformed cases get 400, execution failures 500;
* ``GET /v1/stats`` → request/hit/miss/coalesce/engine-pass counters;
* ``GET /healthz`` → ``{"status": "ok"}``.

Everything here is stdlib: ``asyncio`` for the front,
``concurrent.futures.ThreadPoolExecutor`` for the engine work (NumPy
kernels release the GIL, so pool threads genuinely overlap), and a
hand-rolled HTTP/1.1 exchange (keep-alive, Content-Length framing) small
enough to audit.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..sweep.runner import (
    SweepError,
    _WorkerState,
    case_fingerprint,
    case_from_dict,
    case_kind,
    execute_case,
    fingerprint_digest,
)
from ..sweep import runner as sweep_runner
from .cache import ResultCache
from .trace import WorkloadTrace


class ServeError(Exception):
    """Raised on serving-layer failures (protocol, execution, client)."""


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}

#: Default TCP port (spells "SRV" on a phone keypad, near enough).
DEFAULT_PORT = 8077


class _Pending:
    """One distinct in-flight scenario and the future its waiters share."""

    __slots__ = ("digest", "kind", "fingerprint", "case", "future")

    def __init__(self, digest: str, kind: str,
                 fingerprint: Dict[str, object], case: object,
                 future: asyncio.Future) -> None:
        self.digest = digest
        self.kind = kind
        self.fingerprint = fingerprint
        self.case = case
        self.future = future


class CampaignService:
    """Long-running campaign server: cache, coalesce, execute, trace.

    ``coalesce_window`` is how long (seconds) the dispatcher lets
    cache-miss requests pool before launching an engine wave: long
    enough for a client burst to land in one stacked pass, short enough
    to be invisible next to engine work.  ``workers`` bounds the
    executor pool (default: ``min(4, cpu)``); each pool thread keeps a
    persistent pre-warmed :class:`~repro.sweep.runner._WorkerState`, so
    compiled traces and facades stay warm across waves.
    """

    def __init__(self, cache_dir: Union[str, Path],
                 trace_path: Optional[Union[str, Path]] = None,
                 trace_fsync: bool = False,
                 workers: Optional[int] = None,
                 coalesce_window: float = 0.005,
                 cache_max_entries: Optional[int] = None,
                 cache_max_bytes: Optional[int] = None) -> None:
        self.cache = ResultCache(cache_dir,
                                 max_entries=cache_max_entries,
                                 max_bytes=cache_max_bytes)
        self.trace = WorkloadTrace(trace_path, fsync=trace_fsync) \
            if trace_path is not None else None
        self.workers = workers if workers is not None \
            else min(4, os.cpu_count() or 1)
        self.coalesce_window = coalesce_window
        self.stats: Dict[str, int] = {
            "requests": 0, "hits": 0, "misses": 0, "coalesced": 0,
            "errors": 0, "engine_passes": 0, "executed_cases": 0,
        }
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._waves: set = set()
        self._connections: set = set()
        self._pending: Dict[str, _Pending] = {}
        self._backlog: List[_Pending] = []
        self._wake: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()
        # One persistent worker state per executor thread: the engine
        # caches (compiled traces, facades) survive across waves.
        self._thread_state = threading.local()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = DEFAULT_PORT) -> "CampaignService":
        """Bind and start serving.  ``port=0`` picks a free port (read it
        back from :attr:`port`)."""
        if self._server is not None:
            raise ServeError("service already started")
        self._wake = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve")
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.monotonic()
        return self

    async def stop(self) -> None:
        """Stop accepting, finish in-flight waves, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._waves:
            await asyncio.gather(*self._waves, return_exceptions=True)
        # Idle keep-alive connections would otherwise pin their handler
        # tasks (and log cancellation noise at loop teardown).
        for connection in list(self._connections):
            connection.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.trace is not None:
            self.trace.close()

    # ------------------------------------------------------------------
    # HTTP front
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = \
                        request_line.decode("latin-1").split()
                except ValueError:
                    await self._respond(writer, 400,
                                        {"error": "malformed request line"},
                                        keep_alive=False)
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(method, target, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload,
                                    keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # service stopping: drop the idle connection quietly
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, object], keep_alive: bool) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n")
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    async def _route(self, method: str, target: str, body: bytes
                     ) -> Tuple[int, Dict[str, object]]:
        target = target.split("?", 1)[0]
        if target == "/v1/run":
            if method != "POST":
                return 405, {"error": "POST only"}
            try:
                request = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"request body is not JSON: {exc}"}
            if not isinstance(request, dict) or \
                    not isinstance(request.get("case"), dict):
                return 400, {"error": 'expected a JSON object {"case": {...}}'}
            return await self._submit(request["case"])
        if target == "/v1/stats":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, self.stats_snapshot()
        if target == "/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, {"status": "ok"}
        return 404, {"error": f"unknown path {target!r}"}

    def stats_snapshot(self) -> Dict[str, object]:
        """The service counters plus derived identity/uptime fields."""
        snapshot: Dict[str, object] = dict(self.stats)
        snapshot["pending"] = len(self._pending)
        snapshot["workers"] = self.workers
        snapshot["uptime_s"] = round(time.monotonic() - self._started_at, 3)
        snapshot["cache"] = self.cache.stats()
        return snapshot

    # ------------------------------------------------------------------
    # Request flow: hit / coalesced / miss
    # ------------------------------------------------------------------
    async def _submit(self, case_data: Dict[str, object]
                      ) -> Tuple[int, Dict[str, object]]:
        arrived = time.monotonic()
        arrival_s = arrived - self._started_at
        try:
            case = case_from_dict(case_data)
        except (SweepError, ValueError, TypeError) as exc:
            self.stats["requests"] += 1
            self.stats["errors"] += 1
            return 400, {"error": str(exc)}
        fingerprint = case_fingerprint(case)
        digest = fingerprint_digest(fingerprint)
        kind = case_kind(case)
        self.stats["requests"] += 1

        def answer(entry: Dict[str, object], outcome: str
                   ) -> Tuple[int, Dict[str, object]]:
            latency_ms = (time.monotonic() - arrived) * 1e3
            self._trace_request(digest, kind, fingerprint, outcome,
                                latency_ms, arrival_s)
            return 200, {
                "kind": entry.get("kind", kind),
                "record": entry["record"],
                "served": {"digest": digest, "outcome": outcome,
                           "latency_ms": round(latency_ms, 3)},
            }

        entry = self.cache.get(digest)
        if entry is not None:
            self.stats["hits"] += 1
            return answer(entry, "hit")

        pending = self._pending.get(digest)
        if pending is not None:
            self.stats["coalesced"] += 1
            outcome = "coalesced"
        else:
            loop = asyncio.get_running_loop()
            pending = _Pending(digest, kind, fingerprint, case,
                               loop.create_future())
            self._pending[digest] = pending
            self._backlog.append(pending)
            self._wake.set()
            self.stats["misses"] += 1
            outcome = "miss"
        try:
            # shield: a disconnected client must not cancel the shared
            # future other waiters (and the cache store) depend on.
            entry = await asyncio.shield(pending.future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats["errors"] += 1
            latency_ms = (time.monotonic() - arrived) * 1e3
            self._trace_request(digest, kind, fingerprint, "error",
                                latency_ms, arrival_s)
            return 500, {"error": str(exc),
                         "served": {"digest": digest, "outcome": "error"}}
        return answer(entry, outcome)

    def _trace_request(self, digest: str, kind: str,
                       fingerprint: Dict[str, object],
                       outcome: str, latency_ms: float,
                       arrival_s: float) -> None:
        if self.trace is not None:
            self.trace.record(digest, kind, fingerprint, outcome,
                              latency_ms, arrival_s=arrival_s)

    # ------------------------------------------------------------------
    # Dispatch: backlog -> coalesced engine waves
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.coalesce_window > 0:
                # Let a request burst pool up so one wave stacks it all.
                await asyncio.sleep(self.coalesce_window)
            batch, self._backlog = self._backlog, []
            if not batch:
                continue
            wave = asyncio.ensure_future(self._execute_wave(batch))
            self._waves.add(wave)
            wave.add_done_callback(self._waves.discard)

    async def _execute_wave(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.stats["engine_passes"] += 1
        self.stats["executed_cases"] += len(batch)
        try:
            outcomes = await loop.run_in_executor(
                self._executor, self._run_batch, batch)
        except Exception as exc:  # the batch runner itself failed
            outcomes = [exc] * len(batch)
        for pending, outcome in zip(batch, outcomes):
            self._pending.pop(pending.digest, None)
            if pending.future.done():  # stop() raced us; nothing to do
                continue
            if isinstance(outcome, Exception):
                pending.future.set_exception(
                    ServeError(f"case execution failed: {outcome}"))
            else:
                pending.future.set_result(outcome)

    def _thread_worker_state(self) -> _WorkerState:
        state = getattr(self._thread_state, "state", None)
        if state is None:
            state = _WorkerState()
            self._thread_state.state = state
        return state

    def _run_batch(self, batch: List[_Pending]) -> List[object]:
        """Execute one wave on a pool thread: stacked first, per-case rescue.

        Returns, per pending, either the stored cache entry dictionary or
        the exception that case raised.  Runs under the thread's
        persistent worker state so compiled traces survive across waves.
        """
        state = self._thread_worker_state()
        cases = [pending.case for pending in batch]
        records: List[object] = [None] * len(batch)
        try:
            from ..engine.grid import BatchedGridEngine

            engine = BatchedGridEngine(cases, worker_state=state)
            for position, record in engine.completions():
                records[position] = record
        except Exception:
            # The stacked pass died mid-wave (one poisoned case must not
            # starve its neighbours): rescue the unanswered cases one at
            # a time, capturing failures per case.
            previous = sweep_runner._get_worker_state()
            sweep_runner._set_worker_state(state)
            try:
                for index, case in enumerate(cases):
                    if records[index] is not None:
                        continue
                    try:
                        records[index] = execute_case(case)
                    except Exception as exc:  # noqa: BLE001 - per-case verdict
                        records[index] = exc
            finally:
                sweep_runner._set_worker_state(previous)
        outcomes: List[object] = []
        for pending, record in zip(batch, records):
            if isinstance(record, Exception) or record is None:
                outcomes.append(record if isinstance(record, Exception)
                                else ServeError("case produced no record"))
                continue
            entry = self.cache.store(pending.digest, pending.fingerprint,
                                     pending.kind, record.as_dict())
            outcomes.append(entry)
        return outcomes


# ----------------------------------------------------------------------
# Synchronous harness (tests, benchmarks, CLI embedding)
# ----------------------------------------------------------------------
class ServiceThread:
    """Run a :class:`CampaignService` on a background event-loop thread.

    The synchronous seam tests and benchmarks drive: ``start()`` blocks
    until the socket is bound and returns ``(host, port)``; ``stop()``
    shuts the service down and joins the thread.
    """

    def __init__(self, service: CampaignService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-loop", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.service.host, self.service.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start(self._host, self._port)
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        self._thread = None


@contextmanager
def running_service(cache_dir: Union[str, Path],
                    trace_path: Optional[Union[str, Path]] = None,
                    host: str = "127.0.0.1", port: int = 0,
                    **service_kwargs):
    """Context manager: a live service on a free port.

    Yields ``(service, host, port)``; the service is stopped (waves
    drained, trace closed) on exit.
    """
    service = CampaignService(cache_dir, trace_path=trace_path,
                              **service_kwargs)
    thread = ServiceThread(service, host=host, port=port)
    bound_host, bound_port = thread.start()
    try:
        yield service, bound_host, bound_port
    finally:
        thread.stop()
