"""Campaign serving layer: cache, coalesce, execute, trace.

* :mod:`repro.serve.service` — :class:`CampaignService`, the asyncio
  HTTP front with the worker-pool executor, request coalescing and the
  content-addressed result cache;
* :mod:`repro.serve.cache` — :class:`ResultCache`, the digest-addressed
  on-disk record store;
* :mod:`repro.serve.trace` — the replayable JSONL workload trace;
* :mod:`repro.serve.client` — :class:`ServeClient` and the ordered
  concurrent :func:`~repro.serve.client.replay` helper;
* :mod:`repro.serve.__main__` — the ``python -m repro.serve`` command.

Quickstart::

    from repro.serve import CampaignService, ServeClient, running_service

    with running_service("cache-dir", trace_path="trace.jsonl") \\
            as (service, host, port):
        with ServeClient(host, port) as client:
            first = client.submit({"kind": "prr", "rows": 16,
                                   "columns": 64, "algorithm": "MATS+"})
            again = client.submit({"kind": "prr", "rows": 16,
                                   "columns": 64, "algorithm": "MATS+"})
    assert again["served"]["outcome"] == "hit"
"""

from .cache import CACHE_FORMAT, CACHE_VERSION, ResultCache
from .client import ServeClient, replay
from .service import (
    CampaignService,
    DEFAULT_PORT,
    ServeError,
    ServiceThread,
    running_service,
)
from .trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceError,
    WorkloadTrace,
    load_trace,
    replay_cases,
)

__all__ = [
    "CACHE_FORMAT",
    "CACHE_VERSION",
    "CampaignService",
    "DEFAULT_PORT",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "ServiceThread",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceError",
    "WorkloadTrace",
    "load_trace",
    "replay",
    "replay_cases",
    "running_service",
]
