"""Content-addressed on-disk result cache for served campaign requests.

Every campaign request is keyed by the sha256 digest of its canonical
case fingerprint (:func:`repro.sweep.runner.fingerprint_digest`): two
requests describing the same scenario — whatever client serialised them,
in whatever key order — address the same cache entry.  A hit streams the
stored record back without touching an engine; a miss executes and then
stores, so the cache grows monotonically with the distinct-scenario
workload.

Entries are one JSON document per digest, fanned out over 256
two-hex-character subdirectories (``<root>/ab/abcdef....json``) so a
million-entry cache never puts a million files in one directory.  Writes
are atomic (:func:`repro.durable.atomic_write_text` — temp file in the
same directory, fsync, ``os.replace``, enforced by lint rule RPR003) and
reads are defensive: a torn, foreign or unreadable entry is simply a
cache miss — the scenario re-executes and the entry is rewritten — never
an error surfaced to a client.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from ..durable import atomic_write_text

#: The ``format`` tag every cache entry carries.
CACHE_FORMAT = "repro-serve-cache"
#: The entry schema version this module writes.
CACHE_VERSION = 1


class ResultCache:
    """Digest-addressed store of completed campaign records.

    ``root`` is created on first store; a missing root is an empty cache.
    The cache holds flat dictionaries (the same ``record.as_dict()`` form
    the journal and the JSON exports carry) — mapping records back to
    their dataclasses is the caller's concern.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        """Where the entry of ``digest`` lives (whether or not it exists)."""
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The stored entry of ``digest``, or ``None`` on any miss.

        A corrupt, torn or foreign file reads as a miss by design: the
        serving layer re-executes the scenario and overwrites the entry,
        which is self-healing — a kill mid-store never poisons the cache.
        """
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            return None  # torn final write: re-execute and rewrite
        if not isinstance(entry, dict) \
                or entry.get("format") != CACHE_FORMAT \
                or entry.get("version") != CACHE_VERSION \
                or not isinstance(entry.get("record"), dict):
            return None
        return entry

    def store(self, digest: str, fingerprint: Dict[str, object],
              kind: str, record: Dict[str, object]) -> Dict[str, object]:
        """Atomically persist one completed scenario under ``digest``.

        The fingerprint is stored next to the record so the cache is
        audit-friendly (an entry names the scenario it answers) and so a
        replayed workload trace can be validated against it.
        """
        entry = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "digest": digest,
            "kind": kind,
            "fingerprint": fingerprint,
            "record": record,
        }
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(entry, sort_keys=True))
        return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries currently on disk (a scan, not a counter)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))
