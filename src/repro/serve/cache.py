"""Content-addressed on-disk result cache for served campaign requests.

Every campaign request is keyed by the sha256 digest of its canonical
case fingerprint (:func:`repro.sweep.runner.fingerprint_digest`): two
requests describing the same scenario — whatever client serialised them,
in whatever key order — address the same cache entry.  A hit streams the
stored record back without touching an engine; a miss executes and then
stores.

Entries are one JSON document per digest, fanned out over 256
two-hex-character subdirectories (``<root>/ab/abcdef....json``) so a
million-entry cache never puts a million files in one directory.  Writes
are atomic (:func:`repro.durable.atomic_write_text` — temp file in the
same directory, fsync, ``os.replace``, enforced by lint rule RPR003) and
reads are defensive: a torn, foreign or unreadable entry is simply a
cache miss — the scenario re-executes and the entry is rewritten — never
an error surfaced to a client.

The cache is unbounded by default (it grows monotonically with the
distinct-scenario workload); pass ``max_entries`` and/or ``max_bytes``
to cap it with LRU eviction.  Recency is tracked in memory (an ordered
index, hits move to the back) and mirrored to the entries' file mtimes,
so a restarted service rebuilds the same LRU order from the directory
alone.  Eviction is atomic per entry — an unlink of the oldest entry,
never a rewrite — so a concurrent reader of a victim entry sees a
well-formed document or a miss, nothing in between.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from ..durable import atomic_write_text

#: The ``format`` tag every cache entry carries.
CACHE_FORMAT = "repro-serve-cache"
#: The entry schema version this module writes.
CACHE_VERSION = 1


class ResultCache:
    """Digest-addressed store of completed campaign records.

    ``root`` is created on first store; a missing root is an empty cache.
    The cache holds flat dictionaries (the same ``record.as_dict()`` form
    the journal and the JSON exports carry) — mapping records back to
    their dataclasses is the caller's concern.

    ``max_entries`` / ``max_bytes`` cap the cache (``None`` = unbounded):
    whenever a store pushes either total past its cap, least-recently-used
    entries are unlinked until both fit again.  All index bookkeeping is
    lock-guarded — the serving layer stores from concurrent pool threads.
    """

    def __init__(self, root: Union[str, Path],
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(
                f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: entries unlinked by LRU eviction over this instance's lifetime
        self.evictions = 0
        self._lock = threading.Lock()
        # digest -> entry size in bytes, least-recently-used first.
        # Built lazily from the directory (mtime order) when a cap is
        # set; not maintained at all for an unbounded cache.
        self._index: Optional["OrderedDict[str, int]"] = None

    @property
    def bounded(self) -> bool:
        """True when an eviction cap is configured."""
        return self.max_entries is not None or self.max_bytes is not None

    def path_for(self, digest: str) -> Path:
        """Where the entry of ``digest`` lives (whether or not it exists)."""
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # LRU index (only maintained when a cap is set)
    # ------------------------------------------------------------------
    def _ensure_index(self) -> "OrderedDict[str, int]":
        """The recency index, rebuilt from file mtimes on first use."""
        if self._index is None:
            entries = []
            if self.root.exists():
                for path in self.root.glob("??/*.json"):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue  # concurrently evicted
                    entries.append((stat.st_mtime, path.stem, stat.st_size))
            entries.sort()  # oldest mtime first = least recently used
            self._index = OrderedDict(
                (digest, size) for _, digest, size in entries)
        return self._index

    def _touch(self, digest: str) -> None:
        """Record a hit: back of the index, and mirror to the file mtime."""
        if not self.bounded:
            return
        with self._lock:
            index = self._ensure_index()
            if digest in index:
                index.move_to_end(digest)
        try:
            os.utime(self.path_for(digest))
        except OSError:
            pass  # evicted between read and touch: the read still served

    def _account_store(self, digest: str, size: int) -> None:
        """Index a stored entry, then evict LRU victims past the caps."""
        if not self.bounded:
            return
        with self._lock:
            index = self._ensure_index()
            index.pop(digest, None)  # re-store: replace the old size
            index[digest] = size
            while len(index) > 1 and self._over_capacity(index):
                victim, _ = next(iter(index.items()))
                index.pop(victim)
                try:
                    self.path_for(victim).unlink()
                except OSError:
                    pass  # already gone: the accounting removal stands
                self.evictions += 1

    def _over_capacity(self, index: "OrderedDict[str, int]") -> bool:
        if self.max_entries is not None and len(index) > self.max_entries:
            return True
        if self.max_bytes is not None \
                and sum(index.values()) > self.max_bytes:
            return True
        return False

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The stored entry of ``digest``, or ``None`` on any miss.

        A corrupt, torn or foreign file reads as a miss by design: the
        serving layer re-executes the scenario and overwrites the entry,
        which is self-healing — a kill mid-store never poisons the cache.
        """
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            return None  # torn final write: re-execute and rewrite
        if not isinstance(entry, dict) \
                or entry.get("format") != CACHE_FORMAT \
                or entry.get("version") != CACHE_VERSION \
                or not isinstance(entry.get("record"), dict):
            return None
        self._touch(digest)
        return entry

    def store(self, digest: str, fingerprint: Dict[str, object],
              kind: str, record: Dict[str, object]) -> Dict[str, object]:
        """Atomically persist one completed scenario under ``digest``.

        The fingerprint is stored next to the record so the cache is
        audit-friendly (an entry names the scenario it answers) and so a
        replayed workload trace can be validated against it.  On a
        bounded cache the store is what triggers eviction: the new entry
        lands most-recently-used, then LRU victims are unlinked until
        the caps hold again.
        """
        entry = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "digest": digest,
            "kind": kind,
            "fingerprint": fingerprint,
            "record": record,
        }
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(entry, sort_keys=True)
        atomic_write_text(path, payload)
        self._account_store(digest, len(payload.encode("utf-8")))
        return entry

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Occupancy and eviction counters (for ``GET /v1/stats``)."""
        if self.bounded:
            with self._lock:
                index = self._ensure_index()
                entries = len(index)
                size = sum(index.values())
        else:
            entries = len(self)
            size = 0
            if self.root.exists():
                for path in self.root.glob("??/*.json"):
                    try:
                        size += path.stat().st_size
                    except OSError:
                        continue
        return {
            "entries": entries,
            "bytes": size,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        """Number of entries currently on disk (a scan, not a counter)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))
