"""Blocking JSON/HTTP client for the campaign service.

:class:`ServeClient` wraps one keep-alive connection; :func:`replay`
drives a whole case list (for example the cases of a recorded workload
trace, see :func:`repro.serve.trace.replay_cases`) through a thread pool
of clients, preserving input order in the returned responses — the
primitive both the load benchmark and the CI smoke burst are built on.

Usage::

    from repro.serve.client import ServeClient

    with ServeClient("127.0.0.1", 8077) as client:
        response = client.submit({"kind": "prr", "rows": 16, "columns": 64,
                                  "algorithm": "MATS+"})
        print(response["record"]["prr_percent"],
              response["served"]["outcome"])
"""

from __future__ import annotations

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from .service import ServeError


class ServeClient:
    """One keep-alive connection to a campaign service."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # ------------------------------------------------------------------
    def _exchange(self, method: str, path: str,
                  payload: Optional[Dict[str, object]] = None
                  ) -> Dict[str, object]:
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        headers = {"Content-Type": "application/json"} \
            if body is not None else {}
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self._conn.close()  # reconnect lazily on the next exchange
            raise ServeError(
                f"request to {self.host}:{self.port} failed: {exc}") from exc
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"service returned a non-JSON body (status "
                f"{response.status}): {exc}") from exc
        if response.status != 200:
            raise ServeError(
                f"service returned {response.status}: "
                f"{decoded.get('error', decoded)}")
        return decoded

    # ------------------------------------------------------------------
    def submit(self, case: Dict[str, object]) -> Dict[str, object]:
        """Run (or fetch) one campaign case; returns the ``/v1/run`` payload.

        ``case`` is the flat kind-tagged dictionary form
        (:func:`repro.sweep.runner.case_fingerprint` shape); the response
        carries ``kind``, the flat ``record``, and a ``served`` block
        naming the digest, outcome (``hit``/``miss``/``coalesced``) and
        server-side latency.
        """
        return self._exchange("POST", "/v1/run", {"case": case})

    def stats(self) -> Dict[str, object]:
        """The service's live counters (``GET /v1/stats``)."""
        return self._exchange("GET", "/v1/stats")

    def health(self) -> Dict[str, object]:
        """Liveness probe (``GET /healthz``)."""
        return self._exchange("GET", "/healthz")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay(host: str, port: int, cases: Sequence[Dict[str, object]],
           concurrency: int = 8, timeout: float = 60.0
           ) -> List[Dict[str, object]]:
    """Submit ``cases`` through a pool of clients; responses in input order.

    Each pool thread keeps its own keep-alive connection, so a
    1000-request replay opens ``concurrency`` sockets, not 1000.  An
    individual request failure surfaces as the :class:`ServeError` it
    raised (re-raised when the result list is assembled).
    """
    local = threading.local()

    def client() -> ServeClient:
        if getattr(local, "client", None) is None:
            local.client = ServeClient(host, port, timeout=timeout)
        return local.client

    clients: List[ServeClient] = []
    lock = threading.Lock()

    def submit_one(case: Dict[str, object]) -> Dict[str, object]:
        c = client()
        with lock:
            if c not in clients:
                clients.append(c)
        return c.submit(case)

    try:
        with ThreadPoolExecutor(max_workers=concurrency,
                                thread_name_prefix="repro-replay") as pool:
            return list(pool.map(submit_one, cases))
    finally:
        for c in clients:
            c.close()
