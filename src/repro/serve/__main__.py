"""``python -m repro.serve`` — run the campaign service from the shell.

Example::

    python -m repro.serve --port 8077 --cache-dir serve-cache \\
        --trace serve-trace.jsonl --workers 4

The process prints one readiness line (``[serve] listening on ...``) once
the socket is bound — scripts and CI wait for it — then serves until
interrupted (SIGINT/SIGTERM), draining in-flight waves on the way out.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from .service import DEFAULT_PORT, CampaignService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve campaign requests over JSON/HTTP with a "
                    "content-addressed result cache, request coalescing "
                    "and a replayable workload trace.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port; 0 picks a free one "
                             f"(default: {DEFAULT_PORT})")
    parser.add_argument("--cache-dir", default="serve-cache",
                        help="content-addressed result cache directory "
                             "(default: ./serve-cache)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="append every request to this JSONL workload "
                             "trace (default: no trace)")
    parser.add_argument("--trace-fsync", action="store_true",
                        help="fsync the trace per request (durable but "
                             "adds per-request latency)")
    parser.add_argument("--workers", type=int, default=None,
                        help="executor pool size (default: min(4, cpus))")
    parser.add_argument("--coalesce-window", type=float, default=0.005,
                        metavar="SECONDS",
                        help="how long cache-miss requests pool before an "
                             "engine wave launches (default: 0.005)")
    parser.add_argument("--cache-max-entries", type=int, default=None,
                        metavar="N",
                        help="evict least-recently-used cache entries "
                             "beyond this count (default: unbounded)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="N",
                        help="evict least-recently-used cache entries "
                             "beyond this total size (default: unbounded)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    service = CampaignService(
        args.cache_dir, trace_path=args.trace, trace_fsync=args.trace_fsync,
        workers=args.workers, coalesce_window=args.coalesce_window,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes)
    await service.start(args.host, args.port)
    print(f"[serve] listening on http://{service.host}:{service.port} "
          f"(cache: {service.cache.root}, workers: {service.workers})",
          flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-POSIX loops
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        await service.stop()
    print("[serve] stopped", flush=True)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.coalesce_window < 0:
        print("error: --coalesce-window must be >= 0", file=sys.stderr)
        return 2
    for name in ("cache_max_entries", "cache_max_bytes"):
        value = getattr(args, name)
        if value is not None and value < 1:
            flag = "--" + name.replace("_", "-")
            print(f"error: {flag} must be >= 1", file=sys.stderr)
            return 2
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # signal handlers unavailable (rare)
        return 0
    except OSError as exc:  # bind failure: port in use, bad address
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
