"""Replayable JSONL workload trace of every served campaign request.

The serving layer appends one line per request — arrival time, content
digest, case kind, the full case fingerprint, how the request was served
(``hit`` / ``miss`` / ``coalesced`` / ``error``) and its latency — so a
production workload can be studied offline and *replayed*: the committed
synthetic trace under ``benchmarks/data/`` drives the load benchmark,
and a recorded trace from a real deployment drops into the same tooling.

Format: every line is an independent JSON object ::

    {"format": "repro-serve-trace", "version": 1, "seq": 12,
     "arrival_s": 0.0314, "digest": "ab12...", "kind": "power",
     "case": {...}, "outcome": "hit", "latency_ms": 0.21}

``arrival_s`` is seconds since the trace opened (replay-friendly:
relative, monotonic).  A torn final line — the serving process killed
mid-append — is dropped on load, mirroring the run journal's torn-tail
tolerance.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: The ``format`` tag every trace line carries.
TRACE_FORMAT = "repro-serve-trace"
#: The trace schema version this module writes.
TRACE_VERSION = 1

#: How every trace line begins (``sort_keys`` puts ``"arrival_s"`` first),
#: used to tell a torn tail from foreign content on load.
_LINE_PREFIX = '{"arrival_s"'


class WorkloadTrace:
    """Append-only JSONL writer for the request log.

    Thread-safe (the service records from concurrent handler tasks and
    executor threads).  Lines are flushed per append; ``fsync=True``
    additionally syncs each line to disk — durable, but the extra
    ~millisecond per request would dominate cached-hit latency, so the
    default trades the tail of the log for speed (a torn or missing tail
    only loses observability, never results).
    """

    def __init__(self, path: Union[str, Path], fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0
        self._opened_at = time.monotonic()

    def record(self, digest: str, kind: str, case: Dict[str, object],
               outcome: str, latency_ms: float,
               arrival_s: Optional[float] = None) -> None:
        """Append one served request to the trace."""
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            line = json.dumps({
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
                "seq": self._seq,
                "arrival_s": round(
                    arrival_s if arrival_s is not None
                    else time.monotonic() - self._opened_at, 6),
                "digest": digest,
                "kind": kind,
                "case": case,
                "outcome": outcome,
                "latency_ms": round(latency_ms, 3),
            }, sort_keys=True)
            self._seq += 1
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WorkloadTrace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceError(Exception):
    """Raised on malformed or foreign trace files."""


def load_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Every request line of the trace at ``path``, in append order.

    A torn final line (kill mid-append) is dropped; any other
    unparseable or foreign content raises :class:`TraceError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")
    complete, torn_tail = lines[:-1], lines[-1]
    requests: List[Dict[str, object]] = []
    for lineno, line in enumerate(complete, start=1):
        if not line.strip():
            continue
        requests.append(_parse_line(line, lineno))
    if torn_tail.strip():
        head = torn_tail[:len(_LINE_PREFIX)]
        if not (head == _LINE_PREFIX or _LINE_PREFIX.startswith(head)):
            raise TraceError(
                f"trace {path} ends in unrecognised content; "
                f"is it a {TRACE_FORMAT} file?")
        # else: torn final append — the request it described was already
        # answered; only the log line is lost.
    return requests


def _parse_line(line: str, lineno: int) -> Dict[str, object]:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(
            f"trace line {lineno} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != TRACE_FORMAT:
        raise TraceError(f"trace line {lineno} is not a {TRACE_FORMAT} record")
    if payload.get("version") != TRACE_VERSION:
        raise TraceError(
            f"trace line {lineno} has version {payload.get('version')!r}; "
            f"this reader understands version {TRACE_VERSION}")
    return payload


def replay_cases(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """The case dictionaries of a trace, in arrival order (for replay)."""
    for request in load_trace(path):
        yield dict(request["case"])
