"""Cycle-level pre-charge planning: functional mode vs. low-power test mode.

The behavioural memory executes whatever :class:`repro.sram.PrechargePlan`
it is given for each access cycle.  This module produces those plans:

* :class:`FunctionalModePlanner` reproduces the unmodified memory (every
  unselected column pre-charged every cycle);
* :class:`LowPowerTestPlanner` implements the paper's scheme — only the
  selected column and the one that immediately follows it (in the traversal
  direction) are pre-charged, and the last access on each row runs one
  functional-mode cycle that restores every bit line (Figure 7's fix).

The low-power planner mirrors the hardware of Section 4: the plan for a
cycle depends only on the selected column, the traversal direction, and the
"last access on this row" marker the BIST sequencer knows — no lookahead
beyond what the modified control logic itself encodes.  The switching
energy of the added control elements and the LPtest line transitions are
attached to the plans so the memory can book them (power sources 3 and 5 of
Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..circuit.technology import TechnologyParameters, default_technology
from ..march.element import AddressingDirection
from ..march.execution import AccessStep
from ..power.model import PowerModel
from ..sram.geometry import ArrayGeometry
from ..sram.memory import FUNCTIONAL_PLAN, PrechargePlan


class PlannerError(Exception):
    """Raised on inconsistent planner usage."""


def traversal_neighbour_delta(direction: AddressingDirection) -> int:
    """Word-index offset of the column the control logic keeps pre-charged.

    ``+1`` for ascending traversal (the paper's CS̄_j → NPr_{j+1} wiring of
    Figure 8) and ``-1`` for descending traversal (the mirrored wiring of
    the direction-aware controller extension).  This is the single
    definition of the policy: :class:`LowPowerTestPlanner` applies it one
    access at a time, and the vectorized backend
    (:mod:`repro.engine.vectorized`) applies it to whole coordinate arrays —
    sharing it keeps the two execution paths provably identical.
    """
    return -1 if direction is AddressingDirection.DOWN else 1


class PrechargePlanner:
    """Interface: produce the pre-charge plan for one access step."""

    #: True when the planner requires the memory to be in LOW_POWER_TEST mode.
    requires_low_power_mode = False

    def plan(self, step: AccessStep) -> PrechargePlan:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any per-run state (called before a new test run)."""


class FunctionalModePlanner(PrechargePlanner):
    """The unmodified memory: every unselected column pre-charged each cycle."""

    requires_low_power_mode = False

    def plan(self, step: AccessStep) -> PrechargePlan:  # noqa: ARG002 - uniform interface
        return FUNCTIONAL_PLAN


@dataclass(frozen=True)
class PlannerStatistics:
    """Counters accumulated by the low-power planner over a run."""

    cycles: int = 0
    restore_cycles: int = 0
    column_changes: int = 0

    def with_increment(self, restore: bool, column_changed: bool) -> "PlannerStatistics":
        return PlannerStatistics(
            cycles=self.cycles + 1,
            restore_cycles=self.restore_cycles + (1 if restore else 0),
            column_changes=self.column_changes + (1 if column_changed else 0),
        )


class LowPowerTestPlanner(PrechargePlanner):
    """The paper's low-power test mode pre-charge policy."""

    requires_low_power_mode = True

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()
        self._power_model = PowerModel(geometry, tech=self.tech)
        self._control_element_energy = self._power_model.control_element_energy()
        self._previous_word: Optional[int] = None
        self.statistics = PlannerStatistics()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._previous_word = None
        self.statistics = PlannerStatistics()

    # ------------------------------------------------------------------
    def neighbour_word(self, word: int, direction: AddressingDirection) -> Optional[int]:
        """The word whose columns the control logic keeps pre-charged.

        In the ascending word-line order this is ``word + 1`` (the paper's
        CS̄_j → NPr_{j+1} wiring); in the descending order it is ``word - 1``
        (the mirrored wiring of the direction-aware controller extension) —
        see :func:`traversal_neighbour_delta`.  At the edge of the row there
        is no neighbour — the row-transition restoration takes care of
        preparing the next row's first column.
        """
        candidate = word + traversal_neighbour_delta(direction)
        if 0 <= candidate < self.geometry.words_per_row:
            return candidate
        return None

    def plan(self, step: AccessStep) -> PrechargePlan:
        word = step.word
        neighbour = self.neighbour_word(word, step.direction)
        if neighbour is None:
            enabled: FrozenSet[int] = frozenset()
        else:
            enabled = frozenset(self.geometry.columns_of_word(neighbour))

        column_changed = self._previous_word is not None and self._previous_word != word
        first_cycle = self._previous_word is None
        self._previous_word = word

        # One control element switches for each column change ("there is only
        # one control element switching for each column changing", §5 source 5).
        control_energy = 0.0
        if column_changed or first_cycle:
            control_energy = self._control_element_energy

        # The LPtest line toggles around the row-transition restoration cycle
        # (charged once per row transition, §5 source 3).
        lptest_toggles = 1 if step.last_access_on_row else 0

        self.statistics = self.statistics.with_increment(
            restore=step.last_access_on_row, column_changed=column_changed)

        return PrechargePlan(
            enabled_columns=enabled,
            full_restore=step.last_access_on_row,
            control_energy=control_energy,
            lptest_toggles=lptest_toggles,
        )


@dataclass(frozen=True)
class WordOrientedLowPowerPlanner(PrechargePlanner):
    """Extension for word-oriented memories (the paper's future work).

    Identical policy, but "column" becomes "word group": the pre-charge stays
    on for all the bit-line pairs of the selected word and of the neighbouring
    word.  Implemented by delegating to :class:`LowPowerTestPlanner`, which
    already resolves a word to its physical columns through the geometry.
    """

    geometry: ArrayGeometry

    requires_low_power_mode = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "_delegate", LowPowerTestPlanner(self.geometry))

    def plan(self, step: AccessStep) -> PrechargePlan:
        return self._delegate.plan(step)

    def reset(self) -> None:
        self._delegate.reset()
