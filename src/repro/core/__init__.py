"""The paper's contribution: the low-power test mode for SRAM pre-charge.

* :mod:`repro.core.precharge_controller` — gate-level model of the modified
  pre-charge control logic (Figure 8): one mux + one NAND per column, ten
  transistors, driving the per-column pre-charge enables of Figure 4;
* :mod:`repro.core.lowpower` — cycle-level pre-charge planners: functional
  mode and the paper's low-power test mode (selected column + following
  column only, one functional restoration cycle per row transition);
* :mod:`repro.core.prr` — the analytical Section 5 power model (P_F, P_LPT,
  PRR) evaluated from closed-form per-event energies;
* :mod:`repro.core.session` — test sessions that run March algorithms on the
  behavioural SRAM in either mode and measure the Power Reduction Ratio.
"""

from .precharge_controller import (
    ControllerDecision,
    ControllerError,
    ModifiedPrechargeController,
    TRANSISTORS_PER_COLUMN,
)
from .lowpower import (
    FunctionalModePlanner,
    LowPowerTestPlanner,
    PlannerError,
    PlannerStatistics,
    PrechargePlanner,
    WordOrientedLowPowerPlanner,
    traversal_neighbour_delta,
)
from .prr import AnalyticalPowerModel, AnalyticalPrediction, AnalyticalModelError
from .session import (
    ModeComparison,
    ReadMismatch,
    SessionError,
    TestRunResult,
    TestSession,
    compare_modes,
)

__all__ = [
    "ModifiedPrechargeController", "ControllerDecision", "ControllerError",
    "TRANSISTORS_PER_COLUMN",
    "PrechargePlanner", "FunctionalModePlanner", "LowPowerTestPlanner",
    "WordOrientedLowPowerPlanner", "PlannerError", "PlannerStatistics",
    "traversal_neighbour_delta",
    "AnalyticalPowerModel", "AnalyticalPrediction", "AnalyticalModelError",
    "TestSession", "TestRunResult", "ModeComparison", "ReadMismatch",
    "SessionError", "compare_modes",
]
