"""The modified pre-charge control logic of Section 4 (Figure 8).

The paper adds, per column, one control element built from a two-transmission-
gate multiplexer (plus its select inverter) and one NAND gate — ten
transistors per column.  Its behaviour:

* functional mode (``LPtest`` = 0): the normal pre-charge signal ``Pr_j``
  drives the pre-charge circuit of column *j* unchanged;
* low-power test mode (``LPtest`` = 1):
  * if column *j* is currently selected for a read/write operation
    (``CS_j`` = 1), the NAND gate forces the functional path, so the column
    sees its normal ``Pr_j`` timing (pre-charge OFF during the operation
    phase, ON during the restoration phase);
  * otherwise the pre-charge input is the *previous* column's complemented
    selection signal ``CS̄_{j-1}``: since the pre-charge is active-low, the
    pre-charge of column *j* is ON exactly while column *j-1* is selected —
    i.e. only the column that immediately follows the selected one is kept
    pre-charged, which is the whole point of the scheme.
* the last column's selection signal is not wrapped around to column 0 (the
  row-transition restoration cycle makes that unnecessary).

The controller below is a gate-level model built on
:class:`repro.circuit.gates.LogicNetwork`: it reproduces the per-column
enable pattern of Figure 4, counts transistors, reports the extra delay
inserted on the ``Pr_j`` path, and accounts the (tiny) switching energy of
the added gates.  A ``descending`` variant mirrors the neighbour connection
(driving column *j-1* from ``CS̄_j``) so that ⇓ March elements can also be
run in the low-power mode; this is an engineering extension the paper does
not detail, and it is flagged as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..circuit.gates import INVERTER, NAND2, TGATE_MUX2, LogicNetwork
from ..circuit.technology import TechnologyParameters, default_technology


class ControllerError(Exception):
    """Raised on invalid controller configuration or inputs."""


#: Transistor cost of one added control element, as stated in the paper.
TRANSISTORS_PER_COLUMN = 10


@dataclass(frozen=True)
class ControllerDecision:
    """Pre-charge enables computed by the control logic for one evaluation."""

    #: per-column pre-charge activation (True = pre-charge circuit ON).
    precharge_on: Dict[int, bool]
    #: switching energy of the control elements for this input change.
    switching_energy: float
    #: worst-case propagation delay from the inputs to any NPr output.
    critical_path_delay: float

    def active_columns(self) -> List[int]:
        return sorted(c for c, on in self.precharge_on.items() if on)


class ModifiedPrechargeController:
    """Gate-level model of the per-column control elements of Figure 8."""

    def __init__(self, columns: int,
                 tech: TechnologyParameters | None = None,
                 support_descending: bool = False,
                 banks: int = 1) -> None:
        if columns <= 0:
            raise ControllerError(f"columns must be positive, got {columns}")
        if banks <= 0:
            raise ControllerError(f"banks must be positive, got {banks}")
        self.tech = tech or default_technology()
        self.columns = columns
        #: Number of sub-array banks the control logic is replicated over
        #: (beyond-paper: the paper's array is monolithic).  Each bank owns
        #: its own bit-line segments and pre-charge circuits, hence its own
        #: copy of the per-column control elements; the gate-level network
        #: models one bank and the transistor accounting scales by ``banks``.
        self.banks = banks
        self.support_descending = support_descending
        self.network = self._build_network()

    # ------------------------------------------------------------------
    # Network construction
    # ------------------------------------------------------------------
    def _build_network(self) -> LogicNetwork:
        net = LogicNetwork(name="modified-precharge-control", tech=self.tech)
        net.add_input("LPtest")
        net.add_input("const_one")
        if self.support_descending:
            net.add_input("descending")
        for j in range(self.columns):
            net.add_input(f"Pr_{j}")        # former pre-charge signal (active low)
            net.add_input(f"CSbar_{j}")     # complement of the column-select signal
        for j in range(self.columns):
            # NAND(LPtest, CSbar_j): low only when the low-power mode is on
            # and the column is NOT selected; it is the mux select.
            net.add_gate(NAND2, name=f"nand_{j}",
                         inputs=("LPtest", f"CSbar_{j}"), output=f"sel_{j}")
            neighbour = self._neighbour_net(net, j)
            # Transmission-gate mux: select=1 -> Pr_j (functional path),
            # select=0 -> neighbour CSbar (low-power path).
            net.add_gate(TGATE_MUX2, name=f"mux_{j}",
                         inputs=(f"sel_{j}", neighbour, f"Pr_{j}"),
                         output=f"NPr_{j}")
            # Each NPr net drives the pre-charge PMOS gates of its column.
            net.add_net_load(f"NPr_{j}", self.tech.precharge_gate_cap)
        return net

    def _neighbour_net(self, net: LogicNetwork, j: int) -> str:
        """Net feeding the low-power path of column ``j``'s mux."""
        if not self.support_descending:
            # Paper wiring: CSbar of the previous column; column 0 has no
            # predecessor and its low-power input is tied inactive (high).
            return f"CSbar_{j - 1}" if j > 0 else "const_one"
        # Direction-aware extension: an extra mux per column picks the
        # predecessor (ascending) or the successor (descending) selection.
        ascending_src = f"CSbar_{j - 1}" if j > 0 else "const_one"
        descending_src = f"CSbar_{j + 1}" if j < self.columns - 1 else "const_one"
        net.add_gate(TGATE_MUX2, name=f"dirmux_{j}",
                     inputs=("descending", ascending_src, descending_src),
                     output=f"nbr_{j}")
        return f"nbr_{j}"

    # ------------------------------------------------------------------
    # Static properties
    # ------------------------------------------------------------------
    def transistors_per_column(self) -> int:
        """Transistor cost of one control element (10 in the paper's wiring)."""
        per_column = NAND2.transistors + TGATE_MUX2.transistors
        if self.support_descending:
            per_column += TGATE_MUX2.transistors
        return per_column

    def total_transistors(self) -> int:
        """Whole-memory transistor overhead (all banks)."""
        return self.transistors_per_column() * self.columns * self.banks

    def added_delay_on_pr_path(self) -> float:
        """Extra delay the mux inserts on the functional ``Pr_j`` path.

        Only the transmission-gate stage sits in series with ``Pr_j`` (the
        NAND drives the select input, off the critical path), matching the
        paper's argument that the impact on normal operation is negligible.
        """
        return TGATE_MUX2.delay

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, lptest: bool, selected_column: Optional[int],
                 precharge_phase: bool = False,
                 descending: bool = False) -> ControllerDecision:
        """Evaluate the control logic for one timing point.

        ``selected_column`` is the column currently addressed (``None`` for
        an idle memory).  ``precharge_phase`` distinguishes the two halves
        of the clock cycle: during the operation phase the selected column's
        ``Pr_j`` is high (pre-charge off), during the restoration phase it is
        low (pre-charge on).  Unselected columns' ``Pr_j`` is low (pre-charge
        on) in functional mode — that is exactly the behaviour the low-power
        mode suppresses.
        """
        if selected_column is not None and not 0 <= selected_column < self.columns:
            raise ControllerError(
                f"selected_column {selected_column} out of range [0, {self.columns})")
        if descending and not self.support_descending:
            raise ControllerError(
                "descending traversal requested but the controller was built "
                "with support_descending=False (the paper's wiring)")
        inputs: Dict[str, bool] = {"LPtest": lptest, "const_one": True}
        if self.support_descending:
            inputs["descending"] = descending
        for j in range(self.columns):
            is_selected = selected_column == j
            # Pr_j is active low: low = pre-charge commanded ON.
            if is_selected:
                inputs[f"Pr_{j}"] = not precharge_phase  # high during operation phase
            else:
                inputs[f"Pr_{j}"] = False                # functional: always pre-charging
            inputs[f"CSbar_{j}"] = not is_selected
        result = self.network.evaluate(inputs)
        precharge_on = {
            j: not result.value(f"NPr_{j}")  # active low
            for j in range(self.columns)
        }
        return ControllerDecision(
            precharge_on=precharge_on,
            switching_energy=result.switching_energy,
            critical_path_delay=result.critical_path_delay,
        )

    def activation_map(self, lptest: bool, precharge_phase: bool = False,
                       descending: bool = False) -> List[List[bool]]:
        """Per-selected-column activation matrix (rows = selected column).

        ``activation_map(True)[j][k]`` tells whether column ``k``'s
        pre-charge is ON while column ``j`` is selected — the data behind
        Figure 4.
        """
        table: List[List[bool]] = []
        self.network.reset_state()
        for selected in range(self.columns):
            decision = self.evaluate(lptest, selected,
                                     precharge_phase=precharge_phase,
                                     descending=descending)
            table.append([decision.precharge_on[k] for k in range(self.columns)])
        return table

    def reset(self) -> None:
        """Forget previous input state (next evaluation books no switching energy)."""
        self.network.reset_state()
