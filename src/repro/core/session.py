"""Test sessions: run a March algorithm on the behavioural SRAM and measure.

A :class:`TestSession` wires together the pieces the experiments need:

* the behavioural memory (:class:`repro.sram.SRAM`),
* a March algorithm and an address order (DOF 1 choice),
* a pre-charge planner (functional mode or the paper's low-power test mode),

executes the whole test and returns a :class:`TestRunResult` with the
energy ledger, average power, stress counters, read mismatches (fault
detections) and any faulty swaps.  :func:`compare_modes` runs the same
algorithm in both modes on identical memories and reports the measured
Power Reduction Ratio — the quantity of the paper's Table 1.

Execution is pluggable: the default ``backend="reference"`` walks the
behavioural memory cycle by cycle, while ``backend="vectorized"`` hands the
run to the NumPy batch engine of :mod:`repro.engine`, which computes the
same measurements as whole-array reductions (required for paper-scale
geometries).  ``backend="auto"`` picks the vectorized engine whenever the
run qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.technology import TechnologyParameters, default_technology
from ..engine.dispatch import (
    KERNEL_CHOICES,
    BackendDispatcher,
    register_backend_family,
)
from ..march.algorithm import MarchAlgorithm
from ..march.element import AddressingDirection
from ..march.execution import walk
from ..march.ordering import AddressOrder, RowMajorOrder
from ..power.sources import PowerSource
from ..sram.array import BackgroundFunction, solid_background
from ..sram.geometry import ArrayGeometry
from ..sram.memory import OperatingMode, SRAM
from .lowpower import FunctionalModePlanner, LowPowerTestPlanner, PrechargePlanner


class SessionError(Exception):
    """Raised on inconsistent session configuration."""


@dataclass
class ReadMismatch:
    """A read that returned something else than the March expectation."""

    cycle: int
    row: int
    word: int
    expected: int
    observed: int
    element_index: int
    operation_index: int


@dataclass
class TestRunResult:
    """Everything measured while running one algorithm in one mode."""

    algorithm: str
    mode: str
    order: str
    geometry: str
    cycles: int
    total_energy: float
    average_power: float
    energy_by_source: Dict[PowerSource, float]
    mismatches: List[ReadMismatch] = field(default_factory=list)
    faulty_swaps: List[Tuple[int, int]] = field(default_factory=list)
    read_hazards: int = 0
    row_transitions: int = 0
    full_restores: int = 0
    full_res_column_cycles: int = 0
    floating_column_cycles: int = 0
    bank_transitions: int = 0
    #: Concrete kernel tier that measured this run on the vectorized
    #: backend ("flat" / "segmented" / "jit" / "gpu"); "" on the
    #: reference backend, which has no kernel seam.
    kernel: str = ""

    @property
    def passed(self) -> bool:
        """True when no read mismatch occurred (the memory is seen fault-free)."""
        return not self.mismatches

    @property
    def energy_per_cycle(self) -> float:
        return self.total_energy / self.cycles if self.cycles else 0.0

    def source_fraction(self, source: PowerSource) -> float:
        total = sum(self.energy_by_source.values())
        if total <= 0:
            return 0.0
        return self.energy_by_source.get(source, 0.0) / total


@dataclass(frozen=True)
class ModeComparison:
    """Functional-mode vs. low-power-test-mode measurement for one algorithm."""

    algorithm: str
    functional: TestRunResult
    low_power: TestRunResult

    @property
    def prr(self) -> float:
        """Measured Power Reduction Ratio, 1 − P_LPT / P_F."""
        if self.functional.average_power <= 0:
            return 0.0
        return 1.0 - self.low_power.average_power / self.functional.average_power

    def as_table1_row(self, algorithm: MarchAlgorithm) -> Dict[str, object]:
        """One row in the format of the paper's Table 1."""
        return {
            "Algorithm": algorithm.name,
            "# elm": algorithm.element_count,
            "# oper": algorithm.operation_count,
            "# read": algorithm.read_count,
            "# write": algorithm.write_count,
            "PRR": f"{100.0 * self.prr:.1f} %",
        }


#: Valid values of the ``backend`` switch of :class:`TestSession`
#: (the "session" family of :mod:`repro.engine.dispatch`).
BACKENDS = register_backend_family("session")


class TestSession:
    """Run March algorithms on one memory configuration.

    ``backend`` selects the execution engine:

    * ``"reference"`` (default) — the cycle-accurate behavioural memory
      (:class:`repro.sram.SRAM`), one access at a time.  Supports every
      configuration, including injected faults and custom planners.
    * ``"vectorized"`` — the NumPy batch engine
      (:class:`repro.engine.VectorizedEngine`), which measures the same
      quantities as whole-array reductions and makes paper-scale geometries
      (the full 512 x 512 array) tractable.  Raises
      :class:`repro.engine.UnsupportedConfiguration` for runs it cannot
      replay exactly (custom memories/planners, address orders that do not
      keep the pre-charged traversal neighbour).
    * ``"auto"`` — vectorized when the run qualifies, silently falling back
      to the reference engine otherwise.

    Both engines produce equivalent :class:`TestRunResult` measurements
    (energy totals and per-source breakdowns, stress counters, fault
    detections); the test-suite asserts this on every Table 1 algorithm.
    """

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 order: Optional[AddressOrder] = None,
                 background: Optional[BackgroundFunction] = None,
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 detailed: Optional[bool] = None,
                 backend: str = "reference",
                 kernel: Optional[str] = None) -> None:
        self._dispatch = BackendDispatcher("session", self._make_engine,
                                           error=SessionError)
        self.backend = self._dispatch.validate(backend)
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.order = order or RowMajorOrder(geometry)
        self.background = background if background is not None else solid_background(0)
        self.any_direction = any_direction
        self.detailed = detailed
        #: kernel tier of the vectorized engine (``None`` follows the
        #: process default; see :func:`repro.engine.vectorized.default_kernel`).
        #: Validated eagerly — the engine itself is built lazily.
        if kernel is not None and kernel not in KERNEL_CHOICES:
            raise SessionError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}")
        self.kernel = kernel

    @property
    def last_backend_used(self) -> Optional[str]:
        """Engine that executed the calling thread's most recent
        :meth:`run` (``None`` before the first run): "reference" or
        "vectorized".  Thread-local so concurrent runs through a shared
        session (the serving worker pool) never mis-attribute provenance.
        """
        return self._dispatch.last_backend_used

    @last_backend_used.setter
    def last_backend_used(self, backend: Optional[str]) -> None:
        self._dispatch.note_backend_used(backend)

    # ------------------------------------------------------------------
    def _build_memory(self, mode: OperatingMode, label: str) -> SRAM:
        memory = SRAM(self.geometry, tech=self.tech, mode=mode,
                      ledger_label=label,
                      detailed_ledger=self.detailed,
                      track_cell_stress=self.detailed)
        memory.apply_background(self.background)
        return memory

    def _planner_for(self, mode: OperatingMode) -> PrechargePlanner:
        if mode is OperatingMode.LOW_POWER_TEST:
            return LowPowerTestPlanner(self.geometry, tech=self.tech)
        return FunctionalModePlanner()

    def _make_engine(self):
        """Build the :class:`repro.engine.VectorizedEngine` for this session.

        The dispatcher's engine factory: called lazily on the first
        vectorized run (the import defers numpy) and again after a failed
        run invalidates the cached engine.
        """
        from ..engine import VectorizedEngine  # deferred: numpy optional

        return VectorizedEngine(
            self.geometry, tech=self.tech, order=self.order,
            any_direction=self.any_direction, detailed=self.detailed,
            kernel=self.kernel)

    # ------------------------------------------------------------------
    def run(self, algorithm: MarchAlgorithm, mode: OperatingMode,
            memory: Optional[SRAM] = None,
            planner: Optional[PrechargePlanner] = None,
            backend: Optional[str] = None) -> TestRunResult:
        """Run ``algorithm`` once in ``mode`` and return the measurements.

        A pre-built ``memory`` (e.g. one with injected faults) and/or a
        custom ``planner`` can be supplied; otherwise fresh fault-free ones
        are created.  ``backend`` overrides the session's execution engine
        for this run (see the class docstring); a custom memory or planner
        always runs on the reference engine.
        """
        chosen = self._dispatch.validate(
            backend if backend is not None else self.backend)
        if memory is None and planner is None:
            def run_vectorized(engine) -> TestRunResult:
                result = engine.run(algorithm, mode)
                self.last_backend_used = "vectorized"
                return result

            # A failed engine must not be cached, so "auto" fallback also
            # invalidates it; "vectorized" surfaces the EngineError.
            return self._dispatch.call(
                chosen, vectorized=run_vectorized,
                reference=lambda: self._run_reference(algorithm, mode,
                                                      memory, planner),
                invalidate_on_fallback=True)
        if chosen == "vectorized":
            raise SessionError(
                "the vectorized backend cannot run with a custom memory "
                "or planner; use backend='reference' (or 'auto')")
        return self._run_reference(algorithm, mode, memory, planner)

    def _run_reference(self, algorithm: MarchAlgorithm, mode: OperatingMode,
                       memory: Optional[SRAM],
                       planner: Optional[PrechargePlanner]) -> TestRunResult:
        """The cycle-accurate walk over the behavioural memory."""
        algorithm.validate()
        if memory is None:
            memory = self._build_memory(mode, label=f"{algorithm.name} [{mode.value}]")
        else:
            memory.set_mode(mode)
        planner = planner or self._planner_for(mode)
        if planner.requires_low_power_mode and mode is not OperatingMode.LOW_POWER_TEST:
            raise SessionError(
                "the low-power planner requires OperatingMode.LOW_POWER_TEST")
        planner.reset()

        mismatches: List[ReadMismatch] = []
        faulty_swaps: List[Tuple[int, int]] = []
        hazards = 0

        use_plan = mode is OperatingMode.LOW_POWER_TEST
        for step in walk(algorithm, self.order, self.any_direction):
            plan = planner.plan(step) if use_plan else None
            if step.is_read:
                outcome = memory.read(step.row, step.word, plan=plan)
                if outcome.value != step.operation.value:
                    mismatches.append(ReadMismatch(
                        cycle=outcome.cycle, row=step.row, word=step.word,
                        expected=step.operation.value, observed=outcome.value,
                        element_index=step.element_index,
                        operation_index=step.operation_index))
            else:
                outcome = memory.write(step.row, step.word, step.operation.value,
                                       plan=plan)
            if outcome.read_hazard:
                hazards += 1
            if outcome.faulty_swaps:
                faulty_swaps.extend(outcome.faulty_swaps)

        ledger = memory.ledger
        self.last_backend_used = "reference"
        return TestRunResult(
            algorithm=algorithm.name,
            mode=mode.value,
            order=self.order.name,
            geometry=self.geometry.describe(),
            cycles=memory.cycle,
            total_energy=ledger.total_energy(),
            average_power=ledger.average_power(),
            energy_by_source=ledger.energy_by_source(),
            mismatches=mismatches,
            faulty_swaps=faulty_swaps,
            read_hazards=hazards,
            row_transitions=memory.counters.row_transitions,
            full_restores=memory.counters.full_restores,
            full_res_column_cycles=memory.counters.full_res_column_cycles,
            floating_column_cycles=memory.counters.floating_column_cycles,
            bank_transitions=memory.counters.bank_transitions,
        )

    # ------------------------------------------------------------------
    def compare_modes(self, algorithm: MarchAlgorithm,
                      backend: Optional[str] = None) -> ModeComparison:
        """Run ``algorithm`` in both modes on fresh fault-free memories.

        ``backend`` overrides the session's execution engine for this
        comparison (see the class docstring).
        """
        functional = self.run(algorithm, OperatingMode.FUNCTIONAL, backend=backend)
        low_power = self.run(algorithm, OperatingMode.LOW_POWER_TEST, backend=backend)
        return ModeComparison(algorithm=algorithm.name,
                              functional=functional, low_power=low_power)

    def table1(self, algorithms: Sequence[MarchAlgorithm]) -> List[Dict[str, object]]:
        """Measured reproduction of the paper's Table 1 for ``algorithms``."""
        rows: List[Dict[str, object]] = []
        for algorithm in algorithms:
            comparison = self.compare_modes(algorithm)
            rows.append(comparison.as_table1_row(algorithm))
        return rows


def compare_modes(geometry: ArrayGeometry, algorithm: MarchAlgorithm,
                  tech: TechnologyParameters | None = None,
                  **session_kwargs) -> ModeComparison:
    """Convenience wrapper: one-call functional vs. low-power comparison."""
    session = TestSession(geometry, tech=tech, **session_kwargs)
    return session.compare_modes(algorithm)
