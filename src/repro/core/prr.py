"""Analytical power model of Section 5: P_F, P_LPT and the Power Reduction Ratio.

The paper summarises its analysis with three equations (per clock cycle):

    P_F   = (#read · P_r + #write · P_w) / #operations

    P_LPT = P_F − [ (#col − 2) · P_A  −  (#elements / #operations) · P_B ]

    PRR   = 1 − P_LPT / P_F

where ``#read``, ``#write``, ``#operations`` and ``#elements`` describe the
March algorithm (per address), ``#col`` is the number of array columns, and
P_r, P_w, P_A, P_B are the per-event energies described in
:mod:`repro.power.model`.

This module evaluates those equations for any algorithm/geometry pair (the
closed-form path used for the paper's full 512 x 512 array) and also offers
an *extended* variant that keeps the second-order terms the paper argues are
negligible (LPtest line driver, control-element switching, cell-side RES),
so the "negligible" claims can be verified quantitatively rather than taken
on faith.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..circuit.technology import TechnologyParameters, default_technology
from ..march.algorithm import MarchAlgorithm
from ..power.model import OperationEnergies, PowerModel
from ..sram.geometry import ArrayGeometry


class AnalyticalModelError(Exception):
    """Raised for degenerate inputs (e.g. fewer than three columns)."""


@dataclass(frozen=True)
class AnalyticalPrediction:
    """Closed-form prediction for one algorithm on one array geometry."""

    algorithm: str
    geometry: str
    #: average functional-mode energy per clock cycle (the paper's P_F,
    #: expressed as energy; divide by the clock period for watts).
    functional_per_cycle: float
    #: average low-power-test-mode energy per clock cycle (P_LPT).
    low_power_per_cycle: float
    #: the Power Reduction Ratio, 1 − P_LPT / P_F.
    prr: float
    #: the savings term (#col − 2) · P_A.
    res_savings_per_cycle: float
    #: the row-transition overhead term (#elements / #operations) · P_B.
    row_transition_overhead_per_cycle: float
    #: second-order overheads kept by the extended model (0 for the paper's
    #: equation).
    secondary_overhead_per_cycle: float = 0.0

    def as_row(self) -> Dict[str, float | str]:
        return {
            "algorithm": self.algorithm,
            "P_F (J/cycle)": self.functional_per_cycle,
            "P_LPT (J/cycle)": self.low_power_per_cycle,
            "PRR (%)": 100.0 * self.prr,
        }


class AnalyticalPowerModel:
    """Evaluates the Section 5 equations for a geometry/technology pair."""

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 energies: OperationEnergies | None = None) -> None:
        if geometry.columns < 3:
            raise AnalyticalModelError(
                "the Section 5 equations assume at least three columns "
                f"(got {geometry.columns})")
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.energies = energies or PowerModel(geometry, tech=self.tech).energies()

    # ------------------------------------------------------------------
    # The paper's three equations
    # ------------------------------------------------------------------
    def functional_power(self, algorithm: MarchAlgorithm) -> float:
        """P_F: average per-cycle energy in functional mode.

        The paper folds the unselected-column pre-charge activity into its
        measured P_r / P_w (they are whole-memory powers); the closed-form
        model makes that explicit: operation energy of the selected column
        plus (#col − 1) pre-charge circuits sustaining RES.
        """
        ops = algorithm.operation_count
        reads, writes = algorithm.read_count, algorithm.write_count
        operation_energy = (reads * self.energies.read + writes * self.energies.write) / ops
        words_per_access = self.geometry.bits_per_word
        unselected = self.geometry.columns - words_per_access
        res_energy = unselected * self.energies.res_per_column
        cell_res = unselected * self.energies.cell_res
        return operation_energy + res_energy + cell_res + self.energies.leakage_per_cycle

    def low_power_test_power(self, algorithm: MarchAlgorithm,
                             include_secondary: bool = False,
                             include_next_column_recharge: bool = False) -> float:
        """P_LPT: average per-cycle energy in the low-power test mode.

        With both flags at their defaults this is exactly the paper's
        equation.  ``include_secondary`` adds the LPtest-driver and
        control-logic terms the paper argues are negligible;
        ``include_next_column_recharge`` adds the recharge of the following
        column's discharged bit line, which the paper's equation omits and
        which the behavioural measurement includes.
        """
        functional = self.functional_power(algorithm)
        savings = self.res_savings_per_cycle()
        overhead = self.row_transition_overhead_per_cycle(algorithm)
        secondary = self.secondary_overhead_per_cycle(algorithm) if include_secondary else 0.0
        recharge = (self.next_column_recharge_per_cycle(algorithm)
                    if include_next_column_recharge else 0.0)
        return functional - savings + overhead + secondary + recharge

    def prr(self, algorithm: MarchAlgorithm, include_secondary: bool = False,
            include_next_column_recharge: bool = False) -> float:
        """The Power Reduction Ratio, 1 − P_LPT / P_F."""
        functional = self.functional_power(algorithm)
        low_power = self.low_power_test_power(
            algorithm, include_secondary=include_secondary,
            include_next_column_recharge=include_next_column_recharge)
        return 1.0 - low_power / functional

    # ------------------------------------------------------------------
    # Individual terms
    # ------------------------------------------------------------------
    def res_savings_per_cycle(self) -> float:
        """(#col − 2·bits_per_word) · P_A: the suppressed pre-charge activity.

        In the bit-oriented case this is the paper's (#col − 2) · P_A: only
        the selected column and its neighbour keep their pre-charge, all
        other columns' RES-sustaining energy is saved.  The cell-side RES
        energy of those columns disappears with it.
        """
        active = 2 * self.geometry.bits_per_word
        saved_columns = self.geometry.columns - active
        if saved_columns < 0:
            saved_columns = 0
        return saved_columns * (self.energies.res_per_column + self.energies.cell_res)

    def row_transition_overhead_per_cycle(self, algorithm: MarchAlgorithm) -> float:
        """(#elements / #operations) · P_B: the restoration cycles, amortised.

        One full-array restoration happens per row per element (total
        ``#elements · #rows`` over the run); each restores ``#columns``
        columns at P_B apiece, and the run lasts
        ``#operations · #rows · #words_per_row`` cycles.  The per-cycle
        average therefore reduces to
        ``(#elements / #operations) · P_B · bits_per_word``, which is exactly
        the paper's (#elm / #ops) · P_B term for a bit-oriented array.
        """
        per_element_rate = algorithm.element_count / algorithm.operation_count
        return (per_element_rate * self.energies.restore_per_column
                * self.geometry.bits_per_word)

    def next_column_recharge_per_cycle(self, algorithm: MarchAlgorithm) -> float:
        """Amortised cost of recharging the *next* column's discharged bit line.

        This term is absent from the paper's Section 5 equations: when the
        pre-charge of the following column is switched on (one cycle before
        that column is selected), its bit line has typically already been
        discharged by its cell while it was floating, so the pre-charge
        circuit must put roughly one full bit-line swing back.  That happens
        about once per column visit, i.e. once every
        ``#operations / #elements`` cycles.  The cycle-accurate behavioural
        measurement includes this cost automatically; keeping it available
        here lets the analytical model reconcile with the measurement (see
        EXPERIMENTS.md for the discussion of this systematic difference with
        the paper's own accounting).
        """
        per_element_rate = algorithm.element_count / algorithm.operation_count
        return (per_element_rate * self.energies.restore_per_column
                * self.geometry.bits_per_word)

    def secondary_overhead_per_cycle(self, algorithm: MarchAlgorithm) -> float:
        """LPtest driver + control-element switching, amortised per cycle.

        The paper argues both are negligible; keeping them lets the tests
        and the ablation bench quantify "negligible".
        """
        per_row_cycles = algorithm.operation_count * self.geometry.words_per_row
        lptest = self.energies.lptest_line / per_row_cycles * algorithm.element_count
        # one control element switches per column change: essentially once
        # per operation cycle divided by the operations per column visit.
        control = self.energies.control_element / max(1, algorithm.operation_count // algorithm.element_count)
        return lptest + control

    # ------------------------------------------------------------------
    def predict(self, algorithm: MarchAlgorithm,
                include_secondary: bool = False,
                include_next_column_recharge: bool = False) -> AnalyticalPrediction:
        """Full prediction bundle for one algorithm."""
        functional = self.functional_power(algorithm)
        savings = self.res_savings_per_cycle()
        overhead = self.row_transition_overhead_per_cycle(algorithm)
        secondary = self.secondary_overhead_per_cycle(algorithm) if include_secondary else 0.0
        if include_next_column_recharge:
            secondary += self.next_column_recharge_per_cycle(algorithm)
        low_power = functional - savings + overhead + secondary
        return AnalyticalPrediction(
            algorithm=algorithm.name,
            geometry=self.geometry.describe(),
            functional_per_cycle=functional,
            low_power_per_cycle=low_power,
            prr=1.0 - low_power / functional,
            res_savings_per_cycle=savings,
            row_transition_overhead_per_cycle=overhead,
            secondary_overhead_per_cycle=secondary,
        )
