"""CuPy kernel tier (``kernel="gpu"``) of the vectorized engine.

The gpu tier reuses the *identical* array program as the flat tier —
:func:`repro.engine.vectorized._reduce_tile_arrays` is written against an
``xp`` array namespace, so this module simply stages the segment tile onto
the device, runs the shared program with ``xp=cupy``, and brings the five
per-slot accumulators back as numpy arrays.  No re-derivation means no
drift: any change to the flat kernel's math is the gpu tier's math on the
next run.

Integer counters are exact; float energy sums may differ from the CPU
tiers by summation order only (device-parallel ``bincount``), inside the
project-wide 1e-9 differential gate.

The tier is strictly opt-in (``kernel="gpu"``): ``kernel="auto"`` prefers
the jit tier, because per-tile host↔device transfers only pay off once
segment tiles are large enough to amortize the copies.  Imported lazily by
:func:`repro.engine.vectorized.kernel_module`; an absent cupy makes the
import fail cleanly (``ImportError``), which
:func:`repro.engine.vectorized.resolve_kernel` turns into a
single-warning fallback to the ``"flat"`` tier.
"""

from __future__ import annotations

import cupy
import numpy as np

from .vectorized import _reduce_tile_arrays


def reduce_tile(slots, m, first, last, carry, chained, delta_seg, x,
                n_words, bits, coeff, boundary_gain, total_slots):
    """The flat kernel's per-tile slot reductions, on the device.

    Same signature and return contract as the numpy tier: five host-side
    per-slot accumulator arrays of length ``total_slots``.
    """
    staged = (cupy.asarray(array) for array in
              (slots, m, first, last, carry, chained, delta_seg, x))
    outputs = _reduce_tile_arrays(cupy, *staged, n_words, bits, coeff,
                                  boundary_gain, total_slots)
    return tuple(cupy.asnumpy(array) for array in outputs)


def warm() -> None:
    """Initialise the device context with a dummy one-segment reduction."""
    zero = np.zeros(1, dtype=np.int64)
    reduce_tile(zero, np.ones(1, dtype=np.int64), zero, zero,
                np.zeros(1, dtype=np.bool_), np.zeros(1, dtype=np.bool_),
                zero, np.full(1, 0.5, dtype=np.float64),
                n_words=1, bits=1, coeff=1.0, boundary_gain=1.0,
                total_slots=1)
