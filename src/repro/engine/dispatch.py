"""Shared backend-selection registry and fallback dispatch.

Three facades expose the same execution seam — a ``backend`` switch taking
``"reference"`` / ``"vectorized"`` / ``"auto"`` — and before this module
each carried its own copy of the scaffolding behind it: validating the
switch, lazily building and caching the vectorized engine, and implementing
the fallback rule (``"auto"`` silently falls back to the reference path
when the vectorized engine rejects a run, ``"vectorized"`` surfaces the
error).  :class:`BackendDispatcher` is that scaffolding, written once:

* :class:`repro.core.session.TestSession` (power measurement),
* :class:`repro.faults.FaultSimulator` (fault campaigns),
* :class:`repro.bist.BistController` (BIST power campaigns)

each own one dispatcher instance, and the sweep orchestrator
(:mod:`repro.sweep.runner`) consults the module-level *family registry* —
:func:`register_backend_family` / :func:`backend_choices` — instead of
hard-coding per-facade backend tuples.

This module is deliberately NumPy-free: :class:`EngineError` lives here
(re-exported by :mod:`repro.engine.vectorized`, which subclasses it) so the
scalar layers and the orchestrator can name the engine's failure mode
without importing any vectorized code.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence, Tuple, TypeVar


class EngineError(Exception):
    """Raised on invalid engine usage (missing numpy, bad arguments).

    The base failure mode of every vectorized engine;
    :class:`repro.engine.UnsupportedConfiguration` and
    :class:`repro.engine.UnsupportedFaultCampaign` subclass it.  Defined
    here (not in :mod:`repro.engine.vectorized`) so catching it never
    requires numpy.
    """


#: The canonical backend switch values every facade family shares.
BACKEND_CHOICES: Tuple[str, ...] = ("reference", "vectorized", "auto")

#: The kernel-tier switch shared by every vectorized engine: the two
#: numpy tiers (``"flat"``, ``"segmented"``), the optional compiled tiers
#: (``"jit"`` via numba, ``"gpu"`` via cupy — both fall back to ``"flat"``
#: when the dependency is absent), and ``"auto"`` (best available compiled
#: tier, else ``"flat"``).  Defined here — NumPy-free — so the sweep CLI
#: can enumerate the axis without loading any engine module.
KERNEL_CHOICES: Tuple[str, ...] = ("flat", "segmented", "jit", "gpu", "auto")

#: Facade families registered through :func:`register_backend_family`.
#: Guarded by ``_REGISTRY_LOCK``: facade modules register at import time,
#: but the serving layer imports facades lazily from worker threads, so
#: the check-and-set below must be atomic (RPR002).
_FAMILIES: Dict[str, Tuple[str, ...]] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend_family(family: str,
                            choices: Sequence[str] = BACKEND_CHOICES
                            ) -> Tuple[str, ...]:
    """Register (idempotently) the backend choices of a facade family.

    Returns the registered tuple, so facade modules can spell their public
    backend constant as one assignment::

        BACKENDS = register_backend_family("session")

    Re-registering a family with the same choices is a no-op; conflicting
    choices raise :class:`ValueError` (two facades must not disagree about
    what a family's switch accepts).
    """
    registered = tuple(choices)
    with _REGISTRY_LOCK:
        existing = _FAMILIES.get(family)
        if existing is not None and existing != registered:
            raise ValueError(
                f"backend family {family!r} already registered with choices "
                f"{existing}, cannot re-register with {registered}")
        _FAMILIES[family] = registered
    return registered


# The kernel tier is itself a registered family, so orchestrators discover
# it exactly like the per-facade backend switches.
register_backend_family("kernel", KERNEL_CHOICES)


def backend_families() -> Dict[str, Tuple[str, ...]]:
    """A snapshot of every registered facade family and its choices."""
    with _REGISTRY_LOCK:
        return dict(_FAMILIES)


def backend_choices(family: str) -> Tuple[str, ...]:
    """The backend choices of one registered facade family."""
    with _REGISTRY_LOCK:
        try:
            return _FAMILIES[family]
        except KeyError:
            raise KeyError(
                f"unknown backend family {family!r}; registered: "
                f"{sorted(_FAMILIES)}") from None


_T = TypeVar("_T")


class BackendDispatcher:
    """One facade's backend-selection state and fallback rule.

    Owns the lazily-built, cached vectorized engine (``factory`` builds it
    on first use; construction typically imports numpy, which is why it is
    deferred) and implements the shared dispatch contract of the
    ``backend`` switch:

    * ``"reference"`` — never touch the vectorized engine;
    * ``"vectorized"`` — run the vectorized call and surface its errors;
    * ``"auto"`` — run the vectorized call, and on a *fallback exception*
      (by default :class:`EngineError`) silently run the reference call
      instead.

    ``error`` is the facade's own exception class, raised by
    :meth:`validate` with the uniform unknown-backend message every facade
    used to spell by hand.
    """

    def __init__(self, family: str, factory: Callable[[], object],
                 error: type = ValueError,
                 choices: Optional[Sequence[str]] = None) -> None:
        self.family = family
        self.choices = tuple(choices) if choices is not None \
            else backend_choices(family)
        self._factory = factory
        self._error = error
        self._engine: Optional[object] = None
        # Provenance is per-thread: under a concurrent worker pool (the
        # serving layer shares one facade across executor threads), a
        # facade-global attribute would let one request's fallback
        # mis-attribute another request's backend.
        self._provenance = threading.local()

    # ------------------------------------------------------------------
    @property
    def last_backend_used(self) -> Optional[str]:
        """Backend that ran this thread's most recent call, or ``None``.

        Thread-local by design: each worker thread observes only the
        provenance of runs it executed itself.
        """
        return getattr(self._provenance, "backend_used", None)

    def note_backend_used(self, backend: Optional[str]) -> None:
        """Record which backend actually ran, for the calling thread."""
        self._provenance.backend_used = backend

    def validate(self, backend: str) -> str:
        """Return ``backend`` unchanged, or raise the facade's error."""
        if backend not in self.choices:
            raise self._error(
                f"unknown backend {backend!r}; expected one of {self.choices}")
        return backend

    @property
    def engine(self) -> object:
        """The cached vectorized engine, built by the factory on first use."""
        if self._engine is None:
            self._engine = self._factory()
        return self._engine

    @property
    def engine_built(self) -> bool:
        """True when the vectorized engine has been constructed and cached."""
        return self._engine is not None

    def invalidate(self) -> None:
        """Drop the cached vectorized engine (rebuilt on next use)."""
        self._engine = None

    def warm(self, *args: object, **kwargs: object) -> bool:
        """Best-effort warm-up of the cached vectorized engine.

        Builds the engine (importing numpy, and — for compiled kernel
        tiers — triggering the one-time JIT compile / cache load) and
        forwards ``*args`` to the engine's own ``warm`` method when it has
        one.  Returns ``True`` when warming ran to completion and
        ``False`` on any failure: warming is an amortization hint, never a
        correctness step, so it must not fail a run.
        """
        try:
            engine = self.engine
            warmer = getattr(engine, "warm", None)
            if callable(warmer):
                warmer(*args, **kwargs)
            return True
        except Exception:  # noqa: BLE001 - warming is advisory by contract
            return False

    # ------------------------------------------------------------------
    def call(self, chosen: str, *,
             vectorized: Callable[[object], _T],
             reference: Callable[[], _T],
             fallback: Tuple[type, ...] = (EngineError,),
             invalidate_on_fallback: bool = False) -> _T:
        """Dispatch one operation through the fallback rule.

        ``vectorized`` receives the cached engine; ``reference`` takes no
        arguments.  A ``fallback`` exception from the vectorized call is
        re-raised when ``chosen == "vectorized"`` and swallowed (running
        ``reference`` instead) when ``chosen == "auto"``;
        ``invalidate_on_fallback`` additionally drops the cached engine
        before falling back, for facades whose engine must not survive a
        failed run.
        """
        chosen = self.validate(chosen)
        if chosen != "reference":
            try:
                return vectorized(self.engine)
            except fallback:
                if chosen == "vectorized":
                    raise
                if invalidate_on_fallback:
                    self.invalidate()
        return reference()
