"""Grid-batched campaign evaluation: one stacked kernel pass per sweep axis.

The per-case sweep path rebuilds its measurement one scenario at a time:
each case compiles (or fetches) its trace, runs the flat kernel for its two
operating modes, and assembles its record.  Paper-style grids are far more
structured than that — Table 1 is *(algorithm x planner)* on one geometry,
the scaling studies are *(algorithm x order x size)* — and everything on
one geometry can share a single trip through the engine.

:class:`BatchedGridEngine` exploits exactly that.  It groups a grid's
cases by geometry axes, compiles every (algorithm, order, direction) trace
once into a shared :class:`~repro.march.execution.TraceCache`, and hands
each group — all algorithms, all orders, both planners — to the stacked
flat kernel (:meth:`repro.engine.vectorized.VectorizedEngine
.run_aggregates_batch` / :meth:`repro.bist.controller.BistController
.measure_batch`) as **one** batch.  Records are assembled through the very
same helpers the per-case work units use
(:func:`repro.sweep.runner.power_record` / :func:`~repro.sweep.runner
.prr_record`), and the kernel's per-slot reductions are stacking-invariant,
so every record is bit-identical to what ``strategy="percase"`` produces
(``elapsed_s``, a wall-clock observation, aside).

Cases the stacked pass cannot represent — reference-backend scenarios,
fault-coverage campaigns, runs the exact bulk replay rejects — fall back to
the ordinary per-case work unit *in the same process*, still sharing the
group's trace cache, with per-case semantics (including ``backend="auto"``
mode-by-mode fallback) preserved verbatim.

This engine is the ``strategy="batched"`` seam of
:class:`repro.sweep.runner.SweepRunner`; journal, resume and shard
semantics live entirely in the runner and are unchanged by the strategy.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Tuple

from ..march.element import AddressingDirection
from ..march.library import get_algorithm
from ..sram.memory import OperatingMode
from .dispatch import EngineError

try:  # numpy is required for the stacked kernel only
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise EngineError(
            "the batched grid engine requires numpy; use the per-case "
            "sweep strategy (strategy='percase') instead")


class BatchedGridEngine:
    """Evaluate a sweep grid with per-geometry stacked kernel passes.

    ``cases`` is any mix of :class:`~repro.sweep.runner.SweepCase`,
    :class:`~repro.sweep.runner.PrrCase` and
    :class:`~repro.sweep.runner.CoverageCase` scenarios.
    :meth:`completions` yields ``(position, record)`` pairs — ``position``
    indexes ``cases`` — as each scenario's record materialises, which is
    what the runner's streaming journal/progress loop consumes.
    """

    def __init__(self, cases, worker_state=None) -> None:
        _require_numpy()
        # Deferred: the runner imports this module lazily (numpy optional),
        # so importing it back here at module level would be circular.
        from ..sweep import runner as sweep_runner

        self._runner = sweep_runner
        self.cases = list(cases)
        #: Optional pre-warmed :class:`repro.sweep.runner._WorkerState` to
        #: evaluate under.  Long-lived callers (the campaign service runs
        #: one batch per request wave on a pool thread) pass their thread's
        #: persistent state so compiled traces and facades stay warm across
        #: batches; by default each :meth:`completions` call builds a fresh
        #: one scoped to the run.
        self._worker_state = worker_state
        #: Concrete kernel tier of the most recent stacked pass (mirrors
        #: ``last_backend_used`` on the facades): the tier that actually
        #: executed, after availability fallback — ``None`` before the
        #: first stacked group runs.
        self.last_kernel_used = None

    def _noted(self, case, record):
        """Stamp :attr:`last_kernel_used` from a finished record and warn
        (once per process, via the engine layer's shared registry) when
        the case's requested tier silently fell back."""
        from .vectorized import note_kernel_fallback  # deferred: numpy path

        used = getattr(record, "kernel_used", "") or None
        if used is not None:
            self.last_kernel_used = used
        note_kernel_fallback(getattr(case, "kernel", None), used,
                             context="batched grid")
        return record

    # ------------------------------------------------------------------
    def completions(self) -> Iterator[Tuple[int, object]]:
        """Yield every case's ``(position, record)``, stacked where possible.

        A process-local worker state (the same construct the per-case
        strategy pre-warms in its pool workers) is installed for the
        duration, so the fallback per-case executions share the batch's
        memoised orders, facades and compiled traces.
        """
        runner = self._runner
        state = self._worker_state if self._worker_state is not None \
            else runner._WorkerState()
        previous = runner._get_worker_state()
        runner._set_worker_state(state)
        try:
            prr_groups, power_groups, percase = self._plan()
            # Records emit in input order (matching the per-case
            # sequential journal order); each stacked group evaluates
            # lazily, when its first member is reached.
            evaluators = {}
            for members in prr_groups.values():
                runner_fn = self._run_prr_group
                for position, _ in members:
                    evaluators[position] = (runner_fn, state, members)
            for members in power_groups.values():
                runner_fn = self._run_power_group
                for position, _ in members:
                    evaluators[position] = (runner_fn, state, members)
            ready = {}
            percase_cases = dict(percase)
            for position in range(len(self.cases)):
                if position in percase_cases:
                    yield position, runner.execute_case(
                        percase_cases[position])
                    continue
                if position not in ready:
                    runner_fn, group_state, members = evaluators[position]
                    ready.update(runner_fn(group_state, members))
                yield position, ready.pop(position)
        finally:
            runner._set_worker_state(previous)

    # ------------------------------------------------------------------
    def _plan(self):
        """Split the grid into stackable groups and per-case leftovers.

        PRR campaigns group per BIST-controller configuration, power
        sweeps per (geometry, direction, kernel) — different algorithms,
        address orders and requested backends stack together; only the
        reference backend (which has no bulk kernel) and coverage
        campaigns (a different engine family) stay per-case.
        """
        runner = self._runner
        prr_groups: Dict[Tuple, List[Tuple[int, object]]] = {}
        power_groups: Dict[Tuple, List[Tuple[int, object]]] = {}
        percase: List[Tuple[int, object]] = []
        for position, case in enumerate(self.cases):
            if isinstance(case, runner.PrrCase) and case.backend != "reference":
                key = (case.rows, case.columns, case.bits_per_word,
                       case.backend, case.banks, case.bank_interleave,
                       case.kernel)
                prr_groups.setdefault(key, []).append((position, case))
            elif isinstance(case, runner.SweepCase) \
                    and case.backend != "reference":
                key = (case.rows, case.columns, case.bits_per_word,
                       case.any_direction, case.banks, case.bank_interleave,
                       case.kernel)
                power_groups.setdefault(key, []).append((position, case))
            else:
                percase.append((position, case))
        return prr_groups, power_groups, percase

    # ------------------------------------------------------------------
    def _run_prr_group(self, state, members):
        """One stacked pass over a BIST power-campaign group (both planners)."""
        runner = self._runner
        controller = state.controller_for(members[0][1])
        requests = []
        for _, case in members:
            algorithm = get_algorithm(case.algorithm)
            requests.append((algorithm, False))
            requests.append((algorithm, True))

        started = time.perf_counter()
        try:
            outcomes = controller.measure_batch(requests, collect_errors=True)
        except EngineError:
            # The vectorized campaign is unavailable as a whole (e.g. a
            # construction failure): per-case dispatch owns the fallback
            # and error-surfacing semantics.
            outcomes = None
        elapsed = time.perf_counter() - started

        if outcomes is None:
            for position, case in members:
                yield position, runner.execute_case(case)
            return
        share = elapsed / len(members)
        for index, (position, case) in enumerate(members):
            functional = outcomes[2 * index]
            low_power = outcomes[2 * index + 1]
            if isinstance(functional, Exception) or \
                    isinstance(low_power, Exception):
                # Exact per-case semantics for the unsupported run:
                # backend="auto" falls back to the reference engine,
                # backend="vectorized" surfaces the engine error.
                yield position, runner.execute_case(case)
            else:
                yield position, self._noted(case, runner.prr_record(
                    case, functional, low_power, share))

    def _run_power_group(self, state, members):
        """One stacked pass over a session power group (all orders, both
        planners)."""
        runner = self._runner
        from .vectorized import VectorizedEngine  # deferred: numpy optional

        first_case = members[0][1]
        geometry = first_case.geometry()
        direction = AddressingDirection(first_case.any_direction)
        engine = VectorizedEngine(geometry, any_direction=direction,
                                  detailed=False, trace_cache=state.traces,
                                  kernel=first_case.kernel)
        requests = []
        orders = []
        for _, case in members:
            algorithm = get_algorithm(case.algorithm)
            order = state.order_for(case.order, geometry)
            trace = state.traces.get(algorithm, order, direction)
            orders.append(order)
            requests.append((algorithm, OperatingMode.FUNCTIONAL, trace))
            requests.append((algorithm, OperatingMode.LOW_POWER_TEST, trace))

        started = time.perf_counter()
        outcomes = engine.run_aggregates_batch(requests, collect_errors=True)
        elapsed = time.perf_counter() - started

        share = elapsed / len(members)
        for index, (position, case) in enumerate(members):
            pair = outcomes[2 * index:2 * index + 2]
            if any(isinstance(outcome, Exception) for outcome in pair):
                yield position, runner.execute_case(case)
                continue
            algorithm = get_algorithm(case.algorithm)
            results = []
            for mode, (by_source, counters, cycles, _) in zip(
                    (OperatingMode.FUNCTIONAL, OperatingMode.LOW_POWER_TEST),
                    pair):
                results.append(engine.result_from_aggregates(
                    algorithm, mode, by_source, counters, cycles,
                    order_name=orders[index].name))
            yield position, self._noted(case, runner.power_record(
                case, results[0], results[1], "vectorized", share))
