"""Numba-compiled kernel tier (``kernel="jit"``) of the vectorized engine.

A native-code port of the flat kernel's per-(unit, element) slot
reductions — the decay-sum and bincount core factored out of
:meth:`repro.engine.vectorized.VectorizedEngine._low_power_flat` as
:func:`repro.engine.vectorized._reduce_tile_arrays`.  The array program is
unchanged; this module re-derives it as a scalar recurrence per segment
under ``@numba.njit(parallel=True, cache=True)``:

* the segment tile is partitioned into contiguous blocks, each reduced by
  one ``prange`` worker into its *own* row of a per-block accumulator
  (no scatter races on shared slots);
* the per-block partials are summed once at the end.

Integer counters are exact under any summation order, so the jit tier's
verdicts and stress counts are bit-identical to the flat tier.  The float
energy sums may differ from numpy's ``bincount`` only by summation order
(associativity), which is inside the project-wide 1e-9 differential gate.

``cache=True`` persists the compiled kernel on disk, so the one-time
compile cost is paid per machine, not per process; :func:`warm` loads (or
builds) the cache eagerly with a dummy one-segment reduction, which is how
:meth:`BackendDispatcher.warm` amortizes warm-up ahead of a measured run.

This module is imported lazily by
:func:`repro.engine.vectorized.kernel_module` — never at ``import repro``
time — and its import fails cleanly (``ImportError``) when numba is
absent, which :func:`repro.engine.vectorized.resolve_kernel` turns into a
single-warning fallback to the ``"flat"`` tier.
"""

from __future__ import annotations

import math

import numba
import numpy as np

#: Cap on prange blocks: enough to saturate threads with load imbalance
#: headroom, small enough that the (n_blocks, total_slots) partials stay
#: cache-resident for typical slot counts.
MAX_BLOCKS = 64


@numba.njit(parallel=True, cache=True)
def _reduce_segments(slots, m, first, last, carry, chained, delta_seg, x,
                     n_words, bits, coeff, boundary_gain, total_slots,
                     n_blocks):
    wl = np.zeros((n_blocks, total_slots), dtype=np.int64)
    enabled_sum = np.zeros((n_blocks, total_slots), dtype=np.int64)
    prc = np.zeros((n_blocks, total_slots), dtype=np.int64)
    recharge = np.zeros((n_blocks, total_slots), dtype=np.float64)
    restore = np.zeros((n_blocks, total_slots), dtype=np.float64)
    n = slots.shape[0]
    step = (n + n_blocks - 1) // n_blocks
    for b in numba.prange(n_blocks):
        lo = b * step
        hi = min(lo + step, n)
        for i in range(lo, hi):
            slot = slots[i]
            m_i = m[i]
            out_word = last[i] + delta_seg[i]
            valid_out = 1 if (out_word >= 0 and out_word < n_words) else 0
            if not carry[i]:
                wl[b, slot] += 1
            enabled_sum[b, slot] += (m_i - 1) + valid_out
            if not chained[i]:
                # State-dependent closed forms: chain-free segments only.
                first_neighbour = first[i] + delta_seg[i]
                valid_first = 1 if (first_neighbour >= 0
                                    and first_neighbour < n_words) else 0
                n_newly = n_words - 1 - valid_first
                prc[b, slot] += (n_newly + (m_i - 1)) * bits
                x_f = x[i]
                decay_unit = -math.expm1(-x_f)
                series_j = m_i - 2 + valid_out if m_i >= 2 else 0
                series = (series_j
                          - math.exp(-x_f) * -math.expm1(-series_j * x_f)
                          / decay_unit)
                recharge[b, slot] += coeff * series
                visited = ((m_i - 1)
                           - boundary_gain * math.exp(-x_f)
                           * -math.expm1(-(m_i - 1) * x_f) / decay_unit)
                untouched = ((n_words - m_i - valid_out)
                             * -(boundary_gain * math.exp(-m_i * x_f) - 1.0))
                restore[b, slot] += coeff * (visited + untouched)
    return wl, enabled_sum, prc, recharge, restore


def reduce_tile(slots, m, first, last, carry, chained, delta_seg, x,
                n_words, bits, coeff, boundary_gain, total_slots):
    """The flat kernel's per-tile slot reductions, compiled.

    Same signature and return contract as the numpy tier
    (:func:`repro.engine.vectorized._reduce_tile_arrays` with
    ``xp=numpy``): five per-slot accumulator arrays of length
    ``total_slots``.  Inputs are normalised to contiguous canonical
    dtypes so the cached compilation is hit regardless of how the caller
    sliced its segment arrays.
    """
    n = int(slots.shape[0])
    n_blocks = max(1, min(MAX_BLOCKS, numba.get_num_threads() * 4, n))
    wl, enabled_sum, prc, recharge, restore = _reduce_segments(
        np.ascontiguousarray(slots, dtype=np.int64),
        np.ascontiguousarray(m, dtype=np.int64),
        np.ascontiguousarray(first, dtype=np.int64),
        np.ascontiguousarray(last, dtype=np.int64),
        np.ascontiguousarray(carry, dtype=np.bool_),
        np.ascontiguousarray(chained, dtype=np.bool_),
        np.ascontiguousarray(delta_seg, dtype=np.int64),
        np.ascontiguousarray(x, dtype=np.float64),
        np.int64(n_words), np.int64(bits), float(coeff),
        float(boundary_gain), np.int64(total_slots), np.int64(n_blocks))
    return (wl.sum(axis=0), enabled_sum.sum(axis=0), prc.sum(axis=0),
            recharge.sum(axis=0), restore.sum(axis=0))


def warm() -> None:
    """Load (or build) the on-disk compiled kernel with a dummy reduction."""
    zero = np.zeros(1, dtype=np.int64)
    reduce_tile(zero, np.ones(1, dtype=np.int64), zero, zero,
                np.zeros(1, dtype=np.bool_), np.zeros(1, dtype=np.bool_),
                zero, np.full(1, 0.5, dtype=np.float64),
                n_words=1, bits=1, coeff=1.0, boundary_gain=1.0,
                total_slots=1)
