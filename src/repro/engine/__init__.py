"""Vectorized batch execution backends (power measurement + fault campaigns).

* :mod:`repro.engine.dispatch` — the shared backend-selection seam: the
  family registry, the :class:`BackendDispatcher` fallback scaffold used by
  every facade, and the NumPy-free :class:`EngineError` root of the engine
  exception hierarchy.
* :mod:`repro.engine.vectorized` — the NumPy power-measurement engine:
  simulates an entire March element over the whole array as array operations
  (background state, pre-charge activity masks, RES stress counters and
  per-event energy accumulation as vector reductions) instead of per-cell
  Python loops.
* :mod:`repro.engine.fault_campaign` — the NumPy fault-campaign engine:
  simulates every injection of a fault class simultaneously as parallel
  victim-state arrays over one shared compiled operation trace, emitting
  per-fault detection verdicts bit-identical to the reference simulator.
* :mod:`repro.engine.power_campaign` — the NumPy BIST power-campaign
  engine: replays a compiled operation trace and computes the pre-charge
  activity, comparator outcomes and all five Section 5 power sources in
  closed vector form, for both pre-charge planners (the measured Table 1
  workload).
* :mod:`repro.engine.compiled` / :mod:`repro.engine.gpu` — optional
  compiled kernel tiers (``kernel="jit"``: a Numba port of the flat
  kernel's per-slot reductions; ``kernel="gpu"``: the same array program
  on CuPy).  Imported lazily on first use and never required: when the
  dependency is absent the engine falls back to the ``"flat"`` numpy
  kernel with a single warning, and every result records the tier that
  actually ran.
* :mod:`repro.engine.grid` — the grid-batched evaluation layer:
  per-geometry groups of sweep scenarios (all algorithms, orders and both
  planners) evaluated through one stacked flat-kernel pass sharing one
  compiled-trace cache, with records bit-identical to the per-case path
  (the ``strategy="batched"`` seam of :class:`repro.sweep.SweepRunner`).

The engines plug into their session APIs through a ``backend`` switch
(:class:`repro.core.session.TestSession`,
:class:`repro.faults.FaultSimulator` and
:class:`repro.bist.BistController`: ``"reference"``, ``"vectorized"`` or
``"auto"``) and are what make the paper-scale 512 x 512 measured
experiments, the DOF-1 coverage campaigns and the :mod:`repro.sweep`
scenario grids tractable.

Attribute access is lazy (PEP 562): importing :mod:`repro.engine` — or the
numpy-free :mod:`repro.engine.dispatch` — never loads the vectorized
modules, so the scalar layers and the sweep orchestrator can catch
:class:`EngineError` and consult the backend registry without numpy
installed.
"""

from importlib import import_module
from typing import TYPE_CHECKING

#: Which submodule provides each lazily-exported name.
_EXPORTS = {
    "VectorizedEngine": ".vectorized",
    "CellStressTotals": ".vectorized",
    "UnsupportedConfiguration": ".vectorized",
    # kernel-tier surface (the "jit"/"gpu" compiled tiers and their
    # availability/fallback helpers) lives on the vectorized module.
    "KERNELS": ".vectorized",
    "default_kernel": ".vectorized",
    "available_kernels": ".vectorized",
    "active_kernel": ".vectorized",
    "kernel_available": ".vectorized",
    "resolve_kernel": ".vectorized",
    "reset_kernel_state": ".vectorized",
    "note_kernel_fallback": ".vectorized",
    "VectorizedFaultCampaign": ".fault_campaign",
    "UnsupportedFaultCampaign": ".fault_campaign",
    "VectorizedPowerCampaign": ".power_campaign",
    "BatchedGridEngine": ".grid",
    # dispatch is numpy-free; resolving these never loads an engine module.
    "EngineError": ".dispatch",
    "BackendDispatcher": ".dispatch",
    "BACKEND_CHOICES": ".dispatch",
    "KERNEL_CHOICES": ".dispatch",
    "register_backend_family": ".dispatch",
    "backend_families": ".dispatch",
    "backend_choices": ".dispatch",
}

__all__ = list(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from .dispatch import (
        BACKEND_CHOICES,
        KERNEL_CHOICES,
        BackendDispatcher,
        EngineError,
        backend_choices,
        backend_families,
        register_backend_family,
    )
    from .fault_campaign import UnsupportedFaultCampaign, VectorizedFaultCampaign
    from .grid import BatchedGridEngine
    from .power_campaign import VectorizedPowerCampaign
    from .vectorized import (
        KERNELS,
        CellStressTotals,
        UnsupportedConfiguration,
        VectorizedEngine,
        active_kernel,
        available_kernels,
        default_kernel,
        kernel_available,
        note_kernel_fallback,
        reset_kernel_state,
        resolve_kernel,
    )


def __getattr__(name: str):
    """Resolve an exported name from its submodule on first access."""
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value  # cache: subsequent access skips __getattr__
    return value


def __dir__():
    """Advertise the lazy exports alongside the module globals."""
    return sorted(set(globals()) | set(_EXPORTS))
