"""Vectorized batch execution backend for March test power measurement.

* :mod:`repro.engine.vectorized` — the NumPy execution engine: simulates an
  entire March element over the whole array as array operations (background
  state, pre-charge activity masks, RES stress counters and per-event energy
  accumulation as vector reductions) instead of per-cell Python loops.

The engine plugs into the existing session API through the ``backend``
switch of :class:`repro.core.session.TestSession` (``"reference"``,
``"vectorized"`` or ``"auto"``) and is what makes the paper-scale 512 x 512
measured experiments and the :mod:`repro.sweep` scenario grids tractable.
"""

from .vectorized import (
    CellStressTotals,
    EngineError,
    UnsupportedConfiguration,
    VectorizedEngine,
)

__all__ = [
    "VectorizedEngine",
    "CellStressTotals",
    "EngineError",
    "UnsupportedConfiguration",
]
