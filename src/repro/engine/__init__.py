"""Vectorized batch execution backends (power measurement + fault campaigns).

* :mod:`repro.engine.vectorized` — the NumPy power-measurement engine:
  simulates an entire March element over the whole array as array operations
  (background state, pre-charge activity masks, RES stress counters and
  per-event energy accumulation as vector reductions) instead of per-cell
  Python loops.
* :mod:`repro.engine.fault_campaign` — the NumPy fault-campaign engine:
  simulates every injection of a fault class simultaneously as parallel
  victim-state arrays over one shared compiled operation trace, emitting
  per-fault detection verdicts bit-identical to the reference simulator.
* :mod:`repro.engine.power_campaign` — the NumPy BIST power-campaign
  engine: replays a compiled operation trace and computes the pre-charge
  activity, comparator outcomes and all five Section 5 power sources in
  closed vector form, for both pre-charge planners (the measured Table 1
  workload).

The engines plug into their session APIs through a ``backend`` switch
(:class:`repro.core.session.TestSession`,
:class:`repro.faults.FaultSimulator` and
:class:`repro.bist.BistController`: ``"reference"``, ``"vectorized"`` or
``"auto"``) and are what make the paper-scale 512 x 512 measured
experiments, the DOF-1 coverage campaigns and the :mod:`repro.sweep`
scenario grids tractable.
"""

from .vectorized import (
    CellStressTotals,
    EngineError,
    UnsupportedConfiguration,
    VectorizedEngine,
)
from .fault_campaign import (
    UnsupportedFaultCampaign,
    VectorizedFaultCampaign,
)
from .power_campaign import VectorizedPowerCampaign

__all__ = [
    "VectorizedEngine",
    "CellStressTotals",
    "EngineError",
    "UnsupportedConfiguration",
    "VectorizedFaultCampaign",
    "UnsupportedFaultCampaign",
    "VectorizedPowerCampaign",
]
