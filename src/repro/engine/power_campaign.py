"""NumPy power-campaign backend for the BIST layer (measured Table 1 at scale).

The measured side of the paper's Table 1 — the Power Reduction Ratio of the
low-power test mode against functional mode — was the last workload still
walking the behavioural :class:`repro.sram.SRAM` one access at a time: the
BIST controller needed minutes per algorithm on the real 512 x 512 array
while the analytical :mod:`repro.core.prr` path answers in microseconds.

:class:`VectorizedPowerCampaign` closes that gap.  It replays a compiled
:class:`~repro.march.execution.OperationTrace` (memoised in a shared
:class:`~repro.march.execution.TraceCache`, the same compiled-run currency
the fault-campaign backends use) and computes, in closed vector form:

* the per-cycle pre-charge activity and all five Section 5 power sources,
  for both :class:`~repro.core.lowpower.FunctionalModePlanner` and
  :class:`~repro.core.lowpower.LowPowerTestPlanner` semantics — including
  the Figure 7 end-of-row restoration cycle — through the aggregate core of
  :class:`~repro.engine.vectorized.VectorizedEngine`;
* the response-comparator outcomes (pass/fail, mismatch count and the
  bounded failure log) from the trace's element backgrounds, instead of
  reading cells one by one.

Results are equivalent to the behavioural memory in energy totals (up to
floating-point summation order) and identical in pass/fail verdicts; the
differential suite (``tests/test_prr_differential.py``) asserts both across
the whole algorithm library.  Configurations the bulk replay cannot
represent — injected-fault memories, address orders that do not keep the
pre-charged traversal neighbour — raise
:class:`~repro.engine.vectorized.UnsupportedConfiguration` so the BIST
controller's ``backend="auto"`` can fall back to the reference backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..bist.backend import planner_name
from ..bist.comparator import ComparatorLog
from ..circuit.technology import TechnologyParameters, default_technology
from ..march.algorithm import MarchAlgorithm
from ..march.element import AddressingDirection
from ..march.execution import OperationTrace, TraceCache
from ..march.ordering import AddressOrder
from ..power.accounting import EnergyLedger
from ..sram.array import BackgroundFunction, solid_background
from ..sram.geometry import ArrayGeometry
from ..sram.memory import OperatingMode
from .vectorized import VectorizedEngine, _require_numpy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..bist.controller import BistResult

try:  # numpy is required for this backend only
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]


class VectorizedPowerCampaign:
    """Batch BIST power measurement over a shared compiled operation trace.

    Implements the :class:`repro.bist.backend.PowerBackend` protocol.  One
    campaign instance owns a :class:`~repro.march.execution.TraceCache`
    (optionally shared with a fault simulator) and one
    :class:`~repro.engine.vectorized.VectorizedEngine` per address order,
    so a full library sweep compiles each (algorithm, order, direction)
    run once and replays it for both operating modes.
    """

    name = "vectorized"

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 trace_cache: Optional[TraceCache] = None,
                 kernel: Optional[str] = None) -> None:
        _require_numpy()
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.any_direction = any_direction
        #: kernel tier of the per-order aggregate engines (``None``
        #: follows the process default; see
        #: :func:`repro.engine.vectorized.default_kernel`).
        self.kernel = kernel
        #: compiled traces shared across runs (and optionally across tools).
        self.traces = trace_cache if trace_cache is not None else TraceCache()
        self._engines: Dict[int, Tuple[AddressOrder, VectorizedEngine]] = {}
        # Keyed by id() — or None for the default background — with the
        # function kept in the value (like _engines) so a recycled id
        # cannot alias a different background.
        self._initial_values: Dict[Optional[int],
                                   Tuple[BackgroundFunction, "np.ndarray"]] = {}

    # ------------------------------------------------------------------
    def _engine_for(self, order: AddressOrder) -> VectorizedEngine:
        """The cached aggregate engine for ``order`` (stress tracking off)."""
        entry = self._engines.get(id(order))
        if entry is None:
            engine = VectorizedEngine(self.geometry, tech=self.tech, order=order,
                                      any_direction=self.any_direction,
                                      detailed=False, trace_cache=self.traces,
                                      kernel=self.kernel)
            self._engines[id(order)] = (order, engine)
            return engine
        return entry[1]

    def trace_for(self, algorithm: MarchAlgorithm,
                  order: AddressOrder) -> OperationTrace:
        """The cached compiled trace of ``algorithm`` over ``order``."""
        return self.traces.get(algorithm, order, self.any_direction)

    def warm(self, algorithm: MarchAlgorithm, order: AddressOrder
             ) -> "VectorizedPowerCampaign":
        """Amortize one run's cold costs: compile (or load from cache) the
        resolved kernel tier and this campaign's trace + segment structure
        for ``(algorithm, order)``.  Best-effort companion of
        :meth:`repro.engine.dispatch.BackendDispatcher.warm`."""
        self._engine_for(order).warm(algorithm)
        return self

    # ------------------------------------------------------------------
    # Public API (the PowerBackend protocol)
    # ------------------------------------------------------------------
    def measure(self, algorithm: MarchAlgorithm, order: AddressOrder,
                low_power: bool,
                background: Optional[BackgroundFunction] = None,
                log_limit: int = 64) -> "BistResult":
        """Measure one BIST run in closed vector form.

        Returns the same :class:`~repro.bist.controller.BistResult` the
        reference backend produces: energy totals per Section 5 source from
        the aggregate engine, plus the comparator verdict derived from the
        trace (see :meth:`comparator_outcomes`).  Raises
        :class:`~repro.engine.vectorized.UnsupportedConfiguration` when the
        run cannot be replayed in bulk.
        """
        trace = self.trace_for(algorithm, order)
        engine = self._engine_for(order)
        mode = (OperatingMode.LOW_POWER_TEST if low_power
                else OperatingMode.FUNCTIONAL)
        by_source, _, cycles, _ = engine.run_aggregates(
            algorithm, mode, trace=trace)
        return self._assemble_result(
            engine, algorithm, trace, low_power, (by_source, cycles),
            background, log_limit)

    def measure_batch(self, requests, order: AddressOrder,
                      background: Optional[BackgroundFunction] = None,
                      log_limit: int = 64, collect_errors: bool = False):
        """Measure a stack of BIST runs in one flat kernel pass.

        ``requests`` is a sequence of ``(algorithm, low_power)`` pairs —
        e.g. both operating modes of every algorithm of a sweep axis.  All
        units share one compiled-trace cache and one stacked trip through
        :meth:`~repro.engine.vectorized.VectorizedEngine.run_aggregates_batch`,
        and each unit's :class:`~repro.bist.controller.BistResult` is
        bit-identical to what :meth:`measure` returns for it alone.  With
        ``collect_errors=True`` an unsupported unit yields its
        :class:`~repro.engine.vectorized.UnsupportedConfiguration` in its
        result slot instead of failing the whole batch.
        """
        engine = self._engine_for(order)
        units = []
        for algorithm, low_power in requests:
            mode = (OperatingMode.LOW_POWER_TEST if low_power
                    else OperatingMode.FUNCTIONAL)
            units.append((algorithm, mode, self.trace_for(algorithm, order)))
        outcomes = engine.run_aggregates_batch(units,
                                               collect_errors=collect_errors)
        results = []
        for (algorithm, low_power), (_, _, trace), outcome in zip(
                requests, units, outcomes):
            if isinstance(outcome, Exception):
                results.append(outcome)
                continue
            by_source, _, cycles, _ = outcome
            results.append(self._assemble_result(
                engine, algorithm, trace, low_power, (by_source, cycles),
                background, log_limit))
        return results

    def _assemble_result(self, engine: VectorizedEngine,
                         algorithm: MarchAlgorithm, trace: OperationTrace,
                         low_power: bool, aggregates,
                         background: Optional[BackgroundFunction],
                         log_limit: int) -> "BistResult":
        """Build the :class:`BistResult` of one measured unit.

        Shared verbatim by :meth:`measure` and :meth:`measure_batch`, so
        the two paths cannot drift in how they derive comparator verdicts
        or energy ledgers from the raw aggregates.
        """
        from ..bist.controller import BistResult  # deferred: avoids an import cycle

        by_source, cycles = aggregates
        mode = (OperatingMode.LOW_POWER_TEST if low_power
                else OperatingMode.FUNCTIONAL)
        failures, failure_log = self.comparator_outcomes(
            trace, background, log_limit=log_limit)
        ledger = EnergyLedger.from_aggregates(
            engine.clock.period, by_source, cycles=cycles,
            label=f"BIST [{mode.value}] (vectorized)")
        return BistResult(
            algorithm=algorithm.name,
            low_power_mode=low_power,
            passed=failures == 0,
            failures=failures,
            cycles=cycles,
            total_energy=ledger.total_energy(),
            average_power=ledger.average_power(),
            energy_by_source=ledger.energy_by_source(),
            failure_log=failure_log,
            planner=planner_name(low_power),
            backend=self.name,
            kernel=engine.last_kernel_used or "",
        )

    # ------------------------------------------------------------------
    # Comparator outcomes in closed form
    # ------------------------------------------------------------------
    def comparator_outcomes(self, trace: OperationTrace,
                            background: Optional[BackgroundFunction] = None,
                            log_limit: int = 64
                            ) -> Tuple[int, List[ComparatorLog]]:
        """Mismatch count and bounded failure log of a fault-free replay.

        March elements apply the same operation sequence to every address,
        so on a fault-free memory a read's observed value is uniform across
        the element — the last value written earlier in the element, else
        the element's background
        (:meth:`~repro.march.execution.OperationTrace.element_backgrounds`)
        — except for reads that precede the algorithm's first write, which
        observe the per-cell initial ``background``.  Mismatches therefore
        reduce to a handful of per-element masks; the failure count is a
        sum of mask populations and the log keeps the first ``log_limit``
        failing accesses in exact global cycle order, matching the
        reference comparator entry for entry.
        """
        failures = 0
        entries: List[ComparatorLog] = []
        walks = trace.element_walks()
        for element, element_bg, (_, rows, words) in zip(
                trace.elements, trace.element_backgrounds(), walks):
            n_ops = element.operation_count
            n_addr = int(rows.size)
            pending: Optional[int] = None
            #: (op_index, expected, observed uniform value or per-address
            #: array, mismatch mask or None for an all-addresses mismatch).
            specs = []
            for k, operation in enumerate(element.operations):
                if operation.is_write:
                    pending = operation.value
                    continue
                expected = operation.value
                if pending is not None:
                    if pending != expected:
                        specs.append((k, expected, pending, None))
                elif element_bg is not None:
                    if element_bg != expected:
                        specs.append((k, expected, element_bg, None))
                else:
                    observed = self._initial_word_values(background)[rows, words]
                    mask = observed != expected
                    if np.any(mask):
                        specs.append((k, expected, observed, mask))
            if not specs:
                continue
            for _, _, _, mask in specs:
                failures += n_addr if mask is None else int(np.count_nonzero(mask))
            need = log_limit - len(entries)
            if need <= 0:
                continue
            # The first `need` failures of this element are among the first
            # `need` of each spec (address indices are increasing per spec),
            # so collecting that many per spec and merging is exact.
            candidates = []
            for k, expected, observed, mask in specs:
                if mask is None:
                    indices = range(min(need, n_addr))
                    observed_at = [observed] * min(need, n_addr)
                else:
                    chosen = np.flatnonzero(mask)[:need]
                    indices = chosen.tolist()
                    observed_at = observed[chosen].tolist()
                candidates.extend(
                    (index, k, expected, int(value))
                    for index, value in zip(indices, observed_at))
            candidates.sort(key=lambda entry: (entry[0], entry[1]))
            entries.extend(
                ComparatorLog(cycle=element.base_step + index * n_ops + k,
                              row=int(rows[index]), word=int(words[index]),
                              expected=expected, observed=value)
                for index, k, expected, value in candidates[:need])
        return failures, entries

    def _initial_word_values(self, background: Optional[BackgroundFunction]
                             ) -> "np.ndarray":
        """Initial word value per (row, word) under ``background``.

        Only needed when a read precedes the algorithm's first write (no
        library algorithm does this), so the per-cell Python evaluation of
        the background function is lazy and memoised per function identity.
        """
        key = None if background is None else id(background)
        if background is None:
            background = solid_background(0)
        cached = self._initial_values.get(key)
        if cached is not None:
            return cached[1]
        geo = self.geometry
        values = np.empty((geo.rows, geo.words_per_row), dtype=np.int64)
        for row in range(geo.rows):
            for word in range(geo.words_per_row):
                value = 0
                for position, column in enumerate(geo.columns_of_word(word)):
                    value |= (background(row, column) & 1) << position
                values[row, word] = value
        self._initial_values[key] = (background, values)
        return values
