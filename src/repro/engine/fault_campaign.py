"""NumPy-vectorized fault-campaign engine.

The reference fault path simulates one injected fault at a time: a complete
March execution per injection, even though every injection of a campaign
replays the *same* operation trace.  A full single-cell + coupling campaign
on the paper's 512 x 512 array is tens of thousands of complete March runs
— effectively unrunnable in scalar Python.

This engine exploits the structure the scalar simulator rediscovers on
every run:

* a March element applies its operations to every address, so each victim
  (and each aggressor) is visited exactly once per element, at a position
  given by the address order's rank of that cell — the whole schedule of
  one injection collapses to a handful of integers per element;
* every cell except the victim behaves fault-free, and a validated March
  algorithm reads exactly what it wrote, so the fault-free memory (cell
  values, data-bus value, aggressor state) is known in closed form from
  the trace — only the victim's state must actually be simulated;
* therefore all injections of one fault class can be simulated
  *simultaneously*: the victims' states become parallel NumPy arrays, and
  each March operation is a handful of vector expressions applied to every
  injection at once.

Per-fault detection verdicts (detected / first detection step / mismatch
count) are bit-identical to the reference simulator — the test-suite
asserts this across every standard fault model, both addressing directions
and several address orders.  Fault models the engine has no kernel for
(user-defined :class:`~repro.faults.models.FaultModel` subclasses) raise
:class:`UnsupportedFaultCampaign`, so ``backend="auto"`` campaigns fall
back to the reference path instead of silently mis-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..march.algorithm import MarchAlgorithm, MarchValidationError
from ..march.element import AddressingDirection
from ..march.execution import OperationTrace, compile_trace
from ..march.ordering import AddressOrder
from ..sram.geometry import ArrayGeometry
from .vectorized import KERNELS, EngineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.simulator import DetectionResult, FaultInjection

try:  # numpy is required for this backend only; the scalar path runs without it
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]


class UnsupportedFaultCampaign(EngineError):
    """The vectorized engine cannot represent this campaign exactly.

    Raised for fault models without a vector kernel (user-defined
    subclasses), word-oriented geometries, unvalidated algorithms (whose
    fault-free bus values are not known in closed form), or a geometry
    mismatch between simulator and address order.  The reference backend
    handles every such case; ``backend="auto"`` falls back automatically.
    """


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise EngineError(
            "the vectorized fault-campaign engine requires numpy; install "
            "numpy or use backend='reference'")


#: Encoding of the scalar simulator's ``CellState.value is None`` in the
#: int8 state arrays (cells start unwritten; stuck-open cells never leave it).
_NONE = -1


def _encode(value: Optional[int]) -> int:
    """Map ``None``/0/1 (the scalar cell value domain) onto int8 codes."""
    return _NONE if value is None else int(value)


# ----------------------------------------------------------------------
# Per-element campaign context (shared by every fault-class group)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ElementContext:
    """Closed-form facts about one element every kernel needs.

    ``bg_before`` is the homogeneous fault-free cell value when the
    element starts (``-1`` before the first write); ``prev_value`` the
    fault-free data-bus value just before the element's first access
    (the last operation value of the previous element, 0 at test start);
    ``last_op_value`` the bus value after any non-first address finishes
    its visit — together they give the bus state preceding any victim
    visit without replaying the trace.
    """

    up: bool
    operations: Tuple
    k: int
    base_step: int
    bg_before: int
    prev_value: int
    last_op_value: int


def _element_contexts(trace: OperationTrace) -> List[_ElementContext]:
    """Compile the per-element closed-form facts of a trace."""
    contexts: List[_ElementContext] = []
    backgrounds = trace.element_backgrounds()
    previous_value = 0  # LogicalMemory initialises the data bus to 0
    for element, background in zip(trace.elements, backgrounds):
        contexts.append(_ElementContext(
            up=element.direction is AddressingDirection.UP,
            operations=element.operations,
            k=element.operation_count,
            base_step=element.base_step,
            bg_before=_encode(background),
            prev_value=previous_value,
            last_op_value=element.operations[-1].value,
        ))
        previous_value = element.operations[-1].value
    return contexts


# ----------------------------------------------------------------------
# Single-cell fault kernels — vector forms of repro.faults.models hooks
# ----------------------------------------------------------------------
class _SingleKernel:
    """Vector form of a single-cell fault model's write/read hooks.

    ``write`` maps (state array, written value) to the new state array;
    ``read`` returns ``(new state, stored observation, bus mask)`` where
    the bus mask marks lanes whose read drives nothing onto the data bus
    (the scalar ``on_read() is None`` case) and therefore observe the
    previous bus value.  The default implementations are fault-free,
    mirroring :class:`repro.faults.models.FaultModel`.
    """

    #: retention threshold in cycles (data-retention faults only).
    retention: Optional[int] = None
    #: value a retention fault decays to.
    leak_to: int = 0
    #: True when reads need back-to-back adjacency context
    #: (:meth:`read_dynamic` is called instead of :meth:`read`).
    dynamic = False

    def write(self, val: "np.ndarray", value: int) -> "np.ndarray":
        """Apply a functional write of ``value`` to every lane."""
        return np.full_like(val, value)

    def read(self, val: "np.ndarray"):
        """Return ``(new_state, stored_observation, bus_mask)`` per lane."""
        return val, val, val == _NONE


class _StuckAtKernel(_SingleKernel):
    """SAF: the cell permanently holds the stuck value."""

    def __init__(self, stuck_value: int) -> None:
        self.stuck_value = stuck_value

    def write(self, val, value):
        return np.full_like(val, self.stuck_value)

    def read(self, val):
        stuck = np.full_like(val, self.stuck_value)
        return stuck, stuck, np.zeros(val.shape, dtype=bool)


class _TransitionKernel(_SingleKernel):
    """TF: one write transition fails, the cell keeps its old value."""

    def __init__(self, rising: bool) -> None:
        self.rising = rising

    def write(self, val, value):
        if self.rising:
            fails = (val == 0) & (value == 1)
        else:
            fails = (val == 1) & (value == 0)
        return np.where(fails, val, np.int8(value))


class _ReadDestructiveKernel(_SingleKernel):
    """RDF: a read flips the cell and returns the flipped value."""

    def read(self, val):
        none = val == _NONE
        flipped = np.where(none, val, 1 - val).astype(np.int8)
        return flipped, flipped, none


class _DeceptiveReadDestructiveKernel(_SingleKernel):
    """DRDF: a read flips the cell but still returns the original value."""

    def read(self, val):
        none = val == _NONE
        flipped = np.where(none, val, 1 - val).astype(np.int8)
        return flipped, val, none


class _IncorrectReadKernel(_SingleKernel):
    """IRF: reads return the complement; the cell keeps its value."""

    def read(self, val):
        none = val == _NONE
        return val, np.where(none, val, 1 - val).astype(np.int8), none


class _WriteDestructiveKernel(_SingleKernel):
    """WDF: a non-transition write flips the cell."""

    def write(self, val, value):
        flips = (val != _NONE) & (val == value)
        return np.where(flips, 1 - np.int8(value), np.int8(value))


class _StuckOpenKernel(_SingleKernel):
    """SOF: writes never reach the cell; reads observe the data bus."""

    def write(self, val, value):
        return val

    def read(self, val):
        return val, val, np.ones(val.shape, dtype=bool)


class _RetentionKernel(_SingleKernel):
    """DRF: after enough idle cycles the cell decays to its leak value."""

    def __init__(self, leak_to: int, retention_cycles: int) -> None:
        self.retention = retention_cycles
        self.leak_to = leak_to


# ----------------------------------------------------------------------
# Dynamic two-operation fault kernels
# ----------------------------------------------------------------------
class _DynamicKernelBase(_SingleKernel):
    """Shared sensitisation logic of the dynamic (two-operation) kernels.

    ``read_dynamic`` receives the per-lane adjacency mask (the victim was
    accessed in the immediately preceding clock cycle) plus the kind of
    that access — a *scalar* (``"w"``/``"r"``), because every lane of a
    campaign executes the same operation sequence and only the global
    step numbers differ per lane.
    """

    dynamic = True

    def __init__(self, after: str) -> None:
        self.after = after

    def _sensitised(self, adjacent: "np.ndarray", prev_kind: str) -> "np.ndarray":
        if self.after != "any" and prev_kind != self.after:
            return np.zeros(adjacent.shape, dtype=bool)
        return adjacent

    def read_dynamic(self, val: "np.ndarray", adjacent: "np.ndarray",
                     prev_kind: str):
        """Return ``(new_state, stored_observation, bus_mask)`` per lane."""
        raise NotImplementedError


class _DynamicReadDestructiveKernel(_DynamicKernelBase):
    """dRDF: the back-to-back read flips the cell and returns the flip."""

    def read_dynamic(self, val, adjacent, prev_kind):
        sens = self._sensitised(adjacent, prev_kind) & (val != _NONE)
        flipped = np.where(sens, 1 - val, val).astype(np.int8)
        return flipped, flipped, val == _NONE


class _DynamicDeceptiveReadDestructiveKernel(_DynamicKernelBase):
    """dDRDF: the back-to-back read flips the cell, returns the original."""

    def read_dynamic(self, val, adjacent, prev_kind):
        sens = self._sensitised(adjacent, prev_kind) & (val != _NONE)
        flipped = np.where(sens, 1 - val, val).astype(np.int8)
        return flipped, val, val == _NONE


class _DynamicIncorrectReadKernel(_DynamicKernelBase):
    """dIRF: the back-to-back read returns the complement; state kept."""

    def read_dynamic(self, val, adjacent, prev_kind):
        sens = self._sensitised(adjacent, prev_kind) & (val != _NONE)
        stored = np.where(sens, 1 - val, val).astype(np.int8)
        return val, stored, val == _NONE


# ----------------------------------------------------------------------
# Coupling fault kernels
# ----------------------------------------------------------------------
class _CouplingKernel:
    """Vector form of an aggressor→victim coupling fault's hooks.

    ``apply_aggressor`` replays the aggressor's visit of one element —
    whose fault-free value trajectory is a scalar event list shared by
    every lane — onto the masked victim lanes; ``on_victim_access`` is
    the per-access state hook (CFst) given each lane's current aggressor
    value.  Defaults are no-ops, mirroring the scalar base class.
    """

    def apply_aggressor(self, val: "np.ndarray", events, mask: "np.ndarray"
                        ) -> "np.ndarray":
        """Replay one aggressor visit (``events``) onto the lanes in ``mask``."""
        return val

    def on_victim_access(self, val: "np.ndarray", aggressor: "np.ndarray"
                         ) -> "np.ndarray":
        """State hook applied before every victim access (CFst only)."""
        return val


class _StateCouplingKernel(_CouplingKernel):
    """CFst: while the aggressor holds a state the victim is forced."""

    def __init__(self, aggressor_state: int, victim_value: int) -> None:
        self.aggressor_state = aggressor_state
        self.victim_value = victim_value

    def apply_aggressor(self, val, events, mask):
        for kind, _old, new in events:
            if kind == "w" and new == self.aggressor_state:
                val = np.where(mask, np.int8(self.victim_value), val)
        return val

    def on_victim_access(self, val, aggressor):
        forced = aggressor == self.aggressor_state
        return np.where(forced, np.int8(self.victim_value), val)


class _IdempotentCouplingKernel(_CouplingKernel):
    """CFid: a given aggressor write transition forces the victim."""

    def __init__(self, rising: bool, victim_value: int) -> None:
        self.rising = rising
        self.victim_value = victim_value

    def apply_aggressor(self, val, events, mask):
        for kind, old, new in events:
            if kind != "w" or old == _NONE:
                continue
            if (self.rising and old == 0 and new == 1) or \
                    (not self.rising and old == 1 and new == 0):
                val = np.where(mask, np.int8(self.victim_value), val)
        return val


class _InversionCouplingKernel(_CouplingKernel):
    """CFin: a given aggressor write transition inverts the victim."""

    def __init__(self, rising: bool) -> None:
        self.rising = rising

    def apply_aggressor(self, val, events, mask):
        for kind, old, new in events:
            if kind != "w" or old == _NONE:
                continue
            if (self.rising and old == 0 and new == 1) or \
                    (not self.rising and old == 1 and new == 0):
                val = np.where(mask & (val != _NONE), 1 - val, val).astype(np.int8)
        return val


class _DisturbCouplingKernel(_CouplingKernel):
    """CFdst: any read of the aggressor disturbs the victim to a fixed value."""

    def __init__(self, victim_value: int) -> None:
        self.victim_value = victim_value

    def apply_aggressor(self, val, events, mask):
        for kind, _old, _new in events:
            if kind == "r":
                val = np.where(mask, np.int8(self.victim_value), val)
        return val


# ----------------------------------------------------------------------
# Neighbourhood (NPSF) fault kernels
# ----------------------------------------------------------------------
class _NeighbourhoodKernel:
    """Vector form of a neighbourhood pattern sensitive fault's hooks.

    Neighbourhood cells are fault-free, so within one element each of
    them jumps from the element's background value to its after-visit
    value exactly at its own position — the value neighbour ``j`` holds
    while neighbour ``m`` is being visited is a closed-form two-way
    select on their positions.  ``apply_visits`` replays the forcing
    caused by the neighbour visits in ``phase`` (before or after the
    victim's own visit; forcing writes a constant, so ordering within a
    phase is immaterial); ``on_victim_access`` is the per-access state
    hook (SNPSF only) given each neighbour's current value.
    """

    def __init__(self, pattern, victim_value: int) -> None:
        self.pattern = tuple(pattern)
        self.victim_value = victim_value

    def apply_visits(self, val: "np.ndarray", events, bg: int, after: int,
                     pos_n: "np.ndarray", phase: "np.ndarray") -> "np.ndarray":
        """Replay the neighbour visits selected by ``phase`` (k x lanes)."""
        return val

    def on_victim_access(self, val: "np.ndarray", neighbour_now: "np.ndarray"
                         ) -> "np.ndarray":
        """State hook applied before every victim access (SNPSF only)."""
        return val

    def _others_match(self, m: int, bg: int, after: int,
                      pos_n: "np.ndarray") -> "np.ndarray":
        """Lanes where every neighbour j != m matches pattern[j] at the
        moment neighbour m is visited."""
        ok = np.ones(pos_n.shape[1], dtype=bool)
        for j, bit in enumerate(self.pattern):
            if j == m:
                continue
            value_j = np.where(pos_n[j] < pos_n[m], np.int8(after), np.int8(bg))
            ok &= value_j == bit
        return ok


class _StaticNeighbourhoodKernel(_NeighbourhoodKernel):
    """SNPSF: while all neighbours hold the pattern the victim is forced."""

    def apply_visits(self, val, events, bg, after, pos_n, phase):
        for m, bit in enumerate(self.pattern):
            # A write during m's visit leaves m at the written value; the
            # full-pattern check then only involves the other neighbours.
            if not any(kind == "w" and new == bit for kind, _old, new in events):
                continue
            forced = phase[m] & self._others_match(m, bg, after, pos_n)
            val = np.where(forced, np.int8(self.victim_value), val)
        return val

    def on_victim_access(self, val, neighbour_now):
        match = np.ones(val.shape, dtype=bool)
        for j, bit in enumerate(self.pattern):
            match &= neighbour_now[j] == bit
        return np.where(match, np.int8(self.victim_value), val)


class _ActiveNeighbourhoodKernel(_NeighbourhoodKernel):
    """ANPSF: a neighbour's write transition with the rest in pattern forces."""

    def __init__(self, rising: bool, pattern, victim_value: int) -> None:
        super().__init__(pattern, victim_value)
        self.rising = rising

    def _transitions(self, events) -> bool:
        for kind, old, new in events:
            if kind != "w" or old == _NONE:
                continue
            if (self.rising and old == 0 and new == 1) or \
                    (not self.rising and old == 1 and new == 0):
                return True
        return False

    def apply_visits(self, val, events, bg, after, pos_n, phase):
        if not self._transitions(events):
            return val
        for m in range(len(self.pattern)):
            forced = phase[m] & self._others_match(m, bg, after, pos_n)
            val = np.where(forced, np.int8(self.victim_value), val)
        return val


# ----------------------------------------------------------------------
# The campaign engine
# ----------------------------------------------------------------------
class VectorizedFaultCampaign:
    """Batch fault-simulation backend: one trace replay per fault *class*.

    Construction mirrors :class:`repro.faults.FaultSimulator`: a
    bit-oriented geometry plus the concrete direction ``⇕`` elements
    resolve to.  :meth:`simulate_many` groups the injections by fault
    class, turns each group's victims (and aggressors) into parallel
    position arrays, and replays the compiled trace once per group with
    every March operation evaluated as vector expressions over all lanes
    simultaneously — emitting per-fault
    :class:`~repro.faults.simulator.DetectionResult` verdicts
    bit-identical to the reference simulator.
    """

    name = "vectorized"

    def __init__(self, geometry: ArrayGeometry,
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 kernel: Optional[str] = None) -> None:
        _require_numpy()
        if geometry.bits_per_word != 1:
            raise UnsupportedFaultCampaign(
                "the fault-campaign engine models bit-oriented arrays "
                "(bits_per_word == 1), matching the logical fault simulator")
        if kernel is not None and kernel not in KERNELS:
            raise EngineError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.geometry = geometry
        self.any_direction = any_direction
        #: Accepted for facade uniformity (the sweep runner threads one
        #: ``kernel`` axis through every vectorized engine).  The fault
        #: campaign is an integer state machine over position arrays —
        #: there is no decay math to compile — so the tier changes
        #: provenance only: verdicts are tier-invariant by construction.
        self.kernel = kernel

    # ------------------------------------------------------------------
    @staticmethod
    def _rank_for(order: AddressOrder) -> "np.ndarray":
        """``rank[linear_address] = position`` in the ascending sequence.

        Memoised on the order instance itself
        (:meth:`~repro.march.ordering.AddressOrder.rank_array`), so every
        campaign — and every tool sharing that order object, e.g. through
        the sweep orchestrator's per-worker order memo — pays the
        inversion once instead of once per engine instance.
        """
        return order.rank_array()

    def _linear(self, coordinate: Tuple[int, int]) -> int:
        row, word = coordinate
        self.geometry.validate_coordinates(row, word)
        return row * self.geometry.words_per_row + word

    # ------------------------------------------------------------------
    def simulate_many(self, algorithm: MarchAlgorithm, order: AddressOrder,
                      injections: Sequence["FaultInjection"],
                      trace: Optional[OperationTrace] = None,
                      ) -> List["DetectionResult"]:
        """Simulate a whole fault list under one run; results in input order.

        Raises :class:`UnsupportedFaultCampaign` when the batch contains a
        fault model without a vector kernel, the algorithm does not
        validate (closed-form fault-free values then do not hold), or the
        order's geometry differs from the simulator's.
        """
        from ..faults.simulator import DetectionResult

        _require_numpy()
        if order.geometry != self.geometry:
            raise UnsupportedFaultCampaign(
                "address order geometry differs from the campaign geometry; "
                "use the reference backend")
        try:
            algorithm.validate()
        except MarchValidationError as exc:
            raise UnsupportedFaultCampaign(
                f"{algorithm.name} does not validate ({exc}); the closed-form "
                "fault-free replay requires a consistent March test") from exc
        if trace is None:
            trace = compile_trace(algorithm, order, self.any_direction)

        injections = list(injections)
        groups: Dict[tuple, Tuple[object, List[int]]] = {}
        for index, injection in enumerate(injections):
            key, kernel = _kernel_for(injection.fault)
            if isinstance(kernel, _NeighbourhoodKernel):
                # Lanes of one group share the (k, lanes) position matrix,
                # so the neighbourhood size is part of the group identity.
                key = key + (len(injection.neighbourhood),)
            entry = groups.get(key)
            if entry is None:
                groups[key] = (kernel, [index])
            else:
                entry[1].append(index)

        rank = self._rank_for(order)
        contexts = _element_contexts(trace)
        word_count = self.geometry.word_count
        results: List[Optional[DetectionResult]] = [None] * len(injections)
        for kernel, indices in groups.values():
            victims = np.array([self._linear(injections[i].victim)
                                for i in indices], dtype=np.int64)
            if isinstance(kernel, _CouplingKernel):
                aggressors = np.array([self._linear(injections[i].aggressor)
                                       for i in indices], dtype=np.int64)
                mismatches, first = _run_coupling_group(
                    contexts, rank, word_count, kernel, victims, aggressors)
            elif isinstance(kernel, _NeighbourhoodKernel):
                neighbours = np.array(
                    [[self._linear(cell) for cell in injections[i].neighbourhood]
                     for i in indices], dtype=np.int64).T
                mismatches, first = _run_neighbourhood_group(
                    contexts, rank, word_count, kernel, victims, neighbours)
            else:
                mismatches, first = _run_single_group(
                    contexts, rank, word_count, kernel, victims)
            for lane, index in enumerate(indices):
                count = int(mismatches[lane])
                step = int(first[lane])
                results[index] = DetectionResult(
                    injection=injections[index],
                    algorithm=algorithm.name,
                    order=order.name,
                    detected=count > 0,
                    first_detection_step=step if step >= 0 else None,
                    mismatches=count,
                )
        return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Group simulations (module-level: the hot loops, no self lookups)
# ----------------------------------------------------------------------
def _run_single_group(contexts: List[_ElementContext], rank: "np.ndarray",
                      word_count: int, kernel: _SingleKernel,
                      victims: "np.ndarray"):
    """Simulate all single-cell injections of one fault class in parallel.

    Per lane state mirrors the scalar simulator exactly: the victim's
    cell value (−1 = unwritten), the step/value of the victim's most
    recent access (for consecutive-access data-bus reuse), and the cycle
    of the last access (retention idle time).  Everything a victim read
    can observe besides its own cell — the data-bus value left by the
    preceding access — is a closed-form fact of the validated trace.
    """
    lanes = victims.size
    val = np.full(lanes, _NONE, dtype=np.int8)
    last_step = np.full(lanes, -2, dtype=np.int64)
    last_obs = np.zeros(lanes, dtype=np.int8)
    last_cycle = np.zeros(lanes, dtype=np.int64)
    mismatches = np.zeros(lanes, dtype=np.int64)
    first = np.full(lanes, -1, dtype=np.int64)
    victim_rank = rank[victims]
    # Kind of the victim's most recent access.  Every lane executes the
    # same operation sequence (only the global step differs), so this is
    # a plain scalar; adjacency (last_step == step - 1) stays per-lane.
    last_kind = "w"

    for ctx in contexts:
        position = victim_rank if ctx.up else (word_count - 1) - victim_rank
        base = ctx.base_step + position * ctx.k
        # Fault-free bus value preceding the visit's first access: the last
        # operation of the previous address (same element), or of the
        # previous element when the victim is visited first.
        ff_prev = np.where(position == 0, np.int8(ctx.prev_value),
                           np.int8(ctx.last_op_value))
        for op_index, operation in enumerate(ctx.operations):
            step = base + op_index
            if kernel.retention is not None:
                idle = (step + 1) - last_cycle
                val = np.where(idle >= kernel.retention,
                               np.int8(kernel.leak_to), val)
            last_cycle = step + 1
            if operation.is_write:
                val = kernel.write(val, operation.value)
                observed = np.full(lanes, operation.value, dtype=np.int8)
                last_kind = "w"
            else:
                if kernel.dynamic:
                    val, stored, bus_mask = kernel.read_dynamic(
                        val, last_step == step - 1, last_kind)
                else:
                    val, stored, bus_mask = kernel.read(val)
                bus = np.where(last_step == step - 1, last_obs, ff_prev)
                observed = np.where(bus_mask, bus, stored).astype(np.int8)
                bad = observed != operation.value
                mismatches += bad
                first = np.where(bad & (first < 0), step, first)
                last_kind = "r"
            last_obs = observed
            last_step = step
    return mismatches, first


def _run_coupling_group(contexts: List[_ElementContext], rank: "np.ndarray",
                        word_count: int, kernel: _CouplingKernel,
                        victims: "np.ndarray", aggressors: "np.ndarray"):
    """Simulate all coupling injections of one fault class in parallel.

    The aggressor is fault-free, so its value trajectory during its visit
    is one scalar event list per element, shared by every lane; only
    *when* that visit happens relative to the victim's differs per lane.
    Each element is therefore replayed in three phases: the aggressor
    visit for lanes where it precedes the victim, the victim's operations
    for all lanes (with each lane's current aggressor value selected by
    phase), and the aggressor visit for the remaining lanes.
    """
    lanes = victims.size
    val = np.full(lanes, _NONE, dtype=np.int8)
    last_step = np.full(lanes, -2, dtype=np.int64)
    last_obs = np.zeros(lanes, dtype=np.int8)
    mismatches = np.zeros(lanes, dtype=np.int64)
    first = np.full(lanes, -1, dtype=np.int64)
    victim_rank = rank[victims]
    aggressor_rank = rank[aggressors]

    for ctx in contexts:
        if ctx.up:
            pos_victim, pos_aggressor = victim_rank, aggressor_rank
        else:
            pos_victim = (word_count - 1) - victim_rank
            pos_aggressor = (word_count - 1) - aggressor_rank
        base = ctx.base_step + pos_victim * ctx.k
        aggressor_first = pos_aggressor < pos_victim

        # The aggressor's fault-free visit: one scalar event list.
        events = []
        current = ctx.bg_before
        for operation in ctx.operations:
            if operation.is_write:
                events.append(("w", current, operation.value))
                current = operation.value
            else:
                events.append(("r", current, None))
        aggressor_after = current

        val = kernel.apply_aggressor(val, events, aggressor_first)
        aggressor_now = np.where(aggressor_first, np.int8(aggressor_after),
                                 np.int8(ctx.bg_before))
        ff_prev = np.where(pos_victim == 0, np.int8(ctx.prev_value),
                           np.int8(ctx.last_op_value))
        for op_index, operation in enumerate(ctx.operations):
            step = base + op_index
            val = kernel.on_victim_access(val, aggressor_now)
            if operation.is_write:
                val = np.full(lanes, operation.value, dtype=np.int8)
                observed = val
            else:
                bus = np.where(last_step == step - 1, last_obs, ff_prev)
                observed = np.where(val == _NONE, bus, val).astype(np.int8)
                bad = observed != operation.value
                mismatches += bad
                first = np.where(bad & (first < 0), step, first)
            last_obs = observed
            last_step = step
        val = kernel.apply_aggressor(val, events, ~aggressor_first)
    return mismatches, first


def _run_neighbourhood_group(contexts: List[_ElementContext], rank: "np.ndarray",
                             word_count: int, kernel: _NeighbourhoodKernel,
                             victims: "np.ndarray", neighbours: "np.ndarray"):
    """Simulate all neighbourhood injections of one fault class in parallel.

    ``neighbours`` is a (k, lanes) matrix of linear cell addresses.  Like
    the coupling runner, every neighbourhood cell is fault-free, so its
    per-element value trajectory is the shared scalar event list; each
    element is replayed in three phases — neighbour visits preceding the
    victim's, the victim's own operations (with every neighbour's current
    value a closed-form position select), then the remaining neighbour
    visits.  NPSF forcing writes a constant, so the visit order *within*
    a phase never changes the outcome.
    """
    lanes = victims.size
    val = np.full(lanes, _NONE, dtype=np.int8)
    last_step = np.full(lanes, -2, dtype=np.int64)
    last_obs = np.zeros(lanes, dtype=np.int8)
    mismatches = np.zeros(lanes, dtype=np.int64)
    first = np.full(lanes, -1, dtype=np.int64)
    victim_rank = rank[victims]
    neigh_rank = rank[neighbours]  # (k, lanes)

    for ctx in contexts:
        if ctx.up:
            pos_victim, pos_neigh = victim_rank, neigh_rank
        else:
            pos_victim = (word_count - 1) - victim_rank
            pos_neigh = (word_count - 1) - neigh_rank
        base = ctx.base_step + pos_victim * ctx.k
        before_victim = pos_neigh < pos_victim[None, :]

        # The fault-free visit of any cell: one scalar event list.
        events = []
        current = ctx.bg_before
        for operation in ctx.operations:
            if operation.is_write:
                events.append(("w", current, operation.value))
                current = operation.value
            else:
                events.append(("r", current, None))
        after_value = current

        val = kernel.apply_visits(val, events, ctx.bg_before, after_value,
                                  pos_neigh, before_victim)
        neighbour_now = np.where(before_victim, np.int8(after_value),
                                 np.int8(ctx.bg_before))  # (k, lanes)
        ff_prev = np.where(pos_victim == 0, np.int8(ctx.prev_value),
                           np.int8(ctx.last_op_value))
        for op_index, operation in enumerate(ctx.operations):
            step = base + op_index
            val = kernel.on_victim_access(val, neighbour_now)
            if operation.is_write:
                val = np.full(lanes, operation.value, dtype=np.int8)
                observed = val
            else:
                bus = np.where(last_step == step - 1, last_obs, ff_prev)
                observed = np.where(val == _NONE, bus, val).astype(np.int8)
                bad = observed != operation.value
                mismatches += bad
                first = np.where(bad & (first < 0), step, first)
            last_obs = observed
            last_step = step
        val = kernel.apply_visits(val, events, ctx.bg_before, after_value,
                                  pos_neigh, ~before_victim)
    return mismatches, first


# ----------------------------------------------------------------------
# Kernel registry — exact-type matching against repro.faults.models
# ----------------------------------------------------------------------
def _kernel_for(model) -> Tuple[tuple, object]:
    """Return ``(group key, kernel)`` for a fault model instance.

    Matching is by *exact* type: a user subclass of a standard model may
    override any hook, so it gets no kernel and the campaign raises
    :class:`UnsupportedFaultCampaign` (``backend="auto"`` then falls back
    to the reference path, which honours the overridden hooks).
    """
    from ..faults import models

    kind = type(model)
    if kind is models.FaultFree:
        return ("fault-free",), _SingleKernel()
    if kind is models.StuckAtFault:
        return ("SAF", model.stuck_value), _StuckAtKernel(model.stuck_value)
    if kind is models.TransitionFault:
        return ("TF", model.rising), _TransitionKernel(model.rising)
    if kind is models.ReadDestructiveFault:
        return ("RDF",), _ReadDestructiveKernel()
    if kind is models.DeceptiveReadDestructiveFault:
        return ("DRDF",), _DeceptiveReadDestructiveKernel()
    if kind is models.IncorrectReadFault:
        return ("IRF",), _IncorrectReadKernel()
    if kind is models.WriteDestructiveFault:
        return ("WDF",), _WriteDestructiveKernel()
    if kind is models.StuckOpenFault:
        return ("SOF",), _StuckOpenKernel()
    if kind is models.DataRetentionFault:
        return (("DRF", model.leak_to, model.retention_cycles),
                _RetentionKernel(model.leak_to, model.retention_cycles))
    if kind is models.DynamicReadDestructiveFault:
        return ("dRDF", model.after), _DynamicReadDestructiveKernel(model.after)
    if kind is models.DynamicDeceptiveReadDestructiveFault:
        return (("dDRDF", model.after),
                _DynamicDeceptiveReadDestructiveKernel(model.after))
    if kind is models.DynamicIncorrectReadFault:
        return ("dIRF", model.after), _DynamicIncorrectReadKernel(model.after)
    if kind is models.StaticNeighbourhoodPatternFault:
        return (("SNPSF", model.pattern, model.victim_value),
                _StaticNeighbourhoodKernel(model.pattern, model.victim_value))
    if kind is models.ActiveNeighbourhoodPatternFault:
        return (("ANPSF", model.rising, model.pattern, model.victim_value),
                _ActiveNeighbourhoodKernel(model.rising, model.pattern,
                                           model.victim_value))
    if kind is models.StateCouplingFault:
        return (("CFst", model.aggressor_state, model.victim_value),
                _StateCouplingKernel(model.aggressor_state, model.victim_value))
    if kind is models.IdempotentCouplingFault:
        return (("CFid", model.rising, model.victim_value),
                _IdempotentCouplingKernel(model.rising, model.victim_value))
    if kind is models.InversionCouplingFault:
        return ("CFin", model.rising), _InversionCouplingKernel(model.rising)
    if kind is models.DisturbCouplingFault:
        return (("CFdst", model.victim_value),
                _DisturbCouplingKernel(model.victim_value))
    raise UnsupportedFaultCampaign(
        f"no vectorized kernel for fault model {model.describe()!r} "
        f"({kind.__name__}); use backend='reference' (or 'auto')")
