"""NumPy-vectorized execution backend for March test power measurement.

The reference path (:class:`repro.core.session.TestSession` driving
:class:`repro.sram.SRAM`) executes a March test one access cycle at a time
through Python objects.  That is the right tool for fault simulation and for
inspecting individual events, but it caps measured experiments at toy
geometries: the paper's full 512 x 512 array needs millions of cycles per
mode and minutes of wall clock per algorithm.

This module re-derives the *same measurements* as whole-array operations:

* **functional mode** collapses to closed-form vector reductions — every
  access spends constant operation/decode/RES/leakage energy, and the only
  sequence-dependent quantity (word-line recharges at row transitions) is a
  count over the coordinate arrays of the address order;
* **low-power test mode** is processed one *row segment* at a time (a
  maximal run of accesses on one word line).  Within a segment the paper's
  pre-charge policy is strictly structured — the selected column and its
  traversal neighbour are held, every other column floats and decays
  exponentially, and the one functional-mode restoration cycle closes the
  row — so background state, pre-charge activity masks, RES stress counts
  and the decay-dependent restoration energies are all computed as NumPy
  array expressions over the segment instead of per-cell Python loops.

Equivalence with the reference backend is exact by construction (the same
per-event formulas evaluated in bulk, see ``tests/test_engine_equivalence.py``);
configurations the bulk replay cannot represent — injected faults, custom
planners, address orders whose next access is not the traversal neighbour —
raise :class:`UnsupportedConfiguration` so callers can fall back to the
reference backend instead of silently measuring something else.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from importlib import import_module
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..circuit.technology import TechnologyParameters, default_technology
from ..core.lowpower import traversal_neighbour_delta
from ..march.algorithm import MarchAlgorithm
from ..march.element import AddressingDirection, MarchElement
from ..march.execution import (
    OperationTrace,
    SegmentWalk,
    TraceCache,
    resolve_direction,
)
from ..march.ordering import AddressOrder, RowMajorOrder
from ..power.accounting import EnergyLedger
from ..power.model import PowerModel
from ..power.sources import PowerSource
from ..sram.geometry import ArrayGeometry
from ..sram.memory import CELL_RES_RATIO, OperatingMode, SRAM
from ..sram.timing import ClockCycle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.session import ModeComparison, TestRunResult

try:  # numpy is required for this backend only; the scalar path runs without it
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from .dispatch import EngineError, KERNEL_CHOICES


class UnsupportedConfiguration(EngineError):
    """The exact bulk replay cannot represent this run.

    Raised when the run depends on state the vectorized formulas do not
    model (an address order whose next access is not the pre-charged
    traversal neighbour, a selected column whose bit lines are floating at
    selection time, ...).  The reference backend handles every such case;
    ``backend="auto"`` falls back to it automatically.
    """


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise EngineError(
            "the vectorized backend requires numpy; install numpy or use "
            "backend='reference'"
        )


#: Execution kernels of the vectorized backend.  ``"flat"`` (the default)
#: evaluates the whole run as flat NumPy reductions over the compiled
#: segment structure (:meth:`repro.march.execution.OperationTrace.segment_walk`)
#: with closed-form decay sums — no per-row/per-segment Python loop on the
#: hot path.  ``"segmented"`` is the original one-row-segment-at-a-time
#: evaluation, retained as the differential oracle for the flat kernel and
#: as the measured baseline of the grid benchmarks.  ``"jit"`` and
#: ``"gpu"`` are *compiled tiers*: the same per-(unit, element) slot
#: reductions executed by a numba ``@njit(parallel=True, cache=True)``
#: kernel (:mod:`repro.engine.compiled`) or a cupy re-run of the identical
#: array program (:mod:`repro.engine.gpu`).  ``"auto"`` resolves to the
#: best available compiled tier (currently ``"jit"``), else ``"flat"``.
#: Compiled tiers are optional: when the dependency is absent a requested
#: tier falls back to ``"flat"`` with a single :class:`RuntimeWarning`
#: (see :func:`resolve_kernel`), and importing :mod:`repro` (or this
#: module) never loads numba/cupy.
KERNELS = KERNEL_CHOICES

#: Process-wide default kernel; see :func:`default_kernel`.  Rebinding it
#: and mutating ``_TIER_CACHE`` below happen under ``_KERNEL_STATE_LOCK``:
#: the serving layer resolves kernels from concurrent worker threads, and
#: unguarded writes to process-wide kernel state are the RPR002 bug class.
_DEFAULT_KERNEL = "flat"
_KERNEL_STATE_LOCK = threading.Lock()

#: Optional compiled-tier implementation modules, imported lazily on first
#: resolution (never at ``import repro`` time — the PEP 562 contract).
_TIER_MODULES: Dict[str, str] = {"jit": ".compiled", "gpu": ".gpu"}

#: Lazily-imported tier modules: name -> module, or ``None`` when the
#: import failed (dependency absent).  :func:`reset_kernel_state` clears it.
_TIER_CACHE: Dict[str, Optional[object]] = {}

#: Tiers whose fallback has already been warned about (warn once per tier
#: per process; cleared by :func:`reset_kernel_state`).  Guarded by
#: ``_FALLBACK_LOCK``: the serving layer resolves kernels from concurrent
#: worker threads, and an unguarded check-and-add could warn twice or —
#: worse — interleave with :func:`reset_kernel_state`.
_FALLBACK_WARNED: set = set()
_FALLBACK_LOCK = threading.Lock()


def _claim_fallback_warning(tier: str) -> bool:
    """Atomically claim the once-per-process warning for ``tier``."""
    with _FALLBACK_LOCK:
        if tier in _FALLBACK_WARNED:
            return False
        _FALLBACK_WARNED.add(tier)
        return True


def kernel_module(tier: str):
    """The implementation module of a compiled tier, or ``None``.

    Imports :mod:`repro.engine.compiled` / :mod:`repro.engine.gpu` on
    first request and memoises the outcome — including the *failed*
    outcome, so an absent dependency is probed exactly once per process.
    Returns ``None`` for the built-in numpy tiers (they live here).
    """
    if tier not in _TIER_MODULES:
        return None
    with _KERNEL_STATE_LOCK:
        if tier in _TIER_CACHE:
            return _TIER_CACHE[tier]
    # Probe outside the lock — importing a compiled tier can be slow and
    # takes the interpreter's import lock; a racing duplicate probe is
    # idempotent and setdefault keeps the first outcome.
    try:
        module: Optional[object] = import_module(
            _TIER_MODULES[tier], __package__)
    except ImportError:
        module = None
    with _KERNEL_STATE_LOCK:
        return _TIER_CACHE.setdefault(tier, module)


def kernel_available(tier: str) -> bool:
    """Whether a kernel tier can actually execute in this process."""
    if tier in _TIER_MODULES:
        return kernel_module(tier) is not None
    return tier in ("flat", "segmented")


def available_kernels() -> Tuple[str, ...]:
    """Every concrete kernel tier runnable in this process (no ``"auto"``)."""
    return tuple(tier for tier in KERNELS
                 if tier != "auto" and kernel_available(tier))


def resolve_kernel(kernel: str, warn: bool = True) -> str:
    """Map a requested kernel to the tier that will actually run.

    ``"auto"`` picks the best available compiled tier (``"jit"`` when
    numba is importable) and otherwise ``"flat"`` — silently, since auto
    explicitly delegates the choice.  An *explicitly* requested compiled
    tier whose dependency is absent falls back to ``"flat"`` and warns
    once per tier per process (:class:`RuntimeWarning`), so a script that
    asked for ``"jit"`` on a numba-less machine still runs — truthfully
    reported through ``last_kernel_used`` and the sweep records.
    """
    if kernel == "auto":
        if kernel_available("jit"):
            return "jit"
        if warn and _claim_fallback_warning("auto"):
            warnings.warn(
                "kernel 'auto': no compiled tier is available (numba is "
                "not importable); using the 'flat' numpy kernel",
                RuntimeWarning, stacklevel=3)
        return "flat"
    if kernel in _TIER_MODULES and not kernel_available(kernel):
        if warn and _claim_fallback_warning(kernel):
            dependency = "numba" if kernel == "jit" else "cupy"
            warnings.warn(
                f"kernel {kernel!r} is unavailable ({dependency} is not "
                "importable); falling back to the 'flat' numpy kernel",
                RuntimeWarning, stacklevel=3)
        return "flat"
    return kernel


def note_kernel_fallback(requested: Optional[str], used: Optional[str],
                         context: str = "") -> bool:
    """Warn once per process when a *requested* tier ran as ``"flat"``.

    The record-level companion of :func:`resolve_kernel`: callers that
    observe provenance after the fact (the batched grid engine comparing a
    case's requested ``kernel`` against the record's ``kernel_used``) warn
    through the same once-per-tier registry, so a fallback is reported
    exactly once no matter which seam notices it first.  Returns ``True``
    when a warning was emitted.
    """
    if requested not in ("jit", "gpu", "auto"):
        return False
    if used != "flat" or not _claim_fallback_warning(requested):
        return False
    where = f" [{context}]" if context else ""
    warnings.warn(
        f"requested kernel {requested!r} fell back to the 'flat' numpy "
        f"kernel (compiled-tier dependency absent){where}; records carry "
        "the tier actually used", RuntimeWarning, stacklevel=3)
    return True


def active_kernel() -> str:
    """The concrete tier the process default currently resolves to."""
    return resolve_kernel(_DEFAULT_KERNEL, warn=False)


def reset_kernel_state() -> None:
    """Forget tier-availability probes and fallback warnings (test hook:
    lets a suite patch ``sys.modules`` and re-probe from scratch)."""
    with _KERNEL_STATE_LOCK:
        _TIER_CACHE.clear()
    with _FALLBACK_LOCK:
        _FALLBACK_WARNED.clear()


class default_kernel:
    """Context manager pinning the process-wide default execution kernel.

    Benchmarks use this to measure the pre-flat-kernel baseline end to end
    (facades construct their engines internally, so a constructor argument
    cannot reach them)::

        with default_kernel("segmented"):
            SweepRunner(cases, strategy="percase").run()
    """

    def __init__(self, kernel: str) -> None:
        if kernel not in KERNELS:
            raise EngineError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.kernel = kernel
        self._previous: Optional[str] = None

    def __enter__(self) -> "default_kernel":
        global _DEFAULT_KERNEL
        with _KERNEL_STATE_LOCK:
            self._previous = _DEFAULT_KERNEL
            _DEFAULT_KERNEL = self.kernel
        return self

    def __exit__(self, *exc_info) -> None:
        global _DEFAULT_KERNEL
        with _KERNEL_STATE_LOCK:
            _DEFAULT_KERNEL = self._previous


#: Segments evaluated per flat-kernel tile; bounds the size of the
#: per-segment temporaries on degenerate orders (column-major visits one
#: word per segment, so a 4096 x 4096 campaign holds ~100 M segments).
#: Tiles are unit-local — chunk boundaries depend only on the run itself —
#: so results are bit-identical whether a run is evaluated alone or
#: stacked into a grid batch.
DEFAULT_SEGMENT_CHUNK = 1 << 19


def _reduce_tile_arrays(xp, slots, m, first, last, carry, chained,
                        delta_seg, x, n_words, bits, coeff, boundary_gain,
                        total_slots):
    """One tile of per-segment slot reductions as an array program.

    The decay-sum and bincount core of the flat kernel, factored out of
    :meth:`VectorizedEngine._low_power_flat` as a pure function of the
    segment arrays so every kernel tier executes the *same program*:
    ``xp`` is :mod:`numpy` on the flat tier and :mod:`cupy` on the gpu
    tier, and :mod:`repro.engine.compiled` re-derives the identical
    scalar recurrence under numba.  Returns the five per-slot accumulator
    tiles ``(wl_count, enabled_sum, prc, recharge, restore)`` — integer
    counts exact, energies subject only to summation order.
    """
    out_word = last + delta_seg
    valid_out = ((out_word >= 0) & (out_word < n_words)).astype(xp.int64)
    first_neighbour = first + delta_seg
    valid_first = ((first_neighbour >= 0)
                   & (first_neighbour < n_words)).astype(xp.int64)
    enabled = (m - 1) + valid_out

    wl_count = xp.bincount(slots, weights=(~carry).astype(xp.float64),
                           minlength=total_slots).astype(xp.int64)
    enabled_sum = xp.bincount(slots, weights=enabled.astype(xp.float64),
                              minlength=total_slots).astype(xp.int64)

    prc = xp.zeros(total_slots, dtype=xp.int64)
    recharge = xp.zeros(total_slots, dtype=xp.float64)
    restore = xp.zeros(total_slots, dtype=xp.float64)
    # State-dependent closed forms apply to chain-free segments only
    # (they start from the all-attached state and restore).
    free = ~chained
    if bool(xp.any(free)):
        slots_f = slots[free]
        m_f = m[free]
        x_f = x[free]
        n_newly = n_words - 1 - valid_first[free]
        prc = xp.bincount(
            slots_f,
            weights=((n_newly + (m_f - 1)) * bits).astype(xp.float64),
            minlength=total_slots).astype(xp.int64)

        # Within-segment neighbour recharges: the neighbour of visit j
        # (j >= 1) floated at the segment's first cycle, so the decay
        # sum over j = 1..J is a geometric series in q = exp(-ops*T/tau).
        decay_unit = -xp.expm1(-x_f)          # 1 - q, per segment
        series_j = xp.where(m_f >= 2, m_f - 2 + valid_out[free], 0)
        series = (series_j
                  - xp.exp(-x_f) * -xp.expm1(-series_j * x_f) / decay_unit)
        recharge = xp.bincount(slots_f, weights=coeff * series,
                               minlength=total_slots)

        # End-of-row restoration: visited words refloated one visit
        # after their own selection (elapsed t*ops - 1 for t=1..m-1)
        # plus the never-visited words floating since the first cycle.
        visited = ((m_f - 1)
                   - boundary_gain * xp.exp(-x_f)
                   * -xp.expm1(-(m_f - 1) * x_f) / decay_unit)
        untouched = ((n_words - m_f - valid_out[free])
                     * -(boundary_gain * xp.exp(-m_f * x_f) - 1.0))
        restore = xp.bincount(slots_f, weights=coeff * (visited + untouched),
                              minlength=total_slots)
    return wl_count, enabled_sum, prc, recharge, restore


@dataclass(frozen=True)
class _EnergyConstants:
    """Per-event energies shared by every access (mirrors the scalar models)."""

    row_decode: float          # RowDecoder internal switching per access
    col_decode: float          # ColumnDecoder switching per access
    wordline: float            # charging the selected word line (on row change)
    read_col: float            # sense + read-swing restoration, per column
    write_col: float           # drivers + full-swing restoration, per column
    res_per_column: float      # P_A: one pre-charged unselected column, one cycle
    restore_coeff: float       # C_bl * VDD^2 * (1 + overhead), per column
    control_element: float     # one added control element switching
    lptest_line: float         # one LPtest mode-selection line transition
    leakage: float             # whole-array leakage per cycle
    bank_select: float         # one bank-select line transition (banked arrays)


@dataclass
class CellStressTotals:
    """Aggregate per-cell stress computed by the vectorized backend.

    Arrays are indexed ``[row, word]``.  For word-oriented geometries every
    physical column of a word carries identical stress, so one entry stands
    for each of the word's ``bits_per_word`` cells.  ``reads_per_cell`` and
    ``writes_per_cell`` are uniform across the array (every March element
    applies its operations to every address) and therefore plain integers.
    """

    full_res: "np.ndarray"
    partial_res: "np.ndarray"
    reads_per_cell: int
    writes_per_cell: int


class VectorizedEngine:
    """Batch execution backend measuring March test power as array reductions.

    Construction mirrors :class:`repro.core.session.TestSession`: a geometry,
    a technology, an address order (row-major by default), and the concrete
    direction ``⇕`` elements resolve to.  ``detailed`` carries the session's
    book-keeping switch: when true (the default for arrays up to
    ``SRAM.DETAILED_CELL_LIMIT`` cells) the engine also accumulates the
    per-cell stress statistics the reference memory would have collected,
    exposed as :attr:`last_stress` after each run.
    """

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 order: Optional[AddressOrder] = None,
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 detailed: Optional[bool] = None,
                 trace_cache: Optional[TraceCache] = None,
                 kernel: Optional[str] = None,
                 segment_chunk: Optional[int] = None) -> None:
        _require_numpy()
        if kernel is not None and kernel not in KERNELS:
            raise EngineError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.order = order or RowMajorOrder(geometry)
        self.any_direction = any_direction
        self.clock = ClockCycle.from_technology(self.tech)
        detailed_default = geometry.cell_count <= SRAM.DETAILED_CELL_LIMIT
        self.track_cell_stress = detailed_default if detailed is None else detailed
        #: execution kernel; ``None`` follows the process default
        #: (see :class:`default_kernel`).
        self.kernel = kernel
        #: flat-kernel tile size (segments per tile, unit-local).
        self.segment_chunk = segment_chunk or DEFAULT_SEGMENT_CHUNK
        #: compiled traces of this engine's own runs (shared when the
        #: caller passes one, e.g. the batched grid engine or a facade
        #: that already owns a cache) — the walks and segment structure a
        #: run needs are memoised here instead of being re-derived per run.
        self.traces = trace_cache if trace_cache is not None else TraceCache()
        # Bit lines are bank-local: their capacitance (hence floating decay)
        # scales with the bank height, not the whole array.
        self._tau = self.tech.floating_discharge_tau(geometry.rows_per_bank)
        self._k = self._derive_constants()
        # Per-run provenance (last_stress / last_counters /
        # last_kernel_used) is thread-local: the serving layer drives one
        # engine from a pool of worker threads, and a facade-global slot
        # would let one request's run overwrite another's provenance
        # between its measurement and its record assembly.
        self._run_state = threading.local()

    @property
    def last_stress(self) -> Optional[CellStressTotals]:
        """Per-cell stress totals of the calling thread's most recent
        :meth:`run` (``None`` when stress tracking is off)."""
        return getattr(self._run_state, "stress", None)

    @last_stress.setter
    def last_stress(self, stress: Optional[CellStressTotals]) -> None:
        self._run_state.stress = stress

    @property
    def last_counters(self) -> Dict[str, int]:
        """Raw counters of the calling thread's most recent :meth:`run`,
        including the ``partial_res_column_cycles`` count that
        :class:`~repro.core.session.TestRunResult` does not surface."""
        return getattr(self._run_state, "counters", {})

    @last_counters.setter
    def last_counters(self, counters: Dict[str, int]) -> None:
        self._run_state.counters = counters

    @property
    def last_kernel_used(self) -> Optional[str]:
        """Concrete kernel tier of the calling thread's most recent run
        (``"flat"``, ``"segmented"``, ``"jit"`` or ``"gpu"`` — never
        ``"auto"``): the tier that actually executed, after availability
        fallback."""
        return getattr(self._run_state, "kernel_used", None)

    @last_kernel_used.setter
    def last_kernel_used(self, tier: Optional[str]) -> None:
        self._run_state.kernel_used = tier

    # ------------------------------------------------------------------
    # Constant derivation — every value comes from the shared power model /
    # technology description (the same definitions the scalar periphery and
    # column models use), so tuning a constant there cannot silently break
    # the bit-exact equivalence of the two backends.
    # ------------------------------------------------------------------
    def _derive_constants(self) -> _EnergyConstants:
        tech, geo = self.tech, self.geometry
        c_bl = tech.bitline_capacitance(geo.rows_per_bank)
        overhead = 1.0 + tech.precharge_overhead_factor
        model = PowerModel(geo, tech=tech)
        return _EnergyConstants(
            row_decode=model.row_decode_energy(),
            col_decode=model.column_decode_energy(),
            wordline=tech.swing_energy(tech.wordline_capacitance(geo.columns)),
            read_col=model.read_column_energy(),
            write_col=model.write_column_energy(),
            res_per_column=model.res_energy_per_column(),
            restore_coeff=tech.swing_energy(c_bl, tech.vdd) * overhead,
            control_element=model.control_element_energy(),
            lptest_line=model.lptest_line_energy(),
            leakage=model.leakage_energy_per_cycle(),
            bank_select=model.bank_select_energy(),
        )

    def _bank_of(self, rows_arr: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`ArrayGeometry.bank_of_row` over a row array."""
        geo = self.geometry
        if geo.bank_interleave == "blocked":
            return rows_arr // geo.rows_per_bank
        return rows_arr % geo.banks

    # ------------------------------------------------------------------
    # Walk expansion helpers
    # ------------------------------------------------------------------
    def _element_walk(self, element: MarchElement
                      ) -> Tuple[AddressingDirection, "np.ndarray", "np.ndarray"]:
        """Direction and (rows, words) coordinate arrays for one element."""
        direction = resolve_direction(element, self.any_direction)
        rows, words = self.order.coordinate_arrays()
        if direction is AddressingDirection.DOWN:
            rows, words = rows[::-1], words[::-1]
        return direction, rows, words

    def _decayed_restore_energy(self, elapsed_cycles: "np.ndarray") -> float:
        """Supply energy to recharge bit lines floating for ``elapsed_cycles``.

        A floating pair has exactly one line discharged by its cell (the
        other sits at VDD with the cell's '1' node — no charge moves), so the
        restored swing per pair is ``VDD * (1 - exp(-t/tau))``; the energy is
        summed over all pairs of each affected word.
        """
        duration = elapsed_cycles.astype(np.float64) * self.clock.period
        swings = 1.0 - np.exp(-duration / self._tau)
        return (self._k.restore_coeff * self.geometry.bits_per_word
                * float(np.sum(swings)))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, algorithm: MarchAlgorithm, mode: OperatingMode) -> "TestRunResult":
        """Run ``algorithm`` once in ``mode`` and return the measurements.

        Returns the same :class:`repro.core.session.TestRunResult` the
        reference backend produces (fault-free memory: no mismatches, no
        faulty swaps, no read hazards), with the energy ledger built from
        aggregate reductions.  Raises :class:`UnsupportedConfiguration` when
        the run cannot be replayed in bulk.
        """
        by_source, counters, cycles, _ = self.run_aggregates(algorithm, mode)
        return self.result_from_aggregates(algorithm, mode, by_source,
                                           counters, cycles)

    def result_from_aggregates(self, algorithm: MarchAlgorithm,
                               mode: OperatingMode, by_source, counters,
                               cycles: int,
                               order_name: Optional[str] = None
                               ) -> "TestRunResult":
        """Assemble the session-shaped result of one measured run.

        Shared by :meth:`run` and the batched grid engine, which measures
        aggregates for a whole sweep axis in one stacked pass and then
        assembles each case's result identically to the per-case path.
        ``order_name`` overrides the engine's own order label when the
        aggregates were measured over an explicitly supplied trace.
        """
        from ..core.session import TestRunResult  # deferred: avoids an import cycle

        label = f"{algorithm.name} [{mode.value}] (vectorized)"
        ledger = EnergyLedger.from_aggregates(
            self.clock.period, by_source, cycles=cycles, label=label)
        return TestRunResult(
            algorithm=algorithm.name,
            mode=mode.value,
            order=order_name if order_name is not None else self.order.name,
            geometry=self.geometry.describe(),
            cycles=cycles,
            total_energy=ledger.total_energy(),
            average_power=ledger.average_power(),
            energy_by_source=ledger.energy_by_source(),
            mismatches=[],
            faulty_swaps=[],
            read_hazards=0,
            row_transitions=counters["row_transitions"],
            full_restores=counters["full_restores"],
            full_res_column_cycles=counters["full_res_column_cycles"],
            floating_column_cycles=counters["floating_column_cycles"],
            bank_transitions=counters.get("bank_transitions", 0),
            kernel=self.last_kernel_used or "",
        )

    def resolved_kernel(self, kernel: Optional[str] = None) -> str:
        """The execution kernel a run will use (explicit > engine > default)."""
        chosen = kernel if kernel is not None else self.kernel
        chosen = chosen if chosen is not None else _DEFAULT_KERNEL
        if chosen not in KERNELS:
            raise EngineError(
                f"unknown kernel {chosen!r}; expected one of {KERNELS}")
        return chosen

    def trace_for(self, algorithm: MarchAlgorithm) -> OperationTrace:
        """The memoised compiled trace of ``algorithm`` over this engine's
        order — walks and segment structure compile once per (algorithm,
        order, direction) and are shared by every run and both modes."""
        return self.traces.get(algorithm, self.order, self.any_direction)

    def warm(self, algorithm: Optional[MarchAlgorithm] = None,
             kernel: Optional[str] = None) -> "VectorizedEngine":
        """Amortize the one-time costs of a run up front.

        Two warm-up layers: the resolved kernel tier's compiled artefacts
        (numba's ``cache=True`` on-disk cache is loaded — or the kernel
        compiled — by a tiny dummy reduction; the gpu tier initialises its
        device context), and, when ``algorithm`` is given, this engine's
        memoised trace plus its compiled segment structure (the dominant
        cold cost at large geometries).  Idempotent and cheap when already
        warm; reached facade-first through
        :meth:`repro.engine.dispatch.BackendDispatcher.warm`.
        """
        tier = resolve_kernel(self.resolved_kernel(kernel), warn=False)
        module = kernel_module(tier)
        if module is not None:
            module.warm()
        if algorithm is not None:
            self.trace_for(algorithm).segment_walk()
        return self

    def run_aggregates(self, algorithm: MarchAlgorithm, mode: OperatingMode,
                       walks=None, trace: Optional[OperationTrace] = None,
                       kernel: Optional[str] = None):
        """Measure one run and return raw ``(by_source, counters, cycles, stress)``.

        The aggregate core behind :meth:`run`, also consumed by
        :class:`repro.engine.power_campaign.VectorizedPowerCampaign` (which
        assembles BIST results instead of session results).  ``trace``
        optionally supplies the compiled
        :class:`~repro.march.execution.OperationTrace` to replay (it must
        describe this engine's traversal); by default the engine compiles
        and memoises its own.  ``walks`` is the legacy hook for raw
        per-element ``(direction, rows, words)`` coordinate arrays and
        forces the segmented kernel (the flat kernel needs the compiled
        segment structure a bare walk list does not carry).  ``kernel``
        overrides the engine's execution kernel for this run.
        """
        algorithm.validate()
        chosen = self.resolved_kernel(kernel)
        if walks is not None and trace is None:
            chosen = "segmented"
        chosen = resolve_kernel(chosen)
        if chosen != "segmented":
            if trace is None:
                trace = self.trace_for(algorithm)
            result = self.run_aggregates_batch([(algorithm, mode, trace)],
                                               kernel=chosen)[0]
            by_source, counters, cycles, stress = result
        else:
            if walks is None:
                if trace is not None:
                    walks = trace.element_walks()
                else:
                    walks = [self._element_walk(element)
                             for element in algorithm.elements]
            if mode is OperatingMode.LOW_POWER_TEST:
                by_source, counters, cycles, stress = \
                    self._run_low_power(algorithm, walks)
            else:
                by_source, counters, cycles, stress = \
                    self._run_functional(algorithm, walks)
            self.last_kernel_used = "segmented"
        self.last_stress = stress
        self.last_counters = counters
        return by_source, counters, cycles, stress

    def run_aggregates_batch(self, requests, collect_errors: bool = False,
                             kernel: Optional[str] = None):
        """Measure a stack of runs in one flat pass over shared structures.

        ``requests`` is a sequence of ``(algorithm, mode, trace)`` units —
        any mix of algorithms, operating modes and (same-geometry) address
        orders; ``trace`` may be ``None`` to use the engine's own memoised
        trace.  All low-power units are evaluated together: their compiled
        segment arrays are concatenated and reduced per (unit, element)
        slot in a single stacked NumPy pass, so a whole sweep axis shares
        one trip through the kernel.  Per-slot reductions are sequential
        within each slot's own segments, which makes every unit's result
        **bit-identical** to running it alone — the property the batched
        sweep strategy relies on.

        Returns one ``(by_source, counters, cycles, stress)`` tuple per
        request, in order.  A unit the exact replay cannot represent
        raises :class:`UnsupportedConfiguration` — or, with
        ``collect_errors=True``, yields the exception instance in its
        result slot so a grid driver can reroute just that unit to a
        fallback backend.

        ``kernel`` overrides the engine's kernel for this batch.  The
        batch path *is* the flat orchestration, so ``"segmented"`` maps
        to the ``"flat"`` tier here (matching the pre-tier behaviour of
        this method); the compiled tiers (``"jit"``, ``"gpu"``) swap in
        their own implementation of the per-segment slot reductions and
        are availability-checked through :func:`resolve_kernel` first.
        """
        tier = resolve_kernel(self.resolved_kernel(kernel))
        if tier == "segmented":
            tier = "flat"
        prepared = []
        for algorithm, mode, trace in requests:
            algorithm.validate()
            if trace is None:
                trace = self.trace_for(algorithm)
            prepared.append((algorithm, mode, trace))

        results: List[object] = [None] * len(prepared)
        low_power_units = []
        for index, (algorithm, mode, trace) in enumerate(prepared):
            if mode is OperatingMode.LOW_POWER_TEST:
                low_power_units.append(index)
            else:
                # Functional mode has no support constraints: every
                # traversal replays exactly, so nothing to collect here.
                results[index] = self._functional_flat(algorithm, trace)
        if low_power_units:
            units = [prepared[index] for index in low_power_units]
            for index, outcome in zip(low_power_units,
                                      self._low_power_flat(units,
                                                           collect_errors,
                                                           tier)):
                results[index] = outcome
        self.last_kernel_used = tier
        return results

    def compare_modes(self, algorithm: MarchAlgorithm) -> "ModeComparison":
        """Vectorized functional vs. low-power comparison (the PRR measurement)."""
        from ..core.session import ModeComparison

        functional = self.run(algorithm, OperatingMode.FUNCTIONAL)
        low_power = self.run(algorithm, OperatingMode.LOW_POWER_TEST)
        return ModeComparison(algorithm=algorithm.name,
                              functional=functional, low_power=low_power)

    # ------------------------------------------------------------------
    # Functional mode: closed-form vector reductions
    # ------------------------------------------------------------------
    def _run_functional(self, algorithm: MarchAlgorithm, walks):
        geo, k = self.geometry, self._k
        bits = geo.bits_per_word
        per_access_decode = k.row_decode + k.col_decode
        unselected = geo.columns - bits

        by_source: Dict[PowerSource, float] = {}
        counters = {"row_transitions": 0, "full_restores": 0,
                    "full_res_column_cycles": 0, "floating_column_cycles": 0,
                    "partial_res_column_cycles": 0, "bank_transitions": 0}
        track = self.track_cell_stress and geo.columns <= 128
        stress_uniform = 0
        prev_row: Optional[int] = None
        prev_bank: Optional[int] = None
        banked = geo.is_banked
        cycles = 0

        for element, (_, rows_arr, _) in zip(algorithm.elements, walks):
            n_addr = int(rows_arr.size)
            ops = element.operation_count
            n_access = n_addr * ops

            # Operation + decode energy (booked per access under its own kind).
            self._add(by_source, PowerSource.OPERATION_READ,
                      n_addr * element.read_count
                      * (per_access_decode + bits * k.read_col))
            self._add(by_source, PowerSource.OPERATION_WRITE,
                      n_addr * element.write_count
                      * (per_access_decode + bits * k.write_col))

            # Word-line recharges: one per row change, attributed to the kind
            # of the first operation of the element (the access that lands on
            # the new row).
            changes = int(np.count_nonzero(np.diff(rows_arr)))
            new_row_at_boundary = prev_row is None or int(rows_arr[0]) != prev_row
            # A boundary onto a different row recharges the word line; it
            # only counts as a row *transition* when a row was active before.
            counters["row_transitions"] += changes
            if new_row_at_boundary and prev_row is not None:
                counters["row_transitions"] += 1
            recharges = changes + (1 if new_row_at_boundary else 0)
            wl_source = (PowerSource.OPERATION_READ if element.operations[0].is_read
                         else PowerSource.OPERATION_WRITE)
            self._add(by_source, wl_source, recharges * k.wordline)
            prev_row = int(rows_arr[-1])

            # Bank-select transitions (banked arrays only): one per access
            # whose row lives in a different bank than the previous access's.
            if banked:
                banks_arr = self._bank_of(rows_arr)
                bank_changes = int(np.count_nonzero(np.diff(banks_arr)))
                if prev_bank is not None and int(banks_arr[0]) != prev_bank:
                    bank_changes += 1
                counters["bank_transitions"] += bank_changes
                prev_bank = int(banks_arr[-1])

            # Every unselected column keeps its pre-charge ON: aggregate RES.
            res_energy = n_access * unselected * k.res_per_column
            self._add(by_source, PowerSource.PRECHARGE_UNSELECTED, res_energy)
            self._add(by_source, PowerSource.CELL_RES, res_energy * CELL_RES_RATIO)
            counters["full_res_column_cycles"] += n_access * unselected

            self._add(by_source, PowerSource.LEAKAGE, n_access * k.leakage)
            if track:
                stress_uniform += ops * (geo.words_per_row - 1)
            cycles += n_access

        # Booked once as count x constant (not per element) so both kernels
        # compute the identical floating-point sum.
        self._add(by_source, PowerSource.BANK_SELECT,
                  counters["bank_transitions"] * k.bank_select)

        stress = None
        if self.track_cell_stress:
            shape = (geo.rows, geo.words_per_row)
            full = np.zeros(shape, dtype=np.int64)
            if track:
                full += stress_uniform
            stress = CellStressTotals(
                full_res=full,
                partial_res=np.zeros(shape, dtype=np.int64),
                reads_per_cell=algorithm.read_count,
                writes_per_cell=algorithm.write_count,
            )
        return by_source, counters, cycles, stress

    # ------------------------------------------------------------------
    # Low-power test mode: per-row-segment vectorization
    # ------------------------------------------------------------------
    def _run_low_power(self, algorithm: MarchAlgorithm, walks):
        geo, k = self.geometry, self._k
        bits = geo.bits_per_word
        n_words = geo.words_per_row
        per_access_decode = k.row_decode + k.col_decode
        track = self.track_cell_stress

        by_source: Dict[PowerSource, float] = {}
        counters = {"row_transitions": 0, "full_restores": 0,
                    "full_res_column_cycles": 0, "floating_column_cycles": 0,
                    "bank_transitions": 0}
        partial_res_cycles = 0
        control_events = 0
        lptest_toggles = 0
        banked = geo.is_banked
        prev_bank: Optional[int] = None

        shape = (geo.rows, n_words)
        stress_full = np.zeros(shape, dtype=np.int64) if track else None
        stress_partial = np.zeros(shape, dtype=np.int64) if track else None

        #: per-word cycle index at which the word's bit lines started to
        #: float (pre-charge OFF, lines at VDD at that instant); -1 while the
        #: word is attached to a pre-charge circuit.
        float_start = np.full(n_words, -1, dtype=np.int64)

        prev_word = -1
        prev_row: Optional[int] = None
        cycle = 0

        for index, element in enumerate(algorithm.elements):
            direction, rows_arr, words_arr = walks[index]
            ops = element.operation_count
            delta = traversal_neighbour_delta(direction)
            if index + 1 < len(walks):
                next_first_row: Optional[int] = int(walks[index + 1][1][0])
            else:
                next_first_row = None
            wl_source = (PowerSource.OPERATION_READ if element.operations[0].is_read
                         else PowerSource.OPERATION_WRITE)

            boundaries = np.flatnonzero(np.diff(rows_arr)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [rows_arr.size]))

            for start, end in zip(starts, ends):
                start, end = int(start), int(end)
                row = int(rows_arr[start])
                seg = words_arr[start:end]
                m = int(seg.size)
                base = cycle + start * ops

                # -- support checks: the planner keeps the *traversal
                # neighbour* pre-charged, so the bulk replay is exact only
                # when that neighbour is the next selected word and the
                # selected word's lines are held at VDD when it is selected.
                if m > 1 and not np.array_equal(seg[1:], seg[:-1] + delta):
                    raise UnsupportedConfiguration(
                        f"order {self.order.name!r} does not follow the "
                        "pre-charged traversal neighbour within a row; use the "
                        "reference backend")
                first_word = int(seg[0])
                if float_start[first_word] >= 0:
                    raise UnsupportedConfiguration(
                        "selected word's bit lines are floating at selection "
                        "time; use the reference backend")

                neighbours = seg + delta
                valid = (neighbours >= 0) & (neighbours < n_words)
                n_enabled = int(np.count_nonzero(valid))

                # -- word line / row transition accounting.
                if prev_row is None or row != prev_row:
                    if prev_row is not None:
                        counters["row_transitions"] += 1
                    self._add(by_source, wl_source, k.wordline)
                    if banked:
                        bank = geo.bank_of_row(row)
                        if prev_bank is not None and bank != prev_bank:
                            counters["bank_transitions"] += 1
                        prev_bank = bank
                prev_row = row

                # -- control elements: one switching event per column change
                # (plus the very first cycle of the run).
                control_events += (m - 1)
                if prev_word < 0 or prev_word != first_word:
                    control_events += 1
                prev_word = int(seg[-1])

                # -- operations on the selected words (held at VDD, so the
                # per-access energies are the same constants as functional
                # mode).
                self._add(by_source, PowerSource.OPERATION_READ,
                          m * element.read_count
                          * (per_access_decode + bits * k.read_col))
                self._add(by_source, PowerSource.OPERATION_WRITE,
                          m * element.write_count
                          * (per_access_decode + bits * k.write_col))
                self._add(by_source, PowerSource.LEAKAGE, m * ops * k.leakage)

                # -- newly floating words at the segment's first access:
                # everything previously attached except the selected word and
                # its pre-charged neighbour.
                newly = float_start < 0
                newly[first_word] = False
                if bool(valid[0]):
                    newly[int(neighbours[0])] = False
                n_newly = int(np.count_nonzero(newly))
                partial_res_cycles += (n_newly + (m - 1)) * bits
                if track:
                    stress_partial[row][newly] += 1
                    if m > 1:
                        np.add.at(stress_partial[row], seg[:-1], 1)
                float_start[newly] = base

                # -- the pre-charged neighbour of each visit: sustains a full
                # RES every cycle and recharges whatever its floating lines
                # lost (nonzero only on the visit's first cycle).
                enabled_words = neighbours[valid]
                sustain = n_enabled * ops * bits * k.res_per_column
                self._add(by_source, PowerSource.PRECHARGE_UNSELECTED, sustain)
                self._add(by_source, PowerSource.CELL_RES, sustain * CELL_RES_RATIO)
                counters["full_res_column_cycles"] += n_enabled * ops * bits
                if track and n_enabled:
                    np.add.at(stress_full[row], enabled_words, ops)
                if n_enabled:
                    visit_cycles = base + np.flatnonzero(valid) * ops
                    fs = float_start[enabled_words]
                    floating = fs >= 0
                    if np.any(floating):
                        self._add(by_source, PowerSource.PRECHARGE_UNSELECTED,
                                  self._decayed_restore_energy(
                                      visit_cycles[floating] - fs[floating]))

                # -- post-segment floating state: each visited word refloats
                # one visit after its own selection; the last visited word
                # and its neighbour stay attached.
                if m > 1:
                    float_start[seg[:-1]] = base + np.arange(1, m) * ops
                float_start[int(seg[-1])] = -1
                if bool(valid[-1]):
                    float_start[int(neighbours[-1])] = -1

                counters["floating_column_cycles"] += ops * (
                    m * (geo.columns - bits) - n_enabled * bits)

                # -- the paper's one functional-mode cycle per row: restore
                # every bit line during the last access before the traversal
                # leaves this row (or the test ends).
                if end < rows_arr.size:
                    restore_now = True  # next segment of this element = new row
                elif next_first_row is None:
                    restore_now = True  # last access of the whole test
                else:
                    restore_now = next_first_row != row
                if restore_now:
                    last_cycle = base + m * ops - 1
                    floating = float_start >= 0
                    if np.any(floating):
                        self._add(by_source, PowerSource.ROW_TRANSITION_RESTORE,
                                  self._decayed_restore_energy(
                                      last_cycle - float_start[floating]))
                        float_start[floating] = -1
                    counters["full_restores"] += 1
                    lptest_toggles += 1

            cycle += int(rows_arr.size) * ops

        self._add(by_source, PowerSource.CONTROL_LOGIC,
                  control_events * k.control_element)
        self._add(by_source, PowerSource.LPTEST_DRIVER,
                  lptest_toggles * k.lptest_line)
        self._add(by_source, PowerSource.BANK_SELECT,
                  counters["bank_transitions"] * k.bank_select)
        counters["partial_res_column_cycles"] = partial_res_cycles

        stress = None
        if track:
            stress = CellStressTotals(
                full_res=stress_full,
                partial_res=stress_partial,
                reads_per_cell=algorithm.read_count,
                writes_per_cell=algorithm.write_count,
            )
        return by_source, counters, cycle, stress

    # ------------------------------------------------------------------
    # Flat kernel: whole-run NumPy reductions over the compiled segments
    # ------------------------------------------------------------------
    def _functional_flat(self, algorithm: MarchAlgorithm,
                         trace: OperationTrace):
        """Functional mode from the compiled segment structure alone.

        Same per-element closed forms as :meth:`_run_functional`, but the
        only sequence-dependent quantity — word-line recharges at row
        transitions — now comes from the memoised segment counts instead
        of an O(accesses) diff per element per run, so a functional
        measurement costs O(elements) once the trace is compiled.
        """
        segwalk = trace.segment_walk()
        geo, k = self.geometry, self._k
        bits = geo.bits_per_word
        per_access_decode = k.row_decode + k.col_decode
        unselected = geo.columns - bits

        by_source: Dict[PowerSource, float] = {}
        counters = {"row_transitions": 0, "full_restores": 0,
                    "full_res_column_cycles": 0, "floating_column_cycles": 0,
                    "partial_res_column_cycles": 0, "bank_transitions": 0}
        track = self.track_cell_stress and geo.columns <= 128
        stress_uniform = 0
        prev_row: Optional[int] = None
        cycles = 0

        # Segments are maximal same-row runs, so the per-segment row array
        # is exactly the run's row-change sequence; bank transitions are
        # its bank-value changes (equal rows across an element boundary
        # contribute a zero diff, matching the reference's "no transition").
        if geo.is_banked:
            banks_seg = self._bank_of(segwalk.row)
            counters["bank_transitions"] = int(
                np.count_nonzero(banks_seg[1:] != banks_seg[:-1]))
            self._add(by_source, PowerSource.BANK_SELECT,
                      counters["bank_transitions"] * self._k.bank_select)

        for element, compiled, (lo, hi) in zip(
                algorithm.elements, trace.elements, segwalk.element_slices):
            n_addr = len(compiled.coordinates)
            ops = element.operation_count
            n_access = n_addr * ops

            self._add(by_source, PowerSource.OPERATION_READ,
                      n_addr * element.read_count
                      * (per_access_decode + bits * k.read_col))
            self._add(by_source, PowerSource.OPERATION_WRITE,
                      n_addr * element.write_count
                      * (per_access_decode + bits * k.write_col))

            changes = (hi - lo) - 1
            first_row = int(segwalk.row[lo])
            new_row_at_boundary = prev_row is None or first_row != prev_row
            counters["row_transitions"] += changes
            if new_row_at_boundary and prev_row is not None:
                counters["row_transitions"] += 1
            recharges = changes + (1 if new_row_at_boundary else 0)
            wl_source = (PowerSource.OPERATION_READ if element.operations[0].is_read
                         else PowerSource.OPERATION_WRITE)
            self._add(by_source, wl_source, recharges * k.wordline)
            prev_row = int(segwalk.row[hi - 1])

            res_energy = n_access * unselected * k.res_per_column
            self._add(by_source, PowerSource.PRECHARGE_UNSELECTED, res_energy)
            self._add(by_source, PowerSource.CELL_RES, res_energy * CELL_RES_RATIO)
            counters["full_res_column_cycles"] += n_access * unselected

            self._add(by_source, PowerSource.LEAKAGE, n_access * k.leakage)
            if track:
                stress_uniform += ops * (geo.words_per_row - 1)
            cycles += n_access

        stress = None
        if self.track_cell_stress:
            shape = (geo.rows, geo.words_per_row)
            full = np.zeros(shape, dtype=np.int64)
            if track:
                full += stress_uniform
            stress = CellStressTotals(
                full_res=full,
                partial_res=np.zeros(shape, dtype=np.int64),
                reads_per_cell=algorithm.read_count,
                writes_per_cell=algorithm.write_count,
            )
        return by_source, counters, cycles, stress

    def _walk_chains(self, trace: OperationTrace, segwalk: SegmentWalk,
                     walks, stress_partial):
        """Evaluate the state-dependent parts of the carried-over chains.

        Chains — runs of segments joined by a skipped end-of-row
        restoration, which only happens when an element boundary stays on
        one word line — are the one place where floating-column state
        crosses a segment, so their decayed-recharge energies cannot be
        closed-form per segment.  There are at most ``element_count - 1``
        of them per run; this walker replays just those segments with the
        exact per-segment state machine.  Returns the ordered
        ``(source, energy)`` additions and the chains' partial-RES cycle
        count; raises :class:`UnsupportedConfiguration` when a chain
        selects a word whose bit lines are floating.  All
        state-independent quantities of chain segments (operation/RES
        energies, word-line and control events, counters) are covered by
        the flat pass and deliberately not re-counted here.
        """
        adds: List[Tuple[PowerSource, float]] = []
        partial_res_cycles = 0
        if not segwalk.chains:
            return adds, partial_res_cycles
        geo = self.geometry
        bits = geo.bits_per_word
        n_words = geo.words_per_row
        track = stress_partial is not None

        for lo, hi in segwalk.chains:
            float_start = np.full(n_words, -1, dtype=np.int64)
            for index in range(lo, hi):
                element = int(segwalk.element[index])
                ops = trace.elements[element].operation_count
                delta = segwalk.deltas[element]
                start = int(segwalk.start[index])
                m = int(segwalk.length[index])
                seg = walks[element][2][start:start + m]
                row = int(segwalk.row[index])
                base = int(segwalk.base_cycle[index])

                first_word = int(seg[0])
                if float_start[first_word] >= 0:
                    raise UnsupportedConfiguration(
                        "selected word's bit lines are floating at selection "
                        "time; use the reference backend")
                neighbours = seg + delta
                valid = (neighbours >= 0) & (neighbours < n_words)

                newly = float_start < 0
                newly[first_word] = False
                if bool(valid[0]):
                    newly[int(neighbours[0])] = False
                n_newly = int(np.count_nonzero(newly))
                partial_res_cycles += (n_newly + (m - 1)) * bits
                if track:
                    stress_partial[row][newly] += 1
                float_start[newly] = base

                enabled_words = neighbours[valid]
                if enabled_words.size:
                    visit_cycles = base + np.flatnonzero(valid) * ops
                    floated = float_start[enabled_words]
                    floating = floated >= 0
                    if np.any(floating):
                        adds.append((PowerSource.PRECHARGE_UNSELECTED,
                                     self._decayed_restore_energy(
                                         visit_cycles[floating]
                                         - floated[floating])))

                if m > 1:
                    float_start[seg[:-1]] = base + np.arange(1, m) * ops
                float_start[int(seg[-1])] = -1
                if bool(valid[-1]):
                    float_start[int(neighbours[-1])] = -1

                if bool(segwalk.restore[index]):
                    last_cycle = base + m * ops - 1
                    floating = float_start >= 0
                    if np.any(floating):
                        adds.append((PowerSource.ROW_TRANSITION_RESTORE,
                                     self._decayed_restore_energy(
                                         last_cycle - float_start[floating])))
                        float_start[floating] = -1
        return adds, partial_res_cycles

    def _low_power_flat(self, units, collect_errors: bool = False,
                        tier: str = "flat"):
        """Low-power test mode for a stack of units in one flat pass.

        Every quantity of :meth:`_run_low_power` re-derived as per-segment
        closed forms over the compiled segment arrays: the within-segment
        decayed-recharge and end-of-row restoration sums are geometric
        series in ``exp(-ops * T / tau)``, so no per-word or per-segment
        Python iteration remains — only the rare carried-over chains walk
        (:meth:`_walk_chains`).  Per-(unit, element) slot reductions use
        ``np.bincount``, whose per-bin sums run sequentially over that
        slot's own segments: a unit's result is bit-identical whether it
        is evaluated alone or stacked with an entire grid, and tiles
        (:attr:`segment_chunk`) are unit-local so chunking preserves the
        same property on degenerate segment-per-access orders.

        ``tier`` selects who executes the per-tile slot reductions: the
        in-module numpy array program (:func:`_reduce_tile_arrays`, the
        ``"flat"`` tier) or a compiled tier module's ``reduce_tile`` (the
        same program under numba / cupy).  Everything around the tile —
        support checks, chain walks, per-unit assembly — is tier-invariant
        by construction.
        """
        geo, k = self.geometry, self._k
        bits = geo.bits_per_word
        n_words = geo.words_per_row
        unselected_bits = geo.columns - bits
        per_access_decode = k.row_decode + k.col_decode
        ratio = self.clock.period / self._tau     # per-cycle decay exponent
        boundary_gain = float(np.exp(ratio))      # the "-1 cycle" correction
        coeff = k.restore_coeff * bits
        track = self.track_cell_stress

        outcomes: List[object] = [None] * len(units)
        active = []
        for position, (algorithm, _, trace) in enumerate(units):
            try:
                segwalk = trace.segment_walk()
                if not all(segwalk.neighbour_ok):
                    raise UnsupportedConfiguration(
                        f"order {trace.order.name!r} does not follow the "
                        "pre-charged traversal neighbour within a row; use "
                        "the reference backend")
                walks = trace.element_walks()
                stress_partial = stress_full = None
                if track:
                    shape = (geo.rows, n_words)
                    stress_full = np.zeros(shape, dtype=np.int64)
                    stress_partial = np.zeros(shape, dtype=np.int64)
                chain_adds, chain_prc = self._walk_chains(
                    trace, segwalk, walks, stress_partial)
            except EngineError as error:
                if not collect_errors:
                    raise
                outcomes[position] = error
                continue
            active.append({
                "position": position, "algorithm": algorithm, "trace": trace,
                "segwalk": segwalk, "walks": walks,
                "stress_full": stress_full, "stress_partial": stress_partial,
                "chain_adds": chain_adds, "chain_prc": chain_prc,
            })
        if not active:
            return outcomes

        # ---- per-slot constants (slot = one element of one unit) -------
        slot_ops: List[int] = []
        slot_delta: List[int] = []
        for unit in active:
            unit["offset"] = len(slot_ops)
            trace = unit["trace"]
            for element_index, element in enumerate(trace.elements):
                slot_ops.append(element.operation_count)
                slot_delta.append(unit["segwalk"].deltas[element_index])
        total_slots = len(slot_ops)
        ops_arr = np.asarray(slot_ops, dtype=np.int64)
        delta_arr = np.asarray(slot_delta, dtype=np.int64)
        x_arr = ops_arr * ratio                   # decay exponent per slot

        # ---- stacked per-segment pass ---------------------------------
        wl_count = np.zeros(total_slots, dtype=np.int64)
        enabled_sum = np.zeros(total_slots, dtype=np.int64)
        prc_flat = np.zeros(total_slots, dtype=np.int64)
        recharge = np.zeros(total_slots, dtype=np.float64)
        restore_energy = np.zeros(total_slots, dtype=np.float64)

        module = kernel_module(tier)
        if module is not None:
            def reduce_tile(*args):
                return module.reduce_tile(*args)
        else:
            def reduce_tile(*args):
                return _reduce_tile_arrays(np, *args)

        def reduce_piece(unit, lo, hi):
            """Accumulate one unit-local tile of segments into the slots."""
            segwalk = unit["segwalk"]
            slots = unit["offset"] + segwalk.element[lo:hi]
            m = segwalk.length[lo:hi]
            first = segwalk.first_word[lo:hi]
            last = segwalk.last_word[lo:hi]
            carry = segwalk.carry_in[lo:hi]
            chained = segwalk.in_chain[lo:hi]
            delta_seg = delta_arr[slots]
            x = x_arr[slots]

            wl, enabled, prc, rec, rst = reduce_tile(
                slots, m, first, last, carry, chained, delta_seg, x,
                n_words, bits, coeff, boundary_gain, total_slots)
            wl_count[:] += wl
            enabled_sum[:] += enabled
            prc_flat[:] += prc
            recharge[:] += rec
            restore_energy[:] += rst

        chunk = max(1, int(self.segment_chunk))
        for unit in active:
            total = unit["segwalk"].segment_count
            for lo in range(0, total, chunk):
                reduce_piece(unit, lo, min(lo + chunk, total))

        # ---- per-unit assembly ----------------------------------------
        for unit in active:
            algorithm = unit["algorithm"]
            trace = unit["trace"]
            segwalk = unit["segwalk"]
            offset = unit["offset"]
            by_source: Dict[PowerSource, float] = {}
            counters = {"row_transitions": 0, "full_restores": 0,
                        "full_res_column_cycles": 0,
                        "floating_column_cycles": 0,
                        "bank_transitions": 0}

            carry = segwalk.carry_in
            counters["row_transitions"] = int(np.count_nonzero(~carry[1:]))
            if geo.is_banked:
                banks_seg = self._bank_of(segwalk.row)
                counters["bank_transitions"] = int(
                    np.count_nonzero(banks_seg[1:] != banks_seg[:-1]))
                self._add(by_source, PowerSource.BANK_SELECT,
                          counters["bank_transitions"] * k.bank_select)
            restores = int(np.count_nonzero(segwalk.restore))
            counters["full_restores"] = restores
            # Control elements switch on every within-segment word change
            # plus every segment boundary that lands on a different word
            # (and once for the very first cycle of the run).
            visits = sum(len(element.coordinates)
                         for element in trace.elements)
            control_events = (visits - segwalk.segment_count) + 1
            if segwalk.segment_count > 1:
                control_events += int(np.count_nonzero(
                    segwalk.first_word[1:] != segwalk.last_word[:-1]))

            for element, compiled in zip(algorithm.elements, trace.elements):
                slot = offset + compiled.index
                ops = compiled.operation_count
                n_addr = len(compiled.coordinates)
                wl_source = (PowerSource.OPERATION_READ
                             if element.operations[0].is_read
                             else PowerSource.OPERATION_WRITE)
                self._add(by_source, PowerSource.OPERATION_READ,
                          n_addr * element.read_count
                          * (per_access_decode + bits * k.read_col))
                self._add(by_source, PowerSource.OPERATION_WRITE,
                          n_addr * element.write_count
                          * (per_access_decode + bits * k.write_col))
                self._add(by_source, wl_source, int(wl_count[slot]) * k.wordline)
                sustain = int(enabled_sum[slot]) * ops * bits * k.res_per_column
                self._add(by_source, PowerSource.PRECHARGE_UNSELECTED, sustain)
                self._add(by_source, PowerSource.CELL_RES,
                          sustain * CELL_RES_RATIO)
                self._add(by_source, PowerSource.LEAKAGE,
                          n_addr * ops * k.leakage)
                self._add(by_source, PowerSource.PRECHARGE_UNSELECTED,
                          float(recharge[slot]))
                self._add(by_source, PowerSource.ROW_TRANSITION_RESTORE,
                          float(restore_energy[slot]))
                counters["full_res_column_cycles"] += \
                    int(enabled_sum[slot]) * ops * bits
                counters["floating_column_cycles"] += ops * (
                    n_addr * unselected_bits - int(enabled_sum[slot]) * bits)

            for source, energy in unit["chain_adds"]:
                self._add(by_source, source, energy)
            self._add(by_source, PowerSource.CONTROL_LOGIC,
                      control_events * k.control_element)
            self._add(by_source, PowerSource.LPTEST_DRIVER,
                      restores * k.lptest_line)
            counters["partial_res_column_cycles"] = (
                int(np.sum(prc_flat[offset:offset + len(trace.elements)]))
                + unit["chain_prc"])

            stress = None
            if track:
                self._flat_stress(unit, delta_arr)
                stress = CellStressTotals(
                    full_res=unit["stress_full"],
                    partial_res=unit["stress_partial"],
                    reads_per_cell=algorithm.read_count,
                    writes_per_cell=algorithm.write_count,
                )
            outcomes[unit["position"]] = (
                by_source, counters, trace.step_count, stress)
        return outcomes

    def _flat_stress(self, unit, delta_arr) -> None:
        """Accumulate the per-cell RES stress of one unit, flat.

        State-independent parts (the pre-charged neighbour's full RES, the
        refloat of every visited-but-last word) run over the whole visit
        arrays; the newly-floating mask of chain-free segments is the
        segment's whole row minus the selected word and its held
        neighbour.  Chain segments' newly-floating words were already
        added by :meth:`_walk_chains`.
        """
        geo = self.geometry
        n_words = geo.words_per_row
        trace = unit["trace"]
        segwalk = unit["segwalk"]
        walks = unit["walks"]
        stress_full = unit["stress_full"]
        stress_partial = unit["stress_partial"]

        for element, (lo, hi) in zip(trace.elements, segwalk.element_slices):
            _, rows, words = walks[element.index]
            delta = segwalk.deltas[element.index]
            neighbours = words + delta
            valid = (neighbours >= 0) & (neighbours < n_words)
            if np.any(valid):
                np.add.at(stress_full, (rows[valid], neighbours[valid]),
                          element.operation_count)
            not_last = np.ones(rows.size, dtype=bool)
            not_last[segwalk.start[lo:hi] + segwalk.length[lo:hi] - 1] = False
            if np.any(not_last):
                np.add.at(stress_partial, (rows[not_last], words[not_last]), 1)

        free = ~segwalk.in_chain
        rows_free = segwalk.row[free]
        stress_partial += np.bincount(
            rows_free, minlength=geo.rows).astype(np.int64)[:, None]
        np.add.at(stress_partial, (rows_free, segwalk.first_word[free]), -1)
        delta_seg = delta_arr[unit["offset"] + segwalk.element]
        held = segwalk.first_word + delta_seg
        held_free = free & (held >= 0) & (held < n_words)
        np.add.at(stress_partial,
                  (segwalk.row[held_free], held[held_free]), -1)

    # ------------------------------------------------------------------
    @staticmethod
    def _add(by_source: Dict[PowerSource, float], source: PowerSource,
             energy: float) -> None:
        if energy == 0.0:
            return
        by_source[source] = by_source.get(source, 0.0) + energy
