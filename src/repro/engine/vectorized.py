"""NumPy-vectorized execution backend for March test power measurement.

The reference path (:class:`repro.core.session.TestSession` driving
:class:`repro.sram.SRAM`) executes a March test one access cycle at a time
through Python objects.  That is the right tool for fault simulation and for
inspecting individual events, but it caps measured experiments at toy
geometries: the paper's full 512 x 512 array needs millions of cycles per
mode and minutes of wall clock per algorithm.

This module re-derives the *same measurements* as whole-array operations:

* **functional mode** collapses to closed-form vector reductions — every
  access spends constant operation/decode/RES/leakage energy, and the only
  sequence-dependent quantity (word-line recharges at row transitions) is a
  count over the coordinate arrays of the address order;
* **low-power test mode** is processed one *row segment* at a time (a
  maximal run of accesses on one word line).  Within a segment the paper's
  pre-charge policy is strictly structured — the selected column and its
  traversal neighbour are held, every other column floats and decays
  exponentially, and the one functional-mode restoration cycle closes the
  row — so background state, pre-charge activity masks, RES stress counts
  and the decay-dependent restoration energies are all computed as NumPy
  array expressions over the segment instead of per-cell Python loops.

Equivalence with the reference backend is exact by construction (the same
per-event formulas evaluated in bulk, see ``tests/test_engine_equivalence.py``);
configurations the bulk replay cannot represent — injected faults, custom
planners, address orders whose next access is not the traversal neighbour —
raise :class:`UnsupportedConfiguration` so callers can fall back to the
reference backend instead of silently measuring something else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..circuit.technology import TechnologyParameters, default_technology
from ..core.lowpower import traversal_neighbour_delta
from ..march.algorithm import MarchAlgorithm
from ..march.element import AddressingDirection, MarchElement
from ..march.execution import resolve_direction
from ..march.ordering import AddressOrder, RowMajorOrder
from ..power.accounting import EnergyLedger
from ..power.model import PowerModel
from ..power.sources import PowerSource
from ..sram.geometry import ArrayGeometry
from ..sram.memory import CELL_RES_RATIO, OperatingMode, SRAM
from ..sram.timing import ClockCycle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.session import ModeComparison, TestRunResult

try:  # numpy is required for this backend only; the scalar path runs without it
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None  # type: ignore[assignment]

from .dispatch import EngineError


class UnsupportedConfiguration(EngineError):
    """The exact bulk replay cannot represent this run.

    Raised when the run depends on state the vectorized formulas do not
    model (an address order whose next access is not the pre-charged
    traversal neighbour, a selected column whose bit lines are floating at
    selection time, ...).  The reference backend handles every such case;
    ``backend="auto"`` falls back to it automatically.
    """


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise EngineError(
            "the vectorized backend requires numpy; install numpy or use "
            "backend='reference'"
        )


@dataclass(frozen=True)
class _EnergyConstants:
    """Per-event energies shared by every access (mirrors the scalar models)."""

    row_decode: float          # RowDecoder internal switching per access
    col_decode: float          # ColumnDecoder switching per access
    wordline: float            # charging the selected word line (on row change)
    read_col: float            # sense + read-swing restoration, per column
    write_col: float           # drivers + full-swing restoration, per column
    res_per_column: float      # P_A: one pre-charged unselected column, one cycle
    restore_coeff: float       # C_bl * VDD^2 * (1 + overhead), per column
    control_element: float     # one added control element switching
    lptest_line: float         # one LPtest mode-selection line transition
    leakage: float             # whole-array leakage per cycle


@dataclass
class CellStressTotals:
    """Aggregate per-cell stress computed by the vectorized backend.

    Arrays are indexed ``[row, word]``.  For word-oriented geometries every
    physical column of a word carries identical stress, so one entry stands
    for each of the word's ``bits_per_word`` cells.  ``reads_per_cell`` and
    ``writes_per_cell`` are uniform across the array (every March element
    applies its operations to every address) and therefore plain integers.
    """

    full_res: "np.ndarray"
    partial_res: "np.ndarray"
    reads_per_cell: int
    writes_per_cell: int


class VectorizedEngine:
    """Batch execution backend measuring March test power as array reductions.

    Construction mirrors :class:`repro.core.session.TestSession`: a geometry,
    a technology, an address order (row-major by default), and the concrete
    direction ``⇕`` elements resolve to.  ``detailed`` carries the session's
    book-keeping switch: when true (the default for arrays up to
    ``SRAM.DETAILED_CELL_LIMIT`` cells) the engine also accumulates the
    per-cell stress statistics the reference memory would have collected,
    exposed as :attr:`last_stress` after each run.
    """

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 order: Optional[AddressOrder] = None,
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 detailed: Optional[bool] = None) -> None:
        _require_numpy()
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.order = order or RowMajorOrder(geometry)
        self.any_direction = any_direction
        self.clock = ClockCycle.from_technology(self.tech)
        detailed_default = geometry.cell_count <= SRAM.DETAILED_CELL_LIMIT
        self.track_cell_stress = detailed_default if detailed is None else detailed
        self._tau = self.tech.floating_discharge_tau(geometry.rows)
        self._k = self._derive_constants()
        #: Per-cell stress totals of the most recent :meth:`run` (``None``
        #: when stress tracking is off).
        self.last_stress: Optional[CellStressTotals] = None
        #: Raw counters of the most recent :meth:`run`, including the
        #: ``partial_res_column_cycles`` count that
        #: :class:`~repro.core.session.TestRunResult` does not surface.
        self.last_counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Constant derivation — every value comes from the shared power model /
    # technology description (the same definitions the scalar periphery and
    # column models use), so tuning a constant there cannot silently break
    # the bit-exact equivalence of the two backends.
    # ------------------------------------------------------------------
    def _derive_constants(self) -> _EnergyConstants:
        tech, geo = self.tech, self.geometry
        c_bl = tech.bitline_capacitance(geo.rows)
        overhead = 1.0 + tech.precharge_overhead_factor
        model = PowerModel(geo, tech=tech)
        return _EnergyConstants(
            row_decode=model.row_decode_energy(),
            col_decode=model.column_decode_energy(),
            wordline=tech.swing_energy(tech.wordline_capacitance(geo.columns)),
            read_col=model.read_column_energy(),
            write_col=model.write_column_energy(),
            res_per_column=model.res_energy_per_column(),
            restore_coeff=tech.swing_energy(c_bl, tech.vdd) * overhead,
            control_element=model.control_element_energy(),
            lptest_line=model.lptest_line_energy(),
            leakage=model.leakage_energy_per_cycle(),
        )

    # ------------------------------------------------------------------
    # Walk expansion helpers
    # ------------------------------------------------------------------
    def _element_walk(self, element: MarchElement
                      ) -> Tuple[AddressingDirection, "np.ndarray", "np.ndarray"]:
        """Direction and (rows, words) coordinate arrays for one element."""
        direction = resolve_direction(element, self.any_direction)
        rows, words = self.order.coordinate_arrays()
        if direction is AddressingDirection.DOWN:
            rows, words = rows[::-1], words[::-1]
        return direction, rows, words

    def _decayed_restore_energy(self, elapsed_cycles: "np.ndarray") -> float:
        """Supply energy to recharge bit lines floating for ``elapsed_cycles``.

        A floating pair has exactly one line discharged by its cell (the
        other sits at VDD with the cell's '1' node — no charge moves), so the
        restored swing per pair is ``VDD * (1 - exp(-t/tau))``; the energy is
        summed over all pairs of each affected word.
        """
        duration = elapsed_cycles.astype(np.float64) * self.clock.period
        swings = 1.0 - np.exp(-duration / self._tau)
        return (self._k.restore_coeff * self.geometry.bits_per_word
                * float(np.sum(swings)))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, algorithm: MarchAlgorithm, mode: OperatingMode) -> "TestRunResult":
        """Run ``algorithm`` once in ``mode`` and return the measurements.

        Returns the same :class:`repro.core.session.TestRunResult` the
        reference backend produces (fault-free memory: no mismatches, no
        faulty swaps, no read hazards), with the energy ledger built from
        aggregate reductions.  Raises :class:`UnsupportedConfiguration` when
        the run cannot be replayed in bulk.
        """
        from ..core.session import TestRunResult  # deferred: avoids an import cycle

        by_source, counters, cycles, _ = self.run_aggregates(algorithm, mode)
        label = f"{algorithm.name} [{mode.value}] (vectorized)"
        ledger = EnergyLedger.from_aggregates(
            self.clock.period, by_source, cycles=cycles, label=label)
        return TestRunResult(
            algorithm=algorithm.name,
            mode=mode.value,
            order=self.order.name,
            geometry=self.geometry.describe(),
            cycles=cycles,
            total_energy=ledger.total_energy(),
            average_power=ledger.average_power(),
            energy_by_source=ledger.energy_by_source(),
            mismatches=[],
            faulty_swaps=[],
            read_hazards=0,
            row_transitions=counters["row_transitions"],
            full_restores=counters["full_restores"],
            full_res_column_cycles=counters["full_res_column_cycles"],
            floating_column_cycles=counters["floating_column_cycles"],
        )

    def run_aggregates(self, algorithm: MarchAlgorithm, mode: OperatingMode,
                       walks=None):
        """Measure one run and return raw ``(by_source, counters, cycles, stress)``.

        The aggregate core behind :meth:`run`, also consumed by
        :class:`repro.engine.power_campaign.VectorizedPowerCampaign` (which
        assembles BIST results instead of session results).  ``walks``
        optionally supplies the per-element ``(direction, rows, words)``
        coordinate arrays — e.g. a compiled trace's
        :meth:`repro.march.execution.OperationTrace.element_walks` — instead
        of deriving them from the engine's own address order; the arrays
        must describe the same traversal the order would produce.
        """
        algorithm.validate()
        if walks is None:
            walks = [self._element_walk(element) for element in algorithm.elements]
        if mode is OperatingMode.LOW_POWER_TEST:
            by_source, counters, cycles, stress = self._run_low_power(algorithm, walks)
        else:
            by_source, counters, cycles, stress = self._run_functional(algorithm, walks)
        self.last_stress = stress
        self.last_counters = counters
        return by_source, counters, cycles, stress

    def compare_modes(self, algorithm: MarchAlgorithm) -> "ModeComparison":
        """Vectorized functional vs. low-power comparison (the PRR measurement)."""
        from ..core.session import ModeComparison

        functional = self.run(algorithm, OperatingMode.FUNCTIONAL)
        low_power = self.run(algorithm, OperatingMode.LOW_POWER_TEST)
        return ModeComparison(algorithm=algorithm.name,
                              functional=functional, low_power=low_power)

    # ------------------------------------------------------------------
    # Functional mode: closed-form vector reductions
    # ------------------------------------------------------------------
    def _run_functional(self, algorithm: MarchAlgorithm, walks):
        geo, k = self.geometry, self._k
        bits = geo.bits_per_word
        per_access_decode = k.row_decode + k.col_decode
        unselected = geo.columns - bits

        by_source: Dict[PowerSource, float] = {}
        counters = {"row_transitions": 0, "full_restores": 0,
                    "full_res_column_cycles": 0, "floating_column_cycles": 0,
                    "partial_res_column_cycles": 0}
        track = self.track_cell_stress and geo.columns <= 128
        stress_uniform = 0
        prev_row: Optional[int] = None
        cycles = 0

        for element, (_, rows_arr, _) in zip(algorithm.elements, walks):
            n_addr = int(rows_arr.size)
            ops = element.operation_count
            n_access = n_addr * ops

            # Operation + decode energy (booked per access under its own kind).
            self._add(by_source, PowerSource.OPERATION_READ,
                      n_addr * element.read_count
                      * (per_access_decode + bits * k.read_col))
            self._add(by_source, PowerSource.OPERATION_WRITE,
                      n_addr * element.write_count
                      * (per_access_decode + bits * k.write_col))

            # Word-line recharges: one per row change, attributed to the kind
            # of the first operation of the element (the access that lands on
            # the new row).
            changes = int(np.count_nonzero(np.diff(rows_arr)))
            new_row_at_boundary = prev_row is None or int(rows_arr[0]) != prev_row
            # A boundary onto a different row recharges the word line; it
            # only counts as a row *transition* when a row was active before.
            counters["row_transitions"] += changes
            if new_row_at_boundary and prev_row is not None:
                counters["row_transitions"] += 1
            recharges = changes + (1 if new_row_at_boundary else 0)
            wl_source = (PowerSource.OPERATION_READ if element.operations[0].is_read
                         else PowerSource.OPERATION_WRITE)
            self._add(by_source, wl_source, recharges * k.wordline)
            prev_row = int(rows_arr[-1])

            # Every unselected column keeps its pre-charge ON: aggregate RES.
            res_energy = n_access * unselected * k.res_per_column
            self._add(by_source, PowerSource.PRECHARGE_UNSELECTED, res_energy)
            self._add(by_source, PowerSource.CELL_RES, res_energy * CELL_RES_RATIO)
            counters["full_res_column_cycles"] += n_access * unselected

            self._add(by_source, PowerSource.LEAKAGE, n_access * k.leakage)
            if track:
                stress_uniform += ops * (geo.words_per_row - 1)
            cycles += n_access

        stress = None
        if self.track_cell_stress:
            shape = (geo.rows, geo.words_per_row)
            full = np.zeros(shape, dtype=np.int64)
            if track:
                full += stress_uniform
            stress = CellStressTotals(
                full_res=full,
                partial_res=np.zeros(shape, dtype=np.int64),
                reads_per_cell=algorithm.read_count,
                writes_per_cell=algorithm.write_count,
            )
        return by_source, counters, cycles, stress

    # ------------------------------------------------------------------
    # Low-power test mode: per-row-segment vectorization
    # ------------------------------------------------------------------
    def _run_low_power(self, algorithm: MarchAlgorithm, walks):
        geo, k = self.geometry, self._k
        bits = geo.bits_per_word
        n_words = geo.words_per_row
        per_access_decode = k.row_decode + k.col_decode
        track = self.track_cell_stress

        by_source: Dict[PowerSource, float] = {}
        counters = {"row_transitions": 0, "full_restores": 0,
                    "full_res_column_cycles": 0, "floating_column_cycles": 0}
        partial_res_cycles = 0
        control_events = 0
        lptest_toggles = 0

        shape = (geo.rows, n_words)
        stress_full = np.zeros(shape, dtype=np.int64) if track else None
        stress_partial = np.zeros(shape, dtype=np.int64) if track else None

        #: per-word cycle index at which the word's bit lines started to
        #: float (pre-charge OFF, lines at VDD at that instant); -1 while the
        #: word is attached to a pre-charge circuit.
        float_start = np.full(n_words, -1, dtype=np.int64)

        prev_word = -1
        prev_row: Optional[int] = None
        cycle = 0

        for index, element in enumerate(algorithm.elements):
            direction, rows_arr, words_arr = walks[index]
            ops = element.operation_count
            delta = traversal_neighbour_delta(direction)
            if index + 1 < len(walks):
                next_first_row: Optional[int] = int(walks[index + 1][1][0])
            else:
                next_first_row = None
            wl_source = (PowerSource.OPERATION_READ if element.operations[0].is_read
                         else PowerSource.OPERATION_WRITE)

            boundaries = np.flatnonzero(np.diff(rows_arr)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [rows_arr.size]))

            for start, end in zip(starts, ends):
                start, end = int(start), int(end)
                row = int(rows_arr[start])
                seg = words_arr[start:end]
                m = int(seg.size)
                base = cycle + start * ops

                # -- support checks: the planner keeps the *traversal
                # neighbour* pre-charged, so the bulk replay is exact only
                # when that neighbour is the next selected word and the
                # selected word's lines are held at VDD when it is selected.
                if m > 1 and not np.array_equal(seg[1:], seg[:-1] + delta):
                    raise UnsupportedConfiguration(
                        f"order {self.order.name!r} does not follow the "
                        "pre-charged traversal neighbour within a row; use the "
                        "reference backend")
                first_word = int(seg[0])
                if float_start[first_word] >= 0:
                    raise UnsupportedConfiguration(
                        "selected word's bit lines are floating at selection "
                        "time; use the reference backend")

                neighbours = seg + delta
                valid = (neighbours >= 0) & (neighbours < n_words)
                n_enabled = int(np.count_nonzero(valid))

                # -- word line / row transition accounting.
                if prev_row is None or row != prev_row:
                    if prev_row is not None:
                        counters["row_transitions"] += 1
                    self._add(by_source, wl_source, k.wordline)
                prev_row = row

                # -- control elements: one switching event per column change
                # (plus the very first cycle of the run).
                control_events += (m - 1)
                if prev_word < 0 or prev_word != first_word:
                    control_events += 1
                prev_word = int(seg[-1])

                # -- operations on the selected words (held at VDD, so the
                # per-access energies are the same constants as functional
                # mode).
                self._add(by_source, PowerSource.OPERATION_READ,
                          m * element.read_count
                          * (per_access_decode + bits * k.read_col))
                self._add(by_source, PowerSource.OPERATION_WRITE,
                          m * element.write_count
                          * (per_access_decode + bits * k.write_col))
                self._add(by_source, PowerSource.LEAKAGE, m * ops * k.leakage)

                # -- newly floating words at the segment's first access:
                # everything previously attached except the selected word and
                # its pre-charged neighbour.
                newly = float_start < 0
                newly[first_word] = False
                if bool(valid[0]):
                    newly[int(neighbours[0])] = False
                n_newly = int(np.count_nonzero(newly))
                partial_res_cycles += (n_newly + (m - 1)) * bits
                if track:
                    stress_partial[row][newly] += 1
                    if m > 1:
                        np.add.at(stress_partial[row], seg[:-1], 1)
                float_start[newly] = base

                # -- the pre-charged neighbour of each visit: sustains a full
                # RES every cycle and recharges whatever its floating lines
                # lost (nonzero only on the visit's first cycle).
                enabled_words = neighbours[valid]
                sustain = n_enabled * ops * bits * k.res_per_column
                self._add(by_source, PowerSource.PRECHARGE_UNSELECTED, sustain)
                self._add(by_source, PowerSource.CELL_RES, sustain * CELL_RES_RATIO)
                counters["full_res_column_cycles"] += n_enabled * ops * bits
                if track and n_enabled:
                    np.add.at(stress_full[row], enabled_words, ops)
                if n_enabled:
                    visit_cycles = base + np.flatnonzero(valid) * ops
                    fs = float_start[enabled_words]
                    floating = fs >= 0
                    if np.any(floating):
                        self._add(by_source, PowerSource.PRECHARGE_UNSELECTED,
                                  self._decayed_restore_energy(
                                      visit_cycles[floating] - fs[floating]))

                # -- post-segment floating state: each visited word refloats
                # one visit after its own selection; the last visited word
                # and its neighbour stay attached.
                if m > 1:
                    float_start[seg[:-1]] = base + np.arange(1, m) * ops
                float_start[int(seg[-1])] = -1
                if bool(valid[-1]):
                    float_start[int(neighbours[-1])] = -1

                counters["floating_column_cycles"] += ops * (
                    m * (geo.columns - bits) - n_enabled * bits)

                # -- the paper's one functional-mode cycle per row: restore
                # every bit line during the last access before the traversal
                # leaves this row (or the test ends).
                if end < rows_arr.size:
                    restore_now = True  # next segment of this element = new row
                elif next_first_row is None:
                    restore_now = True  # last access of the whole test
                else:
                    restore_now = next_first_row != row
                if restore_now:
                    last_cycle = base + m * ops - 1
                    floating = float_start >= 0
                    if np.any(floating):
                        self._add(by_source, PowerSource.ROW_TRANSITION_RESTORE,
                                  self._decayed_restore_energy(
                                      last_cycle - float_start[floating]))
                        float_start[floating] = -1
                    counters["full_restores"] += 1
                    lptest_toggles += 1

            cycle += int(rows_arr.size) * ops

        self._add(by_source, PowerSource.CONTROL_LOGIC,
                  control_events * k.control_element)
        self._add(by_source, PowerSource.LPTEST_DRIVER,
                  lptest_toggles * k.lptest_line)
        counters["partial_res_column_cycles"] = partial_res_cycles

        stress = None
        if track:
            stress = CellStressTotals(
                full_res=stress_full,
                partial_res=stress_partial,
                reads_per_cell=algorithm.read_count,
                writes_per_cell=algorithm.write_count,
            )
        return by_source, counters, cycle, stress

    # ------------------------------------------------------------------
    @staticmethod
    def _add(by_source: Dict[PowerSource, float], source: PowerSource,
             energy: float) -> None:
        if energy == 0.0:
            return
        by_source[source] = by_source.get(source, 0.0) + energy
