"""Experiment support: scaling methodology, circuit fixtures, table rendering."""

from .scaling import ReducedRowEquivalent, ScalingError, reduced_row_equivalent
from .fixtures import (
    FixtureDescription,
    bitline_discharge_fixture,
    faulty_swap_fixture,
    res_fight_fixture,
    selected_column_cycle_fixture,
)
from .tables import (
    coverage_table,
    format_energy,
    format_percent,
    format_power,
    prr_table,
    render_table,
)

__all__ = [
    "ReducedRowEquivalent", "ScalingError", "reduced_row_equivalent",
    "FixtureDescription", "bitline_discharge_fixture", "faulty_swap_fixture",
    "res_fight_fixture", "selected_column_cycle_fixture",
    "coverage_table", "format_energy", "format_percent", "format_power",
    "prr_table", "render_table",
]
