"""Reduced-row measurement methodology for large arrays.

The paper's evaluation uses a 512 x 512 array.  Running the cycle-accurate
behavioural memory over the millions of clock cycles a March test needs on
that array is possible but slow in pure Python, and — crucially — it is not
necessary: the per-cycle physics of the proposed scheme depends on

* the number of *columns* (how many pre-charge circuits are suppressed),
* the *bit-line capacitance* (set by the number of rows each line spans),
* the row-transition frequency (once per ``#operations x #columns`` cycles
  for a word-line-sequential order — independent of the number of rows).

The number of rows only multiplies how many times the same per-row pattern
repeats.  The helper below therefore builds a *reduced-row equivalent*: an
array with the full column count but fewer instantiated rows, whose
technology parameters are rescaled so each bit line still carries the
capacitance (and floating-discharge time constant) of the full-height
array.  Average power per cycle — and therefore the PRR — measured on the
reduced-row equivalent matches the full array; the test-suite checks this
against the analytical model, and EXPERIMENTS.md documents the methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.technology import TechnologyParameters, default_technology
from ..sram.geometry import ArrayGeometry


class ScalingError(Exception):
    """Raised for impossible reductions."""


@dataclass(frozen=True)
class ReducedRowEquivalent:
    """A measurement stand-in for a taller array."""

    #: the full-size geometry being emulated.
    target: ArrayGeometry
    #: the geometry actually instantiated (same columns, fewer rows).
    reduced: ArrayGeometry
    #: technology with the bit-line loading of the full-size array.
    tech: TechnologyParameters

    @property
    def row_reduction_factor(self) -> float:
        return self.target.rows / self.reduced.rows

    def describe(self) -> str:
        return (f"{self.reduced.rows}-row stand-in for {self.target.describe()} "
                f"(bit-line capacitance preserved)")


def reduced_row_equivalent(target: ArrayGeometry, rows: int,
                           tech: TechnologyParameters | None = None
                           ) -> ReducedRowEquivalent:
    """Build a reduced-row equivalent of ``target`` with ``rows`` rows.

    The per-cell bit-line capacitance is scaled up so that
    ``bitline_capacitance(rows)`` of the reduced array equals
    ``bitline_capacitance(target.rows)`` of the full array; the floating
    discharge resistance is left unchanged (the time constant follows the
    capacitance and therefore also matches).
    """
    tech = tech or default_technology()
    if rows <= 0:
        raise ScalingError("rows must be positive")
    if rows > target.rows:
        raise ScalingError(
            f"reduced row count {rows} exceeds the target's {target.rows}")
    if target.rows % rows != 0:
        raise ScalingError(
            f"target rows ({target.rows}) must be a multiple of the reduced "
            f"row count ({rows}) so backgrounds tile identically")
    reduced = ArrayGeometry(rows=rows, columns=target.columns,
                            bits_per_word=target.bits_per_word)
    full_cap = tech.bitline_capacitance(target.rows)
    # Solve bitline_cap_fixed + rows * per_cell == full_cap for per_cell.
    per_cell = (full_cap - tech.bitline_cap_fixed) / rows
    scaled_tech = tech.scaled(
        name=f"{tech.name} (reduced-row x{target.rows // rows})",
        bitline_cap_per_cell=per_cell,
    )
    return ReducedRowEquivalent(target=target, reduced=reduced, tech=scaled_tech)
