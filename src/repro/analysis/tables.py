"""Plain-text table rendering for benchmark and example output.

The benchmark harness prints the same rows the paper's Table 1 reports (plus
the extra diagnostics of this reproduction); this module keeps the
formatting in one place so benches, examples and EXPERIMENTS.md agree.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def render_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty table)" if title else "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    formatted: List[Dict[str, str]] = []
    for row in rows:
        out: Dict[str, str] = {}
        for col in columns:
            value = row.get(col, "")
            text = _format_value(value)
            out[col] = text
            widths[col] = max(widths[col], len(text))
        formatted.append(out)
    sep = "-+-".join("-" * widths[col] for col in columns)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append(sep)
    for row in formatted:
        lines.append(" | ".join(row[col].ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e-2 or magnitude == 0:
            return f"{value:.3f}"
        return f"{value:.3e}"
    return str(value)


def format_energy(joules: float) -> str:
    """Human-readable energy (fJ / pJ / nJ / µJ)."""
    magnitude = abs(joules)
    for unit, scale in (("µJ", 1e-6), ("nJ", 1e-9), ("pJ", 1e-12), ("fJ", 1e-15)):
        if magnitude >= scale:
            return f"{joules / scale:.2f} {unit}"
    return f"{joules:.3e} J"


def format_power(watts: float) -> str:
    """Human-readable power (µW / mW / W)."""
    magnitude = abs(watts)
    for unit, scale in (("W", 1.0), ("mW", 1e-3), ("µW", 1e-6), ("nW", 1e-9)):
        if magnitude >= scale:
            return f"{watts / scale:.3f} {unit}"
    return f"{watts:.3e} W"


def format_percent(fraction: float, digits: int = 1) -> str:
    """Render a 0-1 fraction as a percentage string (e.g. ``0.473`` → ``47.3 %``)."""
    return f"{100.0 * fraction:.{digits}f} %"


def prr_table(records: Iterable[object], title: str = "") -> str:
    """Render PRR-campaign records as one Table 1 style aligned table.

    Accepts any iterable of :class:`repro.sweep.PrrRecord`-shaped objects
    (``algorithm``/``measured_prr``/``analytical_prr``/
    ``analytical_prr_bracket``/``within_bracket``/``functional_power_w``/
    ``low_power_power_w``/``backend_used`` attributes) and lays them out
    like the paper's Table 1 — per-address algorithm statistics first, then
    the measured PRR next to the analytical band — so the sweep CLI, the
    benches and the docs all present the headline result identically.
    """
    from ..march.library import get_algorithm

    rows = []
    for record in records:
        algorithm = get_algorithm(record.algorithm)
        rows.append({
            "Algorithm": record.algorithm,
            "# elm": algorithm.element_count,
            "# oper": algorithm.operation_count,
            "# read": algorithm.read_count,
            "# write": algorithm.write_count,
            "PRR measured": format_percent(record.measured_prr),
            "PRR analytical": format_percent(record.analytical_prr),
            "PRR bracket": format_percent(record.analytical_prr_bracket),
            "In bracket": "yes" if record.within_bracket else "NO",
            "P_F": format_power(record.functional_power_w),
            "P_LPT": format_power(record.low_power_power_w),
            "Backend": getattr(record, "backend_used", "reference"),
        })
    return render_table(rows, title=title)


def coverage_table(reports: Iterable[object], title: str = "") -> str:
    """Render fault-coverage reports as one aligned table.

    Accepts any iterable of :class:`repro.faults.CoverageReport`-shaped
    objects (``algorithm``/``order``/``detected_faults``/``total_faults``/
    ``coverage``/``backend`` attributes) and keeps the campaign benches,
    examples and the sweep reports visually consistent.
    """
    rows = [{
        "Algorithm": report.algorithm,
        "Address order": report.order,
        "Detected": f"{report.detected_faults}/{report.total_faults}",
        "Coverage": format_percent(report.coverage),
        "Backend": getattr(report, "backend", "reference"),
    } for report in reports]
    return render_table(rows, title=title)
