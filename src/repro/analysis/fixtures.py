"""Transient-simulation fixtures reproducing the paper's Spice figures.

Each function builds a small :class:`repro.circuit.Circuit` representing the
structure the paper simulated with Spice and returns it together with the
node names of interest:

* :func:`bitline_discharge_fixture` — Figure 5/6a: an unselected cell left
  on floating bit lines progressively discharges one of them to logic '0'
  over a handful of clock cycles, while the other stays at VDD;
* :func:`res_fight_fixture` — Figure 2c: an unselected column in functional
  mode, whose pre-charge circuit keeps replacing the charge the stressed
  cell removes (the P_A term);
* :func:`selected_column_cycle_fixture` — Figure 2a/2b: the selected
  column's pre-charge OFF during the operation phase and ON during the
  restoration phase;
* :func:`faulty_swap_fixture` — Figure 6c/7: a full 6T cell storing the
  opposite value is connected to bit lines left discharged by the previous
  row; without the restoration cycle the cell is overwritten, with it the
  cell survives.

The fixtures use the calibrated technology values so their time constants
line up with the behavioural model; the benchmark harness prints their
waveforms and the key crossing times next to the paper's qualitative
descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..circuit.elements import (
    GROUND,
    PiecewiseLinearSource,
    Switch,
    step_control,
)
from ..circuit.mosfet import nmos, pmos
from ..circuit.technology import TechnologyParameters, default_technology
from ..circuit.transient import Circuit, TransientResult


@dataclass(frozen=True)
class FixtureDescription:
    """A ready-to-simulate circuit plus the nodes the experiment looks at."""

    circuit: Circuit
    nodes_of_interest: Tuple[str, ...]
    description: str

    def simulate(self, t_stop: float, dt: float = 20e-12,
                 record_every: int = 5) -> TransientResult:
        return self.circuit.simulate(t_stop=t_stop, dt=dt,
                                     record=self.nodes_of_interest,
                                     record_every=record_every)


# ----------------------------------------------------------------------
# Figure 5 / 6a — floating bit-line discharge by an unselected cell
# ----------------------------------------------------------------------
def bitline_discharge_fixture(tech: TechnologyParameters | None = None,
                              rows: int = 512) -> FixtureDescription:
    """Unselected cell storing '1' on floating BL/BLB (pre-charge OFF).

    The cell's '0' node (S) is connected to BL through the calibrated
    discharge path while the word line is high; BLB sees no current because
    both it and node SB sit at VDD (Figure 6a/6b).
    """
    tech = tech or default_technology()
    circuit = Circuit(name="figure6-bitline-discharge")
    c_bl = tech.bitline_capacitance(rows)
    circuit.add_node_capacitance("BL", c_bl)
    circuit.add_node_capacitance("BLB", c_bl)
    circuit.set_initial_condition("BL", tech.vdd)
    circuit.set_initial_condition("BLB", tech.vdd)
    # The cell keeps node S at ground through its pull-down; the access
    # transistor (word line high from t=0) exposes BL to that path.  The
    # composite path is represented by its calibrated equivalent resistance.
    circuit.add_element(Switch(
        name="cell_discharge_path", node_a="BL", node_b=GROUND,
        control=step_control(t_on=0.0),
        on_resistance=tech.floating_discharge_resistance,
    ))
    # Node SB and BLB are both at VDD: no discharge path exists for BLB.
    return FixtureDescription(
        circuit=circuit,
        nodes_of_interest=("BL", "BLB"),
        description=(f"floating bit lines of a {rows}-row column driven by an "
                     "unselected cell storing '1' (BL discharges, BLB holds VDD)"),
    )


# ----------------------------------------------------------------------
# Figure 2c — RES sustained by an active pre-charge (unselected column)
# ----------------------------------------------------------------------
def res_fight_fixture(tech: TechnologyParameters | None = None,
                      rows: int = 512) -> FixtureDescription:
    """Unselected column in functional mode: pre-charge ON against the cell.

    The pre-charge pull-up (its effective resistance) holds BL at VDD while
    the stressed cell keeps sinking its equilibrium current; the supply
    energy reported by the VDD source over one cycle is the P_A the power
    model uses.
    """
    tech = tech or default_technology()
    circuit = Circuit(name="figure2c-res-fight")
    c_bl = tech.bitline_capacitance(rows)
    circuit.add_node_capacitance("BL", c_bl)
    circuit.set_initial_condition("BL", tech.vdd)
    circuit.add_source(PiecewiseLinearSource.constant("vdd_precharge", "VDDP", tech.vdd))
    circuit.add_node_capacitance("VDDP", 1e-15)
    # Pre-charge pull-up holding the line.
    circuit.add_element(Switch(
        name="precharge_pullup", node_a="VDDP", node_b="BL",
        control=step_control(t_on=0.0), on_resistance=tech.precharge_resistance,
    ))
    # Stressed cell sinking its equilibrium current through the access path.
    equivalent_res = tech.vdd / tech.res_equilibrium_current
    circuit.add_element(Switch(
        name="stressed_cell_path", node_a="BL", node_b=GROUND,
        control=step_control(t_on=0.0), on_resistance=equivalent_res,
    ))
    return FixtureDescription(
        circuit=circuit,
        nodes_of_interest=("BL",),
        description="unselected column, functional mode: pre-charge ON sustaining a RES",
    )


# ----------------------------------------------------------------------
# Figure 2a/2b — the selected column over one clock cycle
# ----------------------------------------------------------------------
def selected_column_cycle_fixture(tech: TechnologyParameters | None = None,
                                  rows: int = 512,
                                  read_current: float = 150e-6
                                  ) -> FixtureDescription:
    """Selected column: pre-charge OFF then ON within one clock cycle.

    During the operation phase (first half of the cycle) the accessed cell
    discharges BL with its read current; during the restoration phase the
    pre-charge circuit pulls BL back to VDD (Figure 2a/2b).
    """
    tech = tech or default_technology()
    circuit = Circuit(name="figure2ab-selected-column")
    c_bl = tech.bitline_capacitance(rows)
    half = tech.clock_period / 2.0
    circuit.add_node_capacitance("BL", c_bl)
    circuit.set_initial_condition("BL", tech.vdd)
    circuit.add_source(PiecewiseLinearSource.constant("vdd_precharge", "VDDP", tech.vdd))
    circuit.add_node_capacitance("VDDP", 1e-15)
    # Cell read path: active only during the operation phase, modelled as the
    # resistance that sinks roughly the read current at VDD.
    circuit.add_element(Switch(
        name="cell_read_path", node_a="BL", node_b=GROUND,
        control=step_control(t_on=0.0, t_off=half),
        on_resistance=tech.vdd / read_current,
    ))
    # Pre-charge: OFF during the operation phase, ON during restoration.
    circuit.add_element(Switch(
        name="precharge_pullup", node_a="VDDP", node_b="BL",
        control=step_control(t_on=half, t_off=tech.clock_period),
        on_resistance=tech.precharge_resistance,
    ))
    return FixtureDescription(
        circuit=circuit,
        nodes_of_interest=("BL",),
        description="selected column: operation phase (pre-charge OFF) then restoration (ON)",
    )


# ----------------------------------------------------------------------
# Figure 6c / 7 — faulty swap at the row transition
# ----------------------------------------------------------------------
def _add_6t_cell(circuit: Circuit, tech: TechnologyParameters, name: str,
                 bl: str, blb: str, wl: str, stored_value: int) -> Tuple[str, str]:
    """Instantiate a full 6T cell; returns its (S, SB) node names.

    Following the paper's convention a stored '1' has S at '0' and SB at
    VDD; S connects to BL through its access transistor.
    """
    s, sb = f"{name}_S", f"{name}_SB"
    circuit.add_node_capacitance(s, tech.cell_node_cap)
    circuit.add_node_capacitance(sb, tech.cell_node_cap)
    if stored_value == 1:
        circuit.set_initial_condition(s, 0.0)
        circuit.set_initial_condition(sb, tech.vdd)
    else:
        circuit.set_initial_condition(s, tech.vdd)
        circuit.set_initial_condition(sb, 0.0)
    # Cross-coupled inverters.
    circuit.add_source(PiecewiseLinearSource.constant(f"{name}_vdd", f"{name}_VDD", tech.vdd))
    circuit.add_node_capacitance(f"{name}_VDD", 1e-15)
    circuit.add_mosfet(pmos(tech, f"{name}_pu_s", drain=s, gate=sb,
                            source=f"{name}_VDD", width_um=tech.cell_pullup_width_um))
    circuit.add_mosfet(nmos(tech, f"{name}_pd_s", drain=s, gate=sb,
                            source=GROUND, width_um=tech.cell_pulldown_width_um))
    circuit.add_mosfet(pmos(tech, f"{name}_pu_sb", drain=sb, gate=s,
                            source=f"{name}_VDD", width_um=tech.cell_pullup_width_um))
    circuit.add_mosfet(nmos(tech, f"{name}_pd_sb", drain=sb, gate=s,
                            source=GROUND, width_um=tech.cell_pulldown_width_um))
    # Access transistors.
    circuit.add_mosfet(nmos(tech, f"{name}_acc_s", drain=bl, gate=wl,
                            source=s, width_um=tech.cell_access_width_um))
    circuit.add_mosfet(nmos(tech, f"{name}_acc_sb", drain=blb, gate=wl,
                            source=sb, width_um=tech.cell_access_width_um))
    return s, sb


def faulty_swap_fixture(restore_before_transition: bool,
                        tech: TechnologyParameters | None = None,
                        rows: int = 512) -> FixtureDescription:
    """Row transition onto bit lines left discharged by the previous row.

    The previous row's cell stored '0' and therefore discharged BLB while
    leaving BL at VDD (the Figure 5/6 convention).  The next row's cell
    stores the opposite value '1' (S at '0', SB at VDD): its SB node meets a
    BLB that is sitting at '0' with a capacitance three orders of magnitude
    larger, so without restoration the cell is overwritten (Figure 6c);
    activating the pre-charge for one cycle before the word line of the new
    row rises (Figure 7) prevents the swap.
    """
    tech = tech or default_technology()
    circuit = Circuit(name="figure7-row-transition")
    c_bl = tech.bitline_capacitance(rows)
    period = tech.clock_period
    circuit.add_node_capacitance("BL", c_bl)
    circuit.add_node_capacitance("BLB", c_bl)
    # Bit lines as the previous row's cell (storing '0') left them:
    # BL held at VDD, BLB discharged to '0'.
    circuit.set_initial_condition("BL", tech.vdd)
    circuit.set_initial_condition("BLB", 0.0)

    if restore_before_transition:
        circuit.add_source(PiecewiseLinearSource.constant("vdd_precharge", "VDDP", tech.vdd))
        circuit.add_node_capacitance("VDDP", 1e-15)
        for line in ("BL", "BLB"):
            circuit.add_element(Switch(
                name=f"precharge_{line}", node_a="VDDP", node_b=line,
                control=step_control(t_on=0.0, t_off=period),
                on_resistance=tech.precharge_resistance,
            ))

    # Word line of the next row rises after the (optional) restoration cycle.
    circuit.add_source(PiecewiseLinearSource.pulse(
        "wordline_next_row", "WL", low=0.0, high=tech.vdd,
        t_rise_start=period, t_fall_start=4.0 * period))
    circuit.add_node_capacitance("WL", 10e-15)
    # The next row's cell stores '1': node S at '0', connected to BL.
    _add_6t_cell(circuit, tech, name="victim", bl="BL", blb="BLB",
                 wl="WL", stored_value=1)
    return FixtureDescription(
        circuit=circuit,
        nodes_of_interest=("BL", "BLB", "victim_S", "victim_SB", "WL"),
        description=("row transition onto "
                     + ("restored" if restore_before_transition else "floating discharged")
                     + " bit lines (victim cell stores '1')"),
    )
