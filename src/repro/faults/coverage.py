"""Fault-coverage campaigns and the DOF-1 invariance check.

The paper's scheme is only admissible because choosing the address sequence
(Degree Of Freedom 1) does not change what a March test detects.  This
module builds standard fault lists over an array, runs them under several
address orders, and checks that the per-fault detection results are
identical across orders — which is the quantitative form of the paper's
Section 3 argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..march.algorithm import MarchAlgorithm
from ..march.ordering import AddressOrder
from ..sram.geometry import ArrayGeometry
from .models import (
    CouplingFault,
    FaultModel,
    coupling_fault_models,
    single_cell_fault_models,
)
from .simulator import DetectionResult, FaultInjection, FaultSimulator


@dataclass(frozen=True)
class CoverageReport:
    """Detection statistics of one algorithm/order over a fault list."""

    algorithm: str
    order: str
    total_faults: int
    detected_faults: int
    missed: Tuple[str, ...] = ()

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected_faults / self.total_faults

    def describe(self) -> str:
        return (f"{self.algorithm} under {self.order}: "
                f"{self.detected_faults}/{self.total_faults} "
                f"({100.0 * self.coverage:.1f} %) detected")


@dataclass(frozen=True)
class InvarianceReport:
    """Comparison of per-fault detection across several address orders."""

    algorithm: str
    orders: Tuple[str, ...]
    total_faults: int
    disagreements: Tuple[str, ...] = ()

    @property
    def invariant(self) -> bool:
        return not self.disagreements

    def describe(self) -> str:
        status = "identical" if self.invariant else f"{len(self.disagreements)} disagreements"
        return (f"{self.algorithm}: detection across {len(self.orders)} orders is {status} "
                f"over {self.total_faults} faults")


def default_fault_locations(geometry: ArrayGeometry, sample: int = 6,
                            seed: int = 2006) -> List[Tuple[int, int]]:
    """A deterministic spread of victim locations: corners, centre, random."""
    rng = random.Random(seed)
    rows, cols = geometry.rows, geometry.columns
    locations = {
        (0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1),
        (rows // 2, cols // 2),
    }
    while len(locations) < min(sample + 5, rows * cols):
        locations.add((rng.randrange(rows), rng.randrange(cols)))
    return sorted(locations)


def neighbour_of(geometry: ArrayGeometry, victim: Tuple[int, int]) -> Tuple[int, int]:
    """Pick a physically adjacent aggressor for coupling faults."""
    row, col = victim
    if col + 1 < geometry.columns:
        return (row, col + 1)
    if col - 1 >= 0:
        return (row, col - 1)
    if row + 1 < geometry.rows:
        return (row + 1, col)
    return (row - 1, col)


def build_fault_list(geometry: ArrayGeometry,
                     locations: Optional[Sequence[Tuple[int, int]]] = None,
                     include_coupling: bool = True,
                     include_single: bool = True) -> List[FaultInjection]:
    """Instantiate the standard fault battery at the given victim locations."""
    locations = list(locations) if locations is not None \
        else default_fault_locations(geometry)
    injections: List[FaultInjection] = []
    for victim in locations:
        geometry.validate_coordinates(*victim)
        if include_single:
            for model in single_cell_fault_models():
                injections.append(FaultInjection(fault=model, victim=victim))
        if include_coupling:
            aggressor = neighbour_of(geometry, victim)
            for model in coupling_fault_models():
                injections.append(FaultInjection(fault=model, victim=victim,
                                                 aggressor=aggressor))
    return injections


def run_coverage(algorithm: MarchAlgorithm, order: AddressOrder,
                 geometry: ArrayGeometry,
                 injections: Sequence[FaultInjection]) -> CoverageReport:
    """Detection statistics of ``algorithm`` under ``order`` for a fault list."""
    simulator = FaultSimulator(geometry)
    missed: List[str] = []
    detected = 0
    for injection in injections:
        result = simulator.simulate(algorithm, order, injection)
        if result.detected:
            detected += 1
        else:
            missed.append(injection.describe())
    return CoverageReport(
        algorithm=algorithm.name,
        order=order.name,
        total_faults=len(injections),
        detected_faults=detected,
        missed=tuple(missed),
    )


def check_order_invariance(algorithm: MarchAlgorithm,
                           orders: Sequence[AddressOrder],
                           geometry: ArrayGeometry,
                           injections: Sequence[FaultInjection]) -> InvarianceReport:
    """Verify per-fault detection is identical across all ``orders`` (DOF 1).

    Note the check is *per fault*, not just aggregate coverage: two orders
    that detect different faults but the same number would still violate the
    property the paper relies on.
    """
    simulator = FaultSimulator(geometry)
    disagreements: List[str] = []
    per_order_results: Dict[str, List[bool]] = {}
    for order in orders:
        per_order_results[order.name] = [
            simulator.simulate(algorithm, order, injection).detected
            for injection in injections
        ]
    reference_name = orders[0].name
    reference = per_order_results[reference_name]
    for order in orders[1:]:
        for injection, expected, got in zip(injections, reference,
                                            per_order_results[order.name]):
            if expected != got:
                disagreements.append(
                    f"{injection.describe()}: {reference_name}={expected} "
                    f"vs {order.name}={got}")
    return InvarianceReport(
        algorithm=algorithm.name,
        orders=tuple(order.name for order in orders),
        total_faults=len(injections),
        disagreements=tuple(disagreements),
    )
