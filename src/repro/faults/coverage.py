"""Fault-coverage campaigns and the DOF-1 invariance check.

The paper's scheme is only admissible because choosing the address sequence
(Degree Of Freedom 1) does not change what a March test detects.  This
module builds standard fault lists over an array, runs them under several
address orders, and checks that the per-fault detection results are
identical across orders — which is the quantitative form of the paper's
Section 3 argument.

Campaigns are batch workloads and run through the backend-pluggable
:class:`~repro.faults.simulator.FaultSimulator` (``"reference"``,
``"vectorized"`` or ``"auto"``): :func:`run_campaign` simulates the whole
fault list once per order and derives both the per-order
:class:`CoverageReport` and the cross-order :class:`InvarianceReport` from
that single pass, so the full 512 x 512 DOF-1 check is one vectorized
sweep instead of thousands of scalar March executions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..march.algorithm import MarchAlgorithm
from ..march.element import AddressingDirection
from ..march.ordering import AddressOrder
from ..sram.geometry import ArrayGeometry
from .models import (
    CouplingFault,
    FaultModel,
    coupling_fault_models,
    single_cell_fault_models,
)
from .simulator import DetectionResult, FaultInjection, FaultSimulator

#: Seed of the deterministic victim-location sampler (exposed by the sweep
#: CLI as ``--seed`` and recorded in campaign exports).
DEFAULT_LOCATION_SEED = 2006


@dataclass(frozen=True)
class CoverageReport:
    """Detection statistics of one algorithm/order over a fault list."""

    algorithm: str
    order: str
    total_faults: int
    detected_faults: int
    missed: Tuple[str, ...] = ()
    #: execution engine that produced the verdicts ("reference"/"vectorized").
    backend: str = "reference"

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list (1.0 for an empty list)."""
        if self.total_faults == 0:
            return 1.0
        return self.detected_faults / self.total_faults

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.algorithm} under {self.order}: "
                f"{self.detected_faults}/{self.total_faults} "
                f"({100.0 * self.coverage:.1f} %) detected")


@dataclass(frozen=True)
class InvarianceReport:
    """Comparison of per-fault detection across several address orders."""

    algorithm: str
    orders: Tuple[str, ...]
    total_faults: int
    disagreements: Tuple[str, ...] = ()
    #: execution engine that produced the verdicts ("reference"/"vectorized").
    backend: str = "reference"

    @property
    def invariant(self) -> bool:
        """True when every fault is detected identically under every order."""
        return not self.disagreements

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "identical" if self.invariant else f"{len(self.disagreements)} disagreements"
        return (f"{self.algorithm}: detection across {len(self.orders)} orders is {status} "
                f"over {self.total_faults} faults")


def default_fault_locations(geometry: ArrayGeometry, sample: int = 6,
                            seed: int = DEFAULT_LOCATION_SEED
                            ) -> List[Tuple[int, int]]:
    """A deterministic spread of victim locations: corners, centre, random.

    The four corners, the centre and ``sample`` additional pseudo-random
    cells drawn from ``random.Random(seed)`` — the seed the sweep CLI
    exposes as ``--seed`` and records in exports, so a campaign's exact
    victim set can be reproduced later.
    """
    rng = random.Random(seed)
    rows, cols = geometry.rows, geometry.columns
    locations = {
        (0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1),
        (rows // 2, cols // 2),
    }
    while len(locations) < min(sample + 5, rows * cols):
        locations.add((rng.randrange(rows), rng.randrange(cols)))
    return sorted(locations)


def neighbour_of(geometry: ArrayGeometry, victim: Tuple[int, int]) -> Tuple[int, int]:
    """Pick a physically adjacent aggressor for coupling faults.

    Preference order: right neighbour, then left (right edge), then below,
    then above (single-column arrays) — always a valid in-array cell that
    differs from the victim, including at every border and corner.
    """
    row, col = victim
    if col + 1 < geometry.columns:
        return (row, col + 1)
    if col - 1 >= 0:
        return (row, col - 1)
    if row + 1 < geometry.rows:
        return (row + 1, col)
    return (row - 1, col)


def build_fault_list(geometry: ArrayGeometry,
                     locations: Optional[Sequence[Tuple[int, int]]] = None,
                     include_coupling: bool = True,
                     include_single: bool = True) -> List[FaultInjection]:
    """Instantiate the standard fault battery at the given victim locations."""
    locations = list(locations) if locations is not None \
        else default_fault_locations(geometry)
    injections: List[FaultInjection] = []
    for victim in locations:
        geometry.validate_coordinates(*victim)
        if include_single:
            for model in single_cell_fault_models():
                injections.append(FaultInjection(fault=model, victim=victim))
        if include_coupling:
            aggressor = neighbour_of(geometry, victim)
            for model in coupling_fault_models():
                injections.append(FaultInjection(fault=model, victim=victim,
                                                 aggressor=aggressor))
    return injections


# ----------------------------------------------------------------------
# Campaigns: one batch simulation per order, reports derived from it
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignResult:
    """The raw per-fault verdicts of one multi-order campaign.

    One :class:`~repro.faults.simulator.DetectionResult` list per address
    order (same injection order in every list); :meth:`coverage_report`
    and :meth:`invariance_report` derive the aggregate views without
    re-simulating anything.
    """

    algorithm: str
    orders: Tuple[str, ...]
    injections: Tuple[FaultInjection, ...]
    results: Dict[str, Tuple[DetectionResult, ...]]
    #: engine(s) that executed the campaign ("reference"/"vectorized"/"mixed").
    backend_used: str = "reference"

    @property
    def total_faults(self) -> int:
        """Number of injected faults in the campaign."""
        return len(self.injections)

    def coverage_report(self, order: Optional[str] = None) -> CoverageReport:
        """Detection statistics under one order (default: the first)."""
        name = order if order is not None else self.orders[0]
        verdicts = self.results[name]
        missed = tuple(result.injection.describe() for result in verdicts
                       if not result.detected)
        return CoverageReport(
            algorithm=self.algorithm,
            order=name,
            total_faults=self.total_faults,
            detected_faults=self.total_faults - len(missed),
            missed=missed,
            backend=self.backend_used,
        )

    def invariance_report(self) -> InvarianceReport:
        """Per-fault detection compared across every order (the DOF-1 check)."""
        reference_name = self.orders[0]
        reference = self.results[reference_name]
        disagreements: List[str] = []
        for name in self.orders[1:]:
            for injection, expected, got in zip(self.injections, reference,
                                                self.results[name]):
                if expected.detected != got.detected:
                    disagreements.append(
                        f"{injection.describe()}: {reference_name}={expected.detected} "
                        f"vs {name}={got.detected}")
        return InvarianceReport(
            algorithm=self.algorithm,
            orders=self.orders,
            total_faults=self.total_faults,
            disagreements=tuple(disagreements),
            backend=self.backend_used,
        )


def run_campaign(algorithm: MarchAlgorithm,
                 orders: Sequence[AddressOrder],
                 geometry: ArrayGeometry,
                 injections: Sequence[FaultInjection],
                 backend: str = "auto",
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 simulator: Optional[FaultSimulator] = None) -> CampaignResult:
    """Simulate a fault list under several orders in one batch pass each.

    The workhorse behind both :func:`run_coverage` and
    :func:`check_order_invariance`: every order costs exactly one
    ``simulate_many`` call on the selected backend.  A pre-built
    ``simulator`` may be supplied (its backend then wins); otherwise one
    is created from ``backend``/``any_direction``.
    """
    if not orders:
        raise ValueError("a campaign needs at least one address order")
    if simulator is None:
        simulator = FaultSimulator(geometry, any_direction=any_direction,
                                   backend=backend)
    injections = tuple(injections)
    results: Dict[str, Tuple[DetectionResult, ...]] = {}
    used = set()
    for order in orders:
        results[order.name] = tuple(
            simulator.simulate_many(algorithm, order, injections))
        used.add(simulator.last_backend_used or "reference")
    return CampaignResult(
        algorithm=algorithm.name,
        orders=tuple(order.name for order in orders),
        injections=injections,
        results=results,
        backend_used=used.pop() if len(used) == 1 else "mixed",
    )


def run_coverage(algorithm: MarchAlgorithm, order: AddressOrder,
                 geometry: ArrayGeometry,
                 injections: Sequence[FaultInjection],
                 backend: str = "auto",
                 any_direction: AddressingDirection = AddressingDirection.UP
                 ) -> CoverageReport:
    """Detection statistics of ``algorithm`` under ``order`` for a fault list."""
    campaign = run_campaign(algorithm, [order], geometry, injections,
                            backend=backend, any_direction=any_direction)
    return campaign.coverage_report()


def check_order_invariance(algorithm: MarchAlgorithm,
                           orders: Sequence[AddressOrder],
                           geometry: ArrayGeometry,
                           injections: Sequence[FaultInjection],
                           backend: str = "auto",
                           any_direction: AddressingDirection = AddressingDirection.UP
                           ) -> InvarianceReport:
    """Verify per-fault detection is identical across all ``orders`` (DOF 1).

    Note the check is *per fault*, not just aggregate coverage: two orders
    that detect different faults but the same number would still violate the
    property the paper relies on.
    """
    campaign = run_campaign(algorithm, orders, geometry, injections,
                            backend=backend, any_direction=any_direction)
    return campaign.invariance_report()
