"""Functional fault models, fault injection, and coverage analysis.

Used to verify — rather than assume — the paper's Section 3 premise: the
fault detection capability of a March test does not depend on the address
sequence chosen for ⇑ (Degree Of Freedom 1), which is what legitimises the
word-line-after-word-line order of the low-power test mode.
"""

from .models import (
    ActiveNeighbourhoodPatternFault,
    CellState,
    CouplingFault,
    DataRetentionFault,
    DeceptiveReadDestructiveFault,
    DisturbCouplingFault,
    DynamicDeceptiveReadDestructiveFault,
    DynamicFault,
    DynamicIncorrectReadFault,
    DynamicReadDestructiveFault,
    FaultFree,
    FaultModel,
    FaultModelError,
    IdempotentCouplingFault,
    IncorrectReadFault,
    InversionCouplingFault,
    NeighbourhoodFault,
    ReadDestructiveFault,
    StateCouplingFault,
    StaticNeighbourhoodPatternFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
    WriteDestructiveFault,
    coupling_fault_models,
    dynamic_fault_models,
    neighbourhood_fault_models,
    single_cell_fault_models,
)
from .backend import FAULT_BACKENDS, FaultBackend, ReferenceFaultBackend
from .simulator import (
    DetectionResult,
    FaultInjection,
    FaultSimulationError,
    FaultSimulator,
    LogicalMemory,
    type1_neighbourhood,
)
from .coverage import (
    CampaignResult,
    CoverageReport,
    DEFAULT_LOCATION_SEED,
    InvarianceReport,
    build_fault_list,
    check_order_invariance,
    default_fault_locations,
    neighbour_of,
    run_campaign,
    run_coverage,
)

__all__ = [
    "CellState", "FaultModel", "FaultModelError", "FaultFree", "CouplingFault",
    "StuckAtFault", "TransitionFault", "ReadDestructiveFault",
    "DeceptiveReadDestructiveFault", "IncorrectReadFault", "WriteDestructiveFault",
    "StuckOpenFault", "DataRetentionFault",
    "StateCouplingFault", "IdempotentCouplingFault", "InversionCouplingFault",
    "DisturbCouplingFault",
    "DynamicFault", "DynamicReadDestructiveFault",
    "DynamicDeceptiveReadDestructiveFault", "DynamicIncorrectReadFault",
    "NeighbourhoodFault", "StaticNeighbourhoodPatternFault",
    "ActiveNeighbourhoodPatternFault",
    "single_cell_fault_models", "coupling_fault_models",
    "dynamic_fault_models", "neighbourhood_fault_models",
    "FAULT_BACKENDS", "FaultBackend", "ReferenceFaultBackend",
    "DetectionResult", "FaultInjection", "FaultSimulationError", "FaultSimulator",
    "LogicalMemory", "type1_neighbourhood",
    "CampaignResult", "CoverageReport", "InvarianceReport",
    "DEFAULT_LOCATION_SEED", "build_fault_list",
    "check_order_invariance", "default_fault_locations", "neighbour_of",
    "run_campaign", "run_coverage",
]
