"""Functional fault models for SRAM cells and their couplings.

March tests are fault-oriented: their purpose is to detect the classical
functional fault models.  The paper leans on the property that the fault
detection capability of a March test does not depend on the address
sequence chosen for ⇑ (Degree Of Freedom 1), which is what allows the
word-line-after-word-line order.  To *verify* that property rather than
assume it, the repository ships a functional fault simulator; this module
defines the fault models it injects.

Single-cell (victim-only) faults
    * stuck-at fault (SAF0 / SAF1)
    * transition fault (TF↑ / TF↓)
    * read destructive fault (RDF) and deceptive read destructive fault (DRDF)
    * incorrect read fault (IRF)
    * write destructive fault (WDF)
    * stuck-open / no-access fault (the cell cannot be accessed; reads return
      the previous value on the data bus)
    * data retention fault (the cell leaks to a preferred value after enough
      idle time)

Two-cell coupling faults (aggressor → victim)
    * state coupling fault (CFst)
    * idempotent coupling fault (CFid)
    * inversion coupling fault (CFin)
    * disturb coupling fault (CFdst) — a read or write of the aggressor
      disturbs the victim to a fixed value

Every fault model implements small hooks called by the logical fault
simulator; the fault-free behaviour is a plain stored bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class FaultModelError(Exception):
    """Raised for ill-formed fault descriptions."""


def _check_bit(value: int, what: str) -> int:
    if value not in (0, 1):
        raise FaultModelError(f"{what} must be 0 or 1, got {value!r}")
    return value


@dataclass
class CellState:
    """Logical state of one (possibly faulty) cell inside the fault simulator."""

    value: Optional[int] = None


class FaultModel:
    """Base class of all fault models.

    The simulator calls the hooks below.  The default implementations are
    fault-free; concrete fault models override the ones they affect.  All
    hooks receive and mutate :class:`CellState` so that the same machinery
    expresses both combinational (read path) and state (storage) defects.
    """

    #: short mnemonic used in reports (e.g. "SAF0", "CFid<0,w1,/1>")
    name = "fault"
    #: True when the fault involves an aggressor cell.
    is_coupling = False

    # -- single-cell hooks -------------------------------------------------
    def on_write(self, state: CellState, value: int) -> None:
        """Apply a functional write of ``value`` to the victim."""
        state.value = value

    def on_read(self, state: CellState) -> Optional[int]:
        """Return the value observed by a read of the victim.

        Returning ``None`` means "no cell drives the data bus" (stuck-open
        access), which the simulator resolves to the previous bus value.
        """
        return state.value

    def on_idle(self, state: CellState, idle_cycles: int) -> None:
        """Model time-dependent effects (data retention) between accesses."""

    # -- coupling hooks ----------------------------------------------------
    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        """Called after every write to the aggressor cell."""

    def on_aggressor_read(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        """Called after every read of the aggressor cell."""

    def on_aggressor_state(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        """Called whenever the victim is read/written, given the aggressor state."""

    def describe(self) -> str:
        return self.name


class FaultFree(FaultModel):
    """Explicit fault-free behaviour (used as the reference)."""

    name = "fault-free"


# ----------------------------------------------------------------------
# Single-cell faults
# ----------------------------------------------------------------------
class StuckAtFault(FaultModel):
    """SAF: the cell permanently holds ``stuck_value``."""

    def __init__(self, stuck_value: int) -> None:
        self.stuck_value = _check_bit(stuck_value, "stuck_value")
        self.name = f"SAF{self.stuck_value}"

    def on_write(self, state: CellState, value: int) -> None:
        state.value = self.stuck_value

    def on_read(self, state: CellState) -> Optional[int]:
        state.value = self.stuck_value
        return self.stuck_value


class TransitionFault(FaultModel):
    """TF: the cell cannot make one of its transitions.

    ``rising=True`` models TF↑ (0→1 fails); ``rising=False`` models TF↓.
    """

    def __init__(self, rising: bool) -> None:
        self.rising = rising
        self.name = "TF_rise" if rising else "TF_fall"

    def on_write(self, state: CellState, value: int) -> None:
        if self.rising and state.value == 0 and value == 1:
            return  # the up-transition fails, cell keeps 0
        if not self.rising and state.value == 1 and value == 0:
            return  # the down-transition fails, cell keeps 1
        state.value = value


class ReadDestructiveFault(FaultModel):
    """RDF: a read flips the cell and returns the *flipped* (wrong) value."""

    name = "RDF"

    def on_read(self, state: CellState) -> Optional[int]:
        if state.value is None:
            return None
        state.value = 1 - state.value
        return state.value


class DeceptiveReadDestructiveFault(FaultModel):
    """DRDF: a read flips the cell but still returns the original value."""

    name = "DRDF"

    def on_read(self, state: CellState) -> Optional[int]:
        if state.value is None:
            return None
        original = state.value
        state.value = 1 - state.value
        return original


class IncorrectReadFault(FaultModel):
    """IRF: reads return the complement of the stored value; the cell keeps it."""

    name = "IRF"

    def on_read(self, state: CellState) -> Optional[int]:
        if state.value is None:
            return None
        return 1 - state.value


class WriteDestructiveFault(FaultModel):
    """WDF: a non-transition write (writing the already-stored value) flips the cell."""

    name = "WDF"

    def on_write(self, state: CellState, value: int) -> None:
        if state.value is not None and state.value == value:
            state.value = 1 - value
        else:
            state.value = value


class StuckOpenFault(FaultModel):
    """SOF: the cell cannot be accessed; reads return the previous bus value."""

    name = "SOF"

    def on_write(self, state: CellState, value: int) -> None:
        pass  # the write never reaches the cell

    def on_read(self, state: CellState) -> Optional[int]:
        return None  # nothing drives the bus; simulator uses the previous value


class DataRetentionFault(FaultModel):
    """DRF: after ``retention_cycles`` without access the cell decays to ``leak_to``."""

    def __init__(self, leak_to: int, retention_cycles: int = 1000) -> None:
        self.leak_to = _check_bit(leak_to, "leak_to")
        if retention_cycles <= 0:
            raise FaultModelError("retention_cycles must be positive")
        self.retention_cycles = retention_cycles
        self.name = f"DRF->{self.leak_to}"

    def on_idle(self, state: CellState, idle_cycles: int) -> None:
        if idle_cycles >= self.retention_cycles:
            state.value = self.leak_to


# ----------------------------------------------------------------------
# Two-cell coupling faults
# ----------------------------------------------------------------------
class CouplingFault(FaultModel):
    """Base class of aggressor/victim coupling faults."""

    is_coupling = True


class StateCouplingFault(CouplingFault):
    """CFst: while the aggressor holds ``aggressor_state`` the victim is forced to ``victim_value``."""

    def __init__(self, aggressor_state: int, victim_value: int) -> None:
        self.aggressor_state = _check_bit(aggressor_state, "aggressor_state")
        self.victim_value = _check_bit(victim_value, "victim_value")
        self.name = f"CFst<{self.aggressor_state};{self.victim_value}>"

    def on_aggressor_state(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        if aggressor_value == self.aggressor_state:
            victim.value = self.victim_value

    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        if new_value == self.aggressor_state:
            victim.value = self.victim_value


class IdempotentCouplingFault(CouplingFault):
    """CFid: a given aggressor transition forces the victim to a fixed value.

    ``rising=True`` means the 0→1 aggressor transition is the sensitising
    operation; the victim is then forced to ``victim_value``.
    """

    def __init__(self, rising: bool, victim_value: int) -> None:
        self.rising = rising
        self.victim_value = _check_bit(victim_value, "victim_value")
        arrow = "up" if rising else "down"
        self.name = f"CFid<{arrow};{self.victim_value}>"

    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        if old_value is None:
            return
        if self.rising and old_value == 0 and new_value == 1:
            victim.value = self.victim_value
        if not self.rising and old_value == 1 and new_value == 0:
            victim.value = self.victim_value


class InversionCouplingFault(CouplingFault):
    """CFin: a given aggressor transition inverts the victim."""

    def __init__(self, rising: bool) -> None:
        self.rising = rising
        arrow = "up" if rising else "down"
        self.name = f"CFin<{arrow}>"

    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        if old_value is None or victim.value is None:
            return
        if self.rising and old_value == 0 and new_value == 1:
            victim.value = 1 - victim.value
        if not self.rising and old_value == 1 and new_value == 0:
            victim.value = 1 - victim.value


class DisturbCouplingFault(CouplingFault):
    """CFdst: any read of the aggressor disturbs the victim to ``victim_value``."""

    def __init__(self, victim_value: int) -> None:
        self.victim_value = _check_bit(victim_value, "victim_value")
        self.name = f"CFdst<r;{self.victim_value}>"

    def on_aggressor_read(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        victim.value = self.victim_value


# ----------------------------------------------------------------------
# Standard fault lists
# ----------------------------------------------------------------------
def single_cell_fault_models() -> Tuple[FaultModel, ...]:
    """The standard single-cell fault battery used by the coverage benches."""
    return (
        StuckAtFault(0),
        StuckAtFault(1),
        TransitionFault(rising=True),
        TransitionFault(rising=False),
        ReadDestructiveFault(),
        DeceptiveReadDestructiveFault(),
        IncorrectReadFault(),
        WriteDestructiveFault(),
        StuckOpenFault(),
    )


def coupling_fault_models() -> Tuple[CouplingFault, ...]:
    """The standard two-cell coupling fault battery."""
    return (
        StateCouplingFault(0, 0), StateCouplingFault(0, 1),
        StateCouplingFault(1, 0), StateCouplingFault(1, 1),
        IdempotentCouplingFault(True, 0), IdempotentCouplingFault(True, 1),
        IdempotentCouplingFault(False, 0), IdempotentCouplingFault(False, 1),
        InversionCouplingFault(True), InversionCouplingFault(False),
        DisturbCouplingFault(0), DisturbCouplingFault(1),
    )
