"""Functional fault models for SRAM cells and their couplings.

March tests are fault-oriented: their purpose is to detect the classical
functional fault models.  The paper leans on the property that the fault
detection capability of a March test does not depend on the address
sequence chosen for ⇑ (Degree Of Freedom 1), which is what allows the
word-line-after-word-line order.  To *verify* that property rather than
assume it, the repository ships a functional fault simulator; this module
defines the fault models it injects.

Single-cell (victim-only) faults
    * stuck-at fault (SAF0 / SAF1)
    * transition fault (TF↑ / TF↓)
    * read destructive fault (RDF) and deceptive read destructive fault (DRDF)
    * incorrect read fault (IRF)
    * write destructive fault (WDF)
    * stuck-open / no-access fault (the cell cannot be accessed; reads return
      the previous value on the data bus)
    * data retention fault (the cell leaks to a preferred value after enough
      idle time)

Two-cell coupling faults (aggressor → victim)
    * state coupling fault (CFst)
    * idempotent coupling fault (CFid)
    * inversion coupling fault (CFin)
    * disturb coupling fault (CFdst) — a read or write of the aggressor
      disturbs the victim to a fixed value

Dynamic two-operation faults (beyond-paper extension)
    * dynamic read destructive fault (dRDF) and its deceptive variant
      (dDRDF) — a read in the clock cycle *immediately after* another
      access to the same cell corrupts it
    * dynamic incorrect read fault (dIRF) — the back-to-back read returns
      the complement without corrupting the cell

Neighbourhood pattern sensitive faults (beyond-paper extension)
    * static NPSF (SNPSF) — while the neighbourhood cells hold a given
      pattern the victim is forced to a fixed value
    * active NPSF (ANPSF) — a write transition on one neighbourhood cell,
      with the remaining cells holding the pattern, forces the victim

Every fault model implements small hooks called by the logical fault
simulator; the fault-free behaviour is a plain stored bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class FaultModelError(Exception):
    """Raised for ill-formed fault descriptions."""


def _check_bit(value: int, what: str) -> int:
    if value not in (0, 1):
        raise FaultModelError(f"{what} must be 0 or 1, got {value!r}")
    return value


@dataclass
class CellState:
    """Logical state of one (possibly faulty) cell inside the fault simulator."""

    value: Optional[int] = None


class FaultModel:
    """Base class of all fault models.

    The simulator calls the hooks below.  The default implementations are
    fault-free; concrete fault models override the ones they affect.  All
    hooks receive and mutate :class:`CellState` so that the same machinery
    expresses both combinational (read path) and state (storage) defects.
    """

    #: short mnemonic used in reports (e.g. "SAF0", "CFid<0,w1,/1>")
    name = "fault"
    #: True when the fault involves an aggressor cell.
    is_coupling = False
    #: True when the fault is sensitised by two back-to-back operations
    #: on the victim (the simulator then calls :meth:`on_dynamic_read`).
    is_dynamic = False
    #: True when the fault involves a neighbourhood of cells around the
    #: victim (the injection must then carry a ``neighbourhood``).
    is_neighbourhood = False

    # -- single-cell hooks -------------------------------------------------
    def on_write(self, state: CellState, value: int) -> None:
        """Apply a functional write of ``value`` to the victim."""
        state.value = value

    def on_read(self, state: CellState) -> Optional[int]:
        """Return the value observed by a read of the victim.

        Returning ``None`` means "no cell drives the data bus" (stuck-open
        access), which the simulator resolves to the previous bus value.
        """
        return state.value

    def on_dynamic_read(self, state: CellState,
                        prev_kind: Optional[str]) -> Optional[int]:
        """Read hook for dynamic (two-operation) faults.

        ``prev_kind`` is ``"w"`` or ``"r"`` when the clock cycle
        immediately before this read accessed the *same* cell with that
        operation, ``None`` otherwise.  The default delegates to the
        plain read hook (no dynamic behaviour).
        """
        return self.on_read(state)

    def on_idle(self, state: CellState, idle_cycles: int) -> None:
        """Model time-dependent effects (data retention) between accesses."""

    # -- coupling hooks ----------------------------------------------------
    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        """Called after every write to the aggressor cell."""

    def on_aggressor_read(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        """Called after every read of the aggressor cell."""

    def on_aggressor_state(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        """Called whenever the victim is read/written, given the aggressor state."""

    # -- neighbourhood hooks -----------------------------------------------
    def on_neighbourhood_write(self, victim: CellState, index: int,
                               old_value: Optional[int], new_value: int,
                               neighbour_values: Tuple[Optional[int], ...]) -> None:
        """Called after every write to neighbourhood cell ``index``.

        ``neighbour_values`` holds the current value of every
        neighbourhood cell, in injection order, with entry ``index``
        already reflecting the just-written value.
        """

    def on_neighbourhood_state(self, victim: CellState,
                               neighbour_values: Tuple[Optional[int], ...]) -> None:
        """Called before every victim access, given the neighbourhood values."""

    def describe(self) -> str:
        return self.name


class FaultFree(FaultModel):
    """Explicit fault-free behaviour (used as the reference)."""

    name = "fault-free"


# ----------------------------------------------------------------------
# Single-cell faults
# ----------------------------------------------------------------------
class StuckAtFault(FaultModel):
    """SAF: the cell permanently holds ``stuck_value``."""

    def __init__(self, stuck_value: int) -> None:
        self.stuck_value = _check_bit(stuck_value, "stuck_value")
        self.name = f"SAF{self.stuck_value}"

    def on_write(self, state: CellState, value: int) -> None:
        state.value = self.stuck_value

    def on_read(self, state: CellState) -> Optional[int]:
        state.value = self.stuck_value
        return self.stuck_value


class TransitionFault(FaultModel):
    """TF: the cell cannot make one of its transitions.

    ``rising=True`` models TF↑ (0→1 fails); ``rising=False`` models TF↓.
    """

    def __init__(self, rising: bool) -> None:
        self.rising = rising
        self.name = "TF_rise" if rising else "TF_fall"

    def on_write(self, state: CellState, value: int) -> None:
        if self.rising and state.value == 0 and value == 1:
            return  # the up-transition fails, cell keeps 0
        if not self.rising and state.value == 1 and value == 0:
            return  # the down-transition fails, cell keeps 1
        state.value = value


class ReadDestructiveFault(FaultModel):
    """RDF: a read flips the cell and returns the *flipped* (wrong) value."""

    name = "RDF"

    def on_read(self, state: CellState) -> Optional[int]:
        if state.value is None:
            return None
        state.value = 1 - state.value
        return state.value


class DeceptiveReadDestructiveFault(FaultModel):
    """DRDF: a read flips the cell but still returns the original value."""

    name = "DRDF"

    def on_read(self, state: CellState) -> Optional[int]:
        if state.value is None:
            return None
        original = state.value
        state.value = 1 - state.value
        return original


class IncorrectReadFault(FaultModel):
    """IRF: reads return the complement of the stored value; the cell keeps it."""

    name = "IRF"

    def on_read(self, state: CellState) -> Optional[int]:
        if state.value is None:
            return None
        return 1 - state.value


class WriteDestructiveFault(FaultModel):
    """WDF: a non-transition write (writing the already-stored value) flips the cell."""

    name = "WDF"

    def on_write(self, state: CellState, value: int) -> None:
        if state.value is not None and state.value == value:
            state.value = 1 - value
        else:
            state.value = value


class StuckOpenFault(FaultModel):
    """SOF: the cell cannot be accessed; reads return the previous bus value."""

    name = "SOF"

    def on_write(self, state: CellState, value: int) -> None:
        pass  # the write never reaches the cell

    def on_read(self, state: CellState) -> Optional[int]:
        return None  # nothing drives the bus; simulator uses the previous value


class DataRetentionFault(FaultModel):
    """DRF: after ``retention_cycles`` without access the cell decays to ``leak_to``."""

    def __init__(self, leak_to: int, retention_cycles: int = 1000) -> None:
        self.leak_to = _check_bit(leak_to, "leak_to")
        if retention_cycles <= 0:
            raise FaultModelError("retention_cycles must be positive")
        self.retention_cycles = retention_cycles
        self.name = f"DRF->{self.leak_to}"

    def on_idle(self, state: CellState, idle_cycles: int) -> None:
        if idle_cycles >= self.retention_cycles:
            state.value = self.leak_to


# ----------------------------------------------------------------------
# Dynamic two-operation faults (beyond-paper)
# ----------------------------------------------------------------------
class DynamicFault(FaultModel):
    """Base class of two-operation dynamic faults.

    A dynamic fault is sensitised by a read performed in the clock cycle
    *immediately after* another access to the same cell; any other read
    behaves fault-free.  ``after`` restricts the kind of the sensitising
    first operation: ``"w"`` (write then read), ``"r"`` (read then read)
    or ``"any"`` (either).  March elements with several operations per
    address (e.g. the ``r0, r0`` pairs of March SS) produce exactly such
    back-to-back accesses, which is why those tests exist.
    """

    is_dynamic = True

    _AFTER = ("w", "r", "any")

    def __init__(self, after: str = "any") -> None:
        if after not in self._AFTER:
            raise FaultModelError(
                f"after must be one of {self._AFTER}, got {after!r}")
        self.after = after

    def _sensitised(self, prev_kind: Optional[str]) -> bool:
        if prev_kind is None:
            return False
        return self.after == "any" or prev_kind == self.after

    def _suffix(self) -> str:
        return "*" if self.after == "any" else self.after


class DynamicReadDestructiveFault(DynamicFault):
    """dRDF: the back-to-back read flips the cell and returns the flipped value."""

    def __init__(self, after: str = "any") -> None:
        super().__init__(after)
        self.name = f"dRDF<{self._suffix()}r>"

    def on_dynamic_read(self, state: CellState,
                        prev_kind: Optional[str]) -> Optional[int]:
        if not self._sensitised(prev_kind) or state.value is None:
            return state.value
        state.value = 1 - state.value
        return state.value


class DynamicDeceptiveReadDestructiveFault(DynamicFault):
    """dDRDF: the back-to-back read flips the cell but returns the original value."""

    def __init__(self, after: str = "any") -> None:
        super().__init__(after)
        self.name = f"dDRDF<{self._suffix()}r>"

    def on_dynamic_read(self, state: CellState,
                        prev_kind: Optional[str]) -> Optional[int]:
        if not self._sensitised(prev_kind) or state.value is None:
            return state.value
        original = state.value
        state.value = 1 - state.value
        return original


class DynamicIncorrectReadFault(DynamicFault):
    """dIRF: the back-to-back read returns the complement; the cell keeps its value."""

    def __init__(self, after: str = "any") -> None:
        super().__init__(after)
        self.name = f"dIRF<{self._suffix()}r>"

    def on_dynamic_read(self, state: CellState,
                        prev_kind: Optional[str]) -> Optional[int]:
        if not self._sensitised(prev_kind) or state.value is None:
            return state.value
        return 1 - state.value


# ----------------------------------------------------------------------
# Two-cell coupling faults
# ----------------------------------------------------------------------
class CouplingFault(FaultModel):
    """Base class of aggressor/victim coupling faults."""

    is_coupling = True


class StateCouplingFault(CouplingFault):
    """CFst: while the aggressor holds ``aggressor_state`` the victim is forced to ``victim_value``."""

    def __init__(self, aggressor_state: int, victim_value: int) -> None:
        self.aggressor_state = _check_bit(aggressor_state, "aggressor_state")
        self.victim_value = _check_bit(victim_value, "victim_value")
        self.name = f"CFst<{self.aggressor_state};{self.victim_value}>"

    def on_aggressor_state(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        if aggressor_value == self.aggressor_state:
            victim.value = self.victim_value

    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        if new_value == self.aggressor_state:
            victim.value = self.victim_value


class IdempotentCouplingFault(CouplingFault):
    """CFid: a given aggressor transition forces the victim to a fixed value.

    ``rising=True`` means the 0→1 aggressor transition is the sensitising
    operation; the victim is then forced to ``victim_value``.
    """

    def __init__(self, rising: bool, victim_value: int) -> None:
        self.rising = rising
        self.victim_value = _check_bit(victim_value, "victim_value")
        arrow = "up" if rising else "down"
        self.name = f"CFid<{arrow};{self.victim_value}>"

    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        if old_value is None:
            return
        if self.rising and old_value == 0 and new_value == 1:
            victim.value = self.victim_value
        if not self.rising and old_value == 1 and new_value == 0:
            victim.value = self.victim_value


class InversionCouplingFault(CouplingFault):
    """CFin: a given aggressor transition inverts the victim."""

    def __init__(self, rising: bool) -> None:
        self.rising = rising
        arrow = "up" if rising else "down"
        self.name = f"CFin<{arrow}>"

    def on_aggressor_write(self, victim: CellState, old_value: Optional[int],
                           new_value: int) -> None:
        if old_value is None or victim.value is None:
            return
        if self.rising and old_value == 0 and new_value == 1:
            victim.value = 1 - victim.value
        if not self.rising and old_value == 1 and new_value == 0:
            victim.value = 1 - victim.value


class DisturbCouplingFault(CouplingFault):
    """CFdst: any read of the aggressor disturbs the victim to ``victim_value``."""

    def __init__(self, victim_value: int) -> None:
        self.victim_value = _check_bit(victim_value, "victim_value")
        self.name = f"CFdst<r;{self.victim_value}>"

    def on_aggressor_read(self, victim: CellState, aggressor_value: Optional[int]) -> None:
        victim.value = self.victim_value


# ----------------------------------------------------------------------
# Neighbourhood pattern sensitive faults (beyond-paper)
# ----------------------------------------------------------------------
def _check_pattern(pattern) -> Tuple[int, ...]:
    pattern = tuple(pattern)
    if not pattern:
        raise FaultModelError("pattern must name at least one neighbour")
    return tuple(_check_bit(bit, "pattern entry") for bit in pattern)


class NeighbourhoodFault(FaultModel):
    """Base class of neighbourhood pattern sensitive faults (NPSF).

    The victim is influenced by a *neighbourhood* of k cells (supplied by
    the :class:`~repro.faults.simulator.FaultInjection`, e.g. the type-1
    neighbourhood of the four orthogonally adjacent cells).  ``pattern``
    has one bit per neighbourhood cell, in injection order.
    """

    is_neighbourhood = True

    def __init__(self, pattern, victim_value: int) -> None:
        self.pattern = _check_pattern(pattern)
        self.victim_value = _check_bit(victim_value, "victim_value")

    def _pattern_str(self) -> str:
        return "".join(str(bit) for bit in self.pattern)


class StaticNeighbourhoodPatternFault(NeighbourhoodFault):
    """SNPSF: while all neighbours hold ``pattern`` the victim is forced.

    The condition is checked after every write to a neighbourhood cell
    and before every victim access, mirroring how CFst treats its single
    aggressor.
    """

    def __init__(self, pattern, victim_value: int) -> None:
        super().__init__(pattern, victim_value)
        self.name = f"SNPSF<{self._pattern_str()};{self.victim_value}>"

    def _matches(self, neighbour_values) -> bool:
        return all(value == bit
                   for value, bit in zip(neighbour_values, self.pattern))

    def on_neighbourhood_write(self, victim, index, old_value, new_value,
                               neighbour_values) -> None:
        if self._matches(neighbour_values):
            victim.value = self.victim_value

    def on_neighbourhood_state(self, victim, neighbour_values) -> None:
        if self._matches(neighbour_values):
            victim.value = self.victim_value


class ActiveNeighbourhoodPatternFault(NeighbourhoodFault):
    """ANPSF: a neighbour's write transition, with the rest in ``pattern``, forces the victim.

    ``rising=True`` sensitises on a 0→1 write transition of any one
    neighbourhood cell while every *other* neighbourhood cell matches its
    pattern entry (the transitioning cell's entry is ignored).
    """

    def __init__(self, rising: bool, pattern, victim_value: int) -> None:
        super().__init__(pattern, victim_value)
        self.rising = rising
        arrow = "up" if rising else "down"
        self.name = f"ANPSF<{arrow};{self._pattern_str()};{self.victim_value}>"

    def on_neighbourhood_write(self, victim, index, old_value, new_value,
                               neighbour_values) -> None:
        if old_value is None:
            return
        if self.rising and not (old_value == 0 and new_value == 1):
            return
        if not self.rising and not (old_value == 1 and new_value == 0):
            return
        for j, (value, bit) in enumerate(zip(neighbour_values, self.pattern)):
            if j != index and value != bit:
                return
        victim.value = self.victim_value


# ----------------------------------------------------------------------
# Standard fault lists
# ----------------------------------------------------------------------
def single_cell_fault_models() -> Tuple[FaultModel, ...]:
    """The standard single-cell fault battery used by the coverage benches."""
    return (
        StuckAtFault(0),
        StuckAtFault(1),
        TransitionFault(rising=True),
        TransitionFault(rising=False),
        ReadDestructiveFault(),
        DeceptiveReadDestructiveFault(),
        IncorrectReadFault(),
        WriteDestructiveFault(),
        StuckOpenFault(),
    )


def coupling_fault_models() -> Tuple[CouplingFault, ...]:
    """The standard two-cell coupling fault battery."""
    return (
        StateCouplingFault(0, 0), StateCouplingFault(0, 1),
        StateCouplingFault(1, 0), StateCouplingFault(1, 1),
        IdempotentCouplingFault(True, 0), IdempotentCouplingFault(True, 1),
        IdempotentCouplingFault(False, 0), IdempotentCouplingFault(False, 1),
        InversionCouplingFault(True), InversionCouplingFault(False),
        DisturbCouplingFault(0), DisturbCouplingFault(1),
    )


def dynamic_fault_models() -> Tuple[DynamicFault, ...]:
    """The two-operation dynamic fault battery (beyond-paper)."""
    return tuple(
        factory(after)
        for factory in (DynamicReadDestructiveFault,
                        DynamicDeceptiveReadDestructiveFault,
                        DynamicIncorrectReadFault)
        for after in ("w", "r", "any")
    )


def neighbourhood_fault_models(size: int = 4) -> Tuple[NeighbourhoodFault, ...]:
    """The NPSF battery for a ``size``-cell neighbourhood (beyond-paper)."""
    zeros = (0,) * size
    ones = (1,) * size
    return (
        StaticNeighbourhoodPatternFault(zeros, 1),
        StaticNeighbourhoodPatternFault(ones, 0),
        ActiveNeighbourhoodPatternFault(True, zeros, 1),
        ActiveNeighbourhoodPatternFault(False, ones, 0),
    )
