"""Pluggable fault-simulation backends.

Fault campaigns are batch workloads: the same March run replayed against a
whole list of injected faults.  This module defines the backend seam the
campaign layer plugs into — mirroring the ``backend`` switch
:class:`repro.core.session.TestSession` uses for power measurement:

* :class:`ReferenceFaultBackend` — the cycle-accurate scalar path: one
  :class:`~repro.faults.simulator.LogicalMemory` per injection, replaying a
  *shared* compiled :class:`~repro.march.execution.OperationTrace` (the
  trace is built once per (algorithm, order, direction) and reused across
  every injection, instead of re-walking the address order per fault).
* ``"vectorized"`` — :class:`repro.engine.fault_campaign.VectorizedFaultCampaign`,
  which simulates every injection of a fault class simultaneously as NumPy
  state arrays.  It lives in :mod:`repro.engine` so the faults layer stays
  importable without numpy.

Both backends must produce bit-identical
:class:`~repro.faults.simulator.DetectionResult` lists; the test-suite
asserts this across every standard fault model, both addressing
directions and several address orders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence

from ..engine.dispatch import register_backend_family
from ..march.algorithm import MarchAlgorithm
from ..march.element import AddressingDirection
from ..march.execution import OperationTrace, TraceCache
from ..march.ordering import AddressOrder
from ..sram.geometry import ArrayGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .simulator import DetectionResult, FaultInjection


#: Valid values of the ``backend`` switch of :class:`repro.faults.FaultSimulator`
#: (the "faults" family of :mod:`repro.engine.dispatch`).
FAULT_BACKENDS = register_backend_family("faults")


class FaultBackend(Protocol):
    """Protocol every fault-simulation backend implements.

    A backend turns (algorithm, order, injection list) into one
    :class:`~repro.faults.simulator.DetectionResult` per injection, in
    input order.  ``trace`` is the shared compiled run description —
    callers that simulate the same run repeatedly (coverage campaigns,
    invariance checks) compile it once and hand it to whichever backend
    executes, so both backends replay the identical access stream.
    """

    #: registry name of the backend ("reference" / "vectorized").
    name: str

    def simulate_many(self, algorithm: MarchAlgorithm, order: AddressOrder,
                      injections: Sequence["FaultInjection"],
                      trace: Optional[OperationTrace] = None,
                      ) -> List["DetectionResult"]:
        """Simulate every injection under one March run; results in input order."""
        ...  # pragma: no cover - protocol stub


class ReferenceFaultBackend:
    """Scalar per-fault replay over a shared compiled operation trace.

    The behavioural ground truth: one
    :class:`~repro.faults.simulator.LogicalMemory` per injection, every
    fault-model hook executed exactly as defined in
    :mod:`repro.faults.models`.  The only optimisation over the naive
    per-fault :func:`repro.march.execution.walk` is that the address
    traversal is compiled once per (algorithm, order, direction) and
    replayed as plain tuples — results are unchanged (the regression test
    pins this against a fresh-walk implementation).
    """

    name = "reference"

    def __init__(self, geometry: ArrayGeometry,
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 traces: Optional[TraceCache] = None) -> None:
        self.geometry = geometry
        self.any_direction = any_direction
        # Optionally a caller-shared cache (e.g. the sweep orchestrator's
        # process-local one), so campaigns across simulator instances reuse
        # compiled traces instead of recompiling per case.
        self._traces = traces if traces is not None else TraceCache()

    # ------------------------------------------------------------------
    def trace_for(self, algorithm: MarchAlgorithm,
                  order: AddressOrder) -> OperationTrace:
        """The cached compiled trace of ``algorithm`` over ``order``."""
        return self._traces.get(algorithm, order, self.any_direction)

    def simulate_one(self, algorithm: MarchAlgorithm, order: AddressOrder,
                     injection: Optional["FaultInjection"],
                     trace: Optional[OperationTrace] = None,
                     ) -> "DetectionResult":
        """Simulate one injection (or the fault-free memory, ``None``)."""
        from .simulator import (  # deferred: simulator imports this module
            DetectionResult, FaultInjection, LogicalMemory)
        from .models import FaultFree

        if trace is None:
            trace = self.trace_for(algorithm, order)
        memory = LogicalMemory(self.geometry, injection)
        write = memory.write
        read = memory.read
        mismatches = 0
        first: Optional[int] = None
        for index, row, word, operation in trace.iter_accesses():
            if operation.is_write:
                write(row, word, operation.value)
                continue
            if read(row, word) != operation.value:
                mismatches += 1
                if first is None:
                    first = index
        return DetectionResult(
            injection=injection if injection is not None else FaultInjection(
                fault=FaultFree(), victim=(0, 0)),
            algorithm=algorithm.name,
            order=order.name,
            detected=mismatches > 0,
            first_detection_step=first,
            mismatches=mismatches,
        )

    def simulate_many(self, algorithm: MarchAlgorithm, order: AddressOrder,
                      injections: Sequence["FaultInjection"],
                      trace: Optional[OperationTrace] = None,
                      ) -> List["DetectionResult"]:
        """Replay the shared trace once per injection (scalar loop)."""
        if trace is None:
            trace = self.trace_for(algorithm, order)
        return [self.simulate_one(algorithm, order, injection, trace=trace)
                for injection in injections]
