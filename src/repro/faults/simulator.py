"""Functional fault simulator for March tests.

The simulator runs a March algorithm against a *logical* memory (values
only, no electrical model — that keeps full-array fault campaigns fast) with
one injected fault, and reports whether any read mismatched its expectation.
It is the tool behind the DOF-1 experiments: the same fault list is
simulated under different address orders and the detection results must
agree, which is the property the paper relies on when it fixes the address
order to "word line after word line".

Execution is backend-pluggable, mirroring
:class:`repro.core.session.TestSession`: ``backend="reference"`` replays a
shared compiled trace against one :class:`LogicalMemory` per injection,
``backend="vectorized"`` hands the whole fault list to the NumPy campaign
engine (:mod:`repro.engine.fault_campaign`) which simulates every injection
of a fault class simultaneously, and ``backend="auto"`` (the default) picks
the vectorized engine whenever the campaign qualifies — falling back to the
reference path for fault models it has no kernel for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine.dispatch import KERNEL_CHOICES, BackendDispatcher, EngineError
from ..march.algorithm import MarchAlgorithm
from ..march.element import AddressingDirection
from ..march.execution import OperationTrace, TraceCache
from ..march.ordering import AddressOrder
from ..sram.geometry import ArrayGeometry
from .backend import ReferenceFaultBackend
from .models import CellState, CouplingFault, FaultFree, FaultModel


class FaultSimulationError(Exception):
    """Raised on inconsistent fault injection requests."""


Coordinate = Tuple[int, int]


def type1_neighbourhood(geometry: ArrayGeometry,
                        victim: Coordinate) -> Tuple[Coordinate, ...]:
    """The type-1 NPSF neighbourhood of ``victim``: its in-bounds
    orthogonal (north, south, west, east) cells, in that order."""
    geometry.validate_coordinates(*victim)
    row, column = victim
    candidates = ((row - 1, column), (row + 1, column),
                  (row, column - 1), (row, column + 1))
    return tuple(
        (r, c) for r, c in candidates
        if 0 <= r < geometry.rows and 0 <= c < geometry.words_per_row)


@dataclass(frozen=True)
class FaultInjection:
    """A fault model placed at a victim cell (plus, depending on the model,
    an aggressor cell or a neighbourhood of cells)."""

    fault: FaultModel
    victim: Coordinate
    aggressor: Optional[Coordinate] = None
    neighbourhood: Optional[Tuple[Coordinate, ...]] = None

    def __post_init__(self) -> None:
        if self.fault.is_coupling and self.aggressor is None:
            raise FaultSimulationError(
                f"{self.fault.describe()} is a coupling fault and needs an aggressor")
        if not self.fault.is_coupling and self.aggressor is not None:
            raise FaultSimulationError(
                f"{self.fault.describe()} is a single-cell fault and takes no aggressor")
        if self.aggressor is not None and self.aggressor == self.victim:
            raise FaultSimulationError("aggressor and victim must be different cells")
        if self.fault.is_neighbourhood:
            if not self.neighbourhood:
                raise FaultSimulationError(
                    f"{self.fault.describe()} is a neighbourhood fault and "
                    "needs a non-empty neighbourhood")
            object.__setattr__(self, "neighbourhood", tuple(self.neighbourhood))
            if self.victim in self.neighbourhood:
                raise FaultSimulationError(
                    "the victim cannot be part of its own neighbourhood")
            if len(set(self.neighbourhood)) != len(self.neighbourhood):
                raise FaultSimulationError("neighbourhood cells must be distinct")
            pattern = getattr(self.fault, "pattern", None)
            if pattern is not None and len(pattern) != len(self.neighbourhood):
                raise FaultSimulationError(
                    f"{self.fault.describe()} has a {len(pattern)}-cell pattern "
                    f"but the neighbourhood has {len(self.neighbourhood)} cells")
        elif self.neighbourhood is not None:
            raise FaultSimulationError(
                f"{self.fault.describe()} takes no neighbourhood")

    def describe(self) -> str:
        if self.aggressor is not None:
            return f"{self.fault.describe()}@victim{self.victim}/aggressor{self.aggressor}"
        if self.neighbourhood is not None:
            return (f"{self.fault.describe()}@victim{self.victim}"
                    f"/neighbourhood{self.neighbourhood}")
        return f"{self.fault.describe()}@{self.victim}"


@dataclass
class DetectionResult:
    """Outcome of simulating one injected fault under one March run."""

    injection: FaultInjection
    algorithm: str
    order: str
    detected: bool
    first_detection_step: Optional[int] = None
    mismatches: int = 0

    def describe(self) -> str:
        status = "DETECTED" if self.detected else "missed"
        return f"{self.injection.describe()}: {status} by {self.algorithm} under {self.order}"


class LogicalMemory:
    """Value-only memory with one injected fault (bit-oriented)."""

    def __init__(self, geometry: ArrayGeometry,
                 injection: Optional[FaultInjection] = None) -> None:
        if geometry.bits_per_word != 1:
            raise FaultSimulationError(
                "the logical fault simulator models bit-oriented arrays "
                "(bits_per_word == 1), matching the paper's scope")
        self.geometry = geometry
        self.injection = injection
        self._states: Dict[Coordinate, CellState] = {}
        self._fault_free = FaultFree()
        #: last value observed on the data bus (used by stuck-open faults).
        self._bus_value = 0
        #: per-cell cycle stamp of the last access (for retention faults).
        self._last_access: Dict[Coordinate, int] = {}
        #: (cycle, kind) of the victim's most recent access — dynamic faults
        #: need the *kind* and exact adjacency, which ``_last_access`` (whose
        #: missing-key default of 0 would alias "never accessed" with cycle 0)
        #: cannot provide.
        self._victim_last: Optional[Tuple[int, str]] = None
        #: neighbourhood cell -> position in the injection's neighbourhood.
        self._neighbour_index: Dict[Coordinate, int] = {}
        self._cycle = 0
        if injection is not None:
            self.geometry.validate_coordinates(*injection.victim)
            if injection.aggressor is not None:
                self.geometry.validate_coordinates(*injection.aggressor)
            if injection.neighbourhood is not None:
                for position, cell in enumerate(injection.neighbourhood):
                    self.geometry.validate_coordinates(*cell)
                    self._neighbour_index[cell] = position

    # ------------------------------------------------------------------
    def _state(self, coordinate: Coordinate) -> CellState:
        state = self._states.get(coordinate)
        if state is None:
            state = CellState()
            self._states[coordinate] = state
        return state

    def _model_for(self, coordinate: Coordinate) -> FaultModel:
        if self.injection is not None and coordinate == self.injection.victim:
            return self.injection.fault
        return self._fault_free

    def _touch(self, coordinate: Coordinate) -> None:
        # Retention behaviour: how long since this cell was last accessed?
        if self.injection is not None and coordinate == self.injection.victim:
            idle = self._cycle - self._last_access.get(coordinate, 0)
            self.injection.fault.on_idle(self._state(coordinate), idle)
        self._last_access[coordinate] = self._cycle

    def _apply_coupling_after_aggressor(self, wrote: bool,
                                        old_value: Optional[int],
                                        new_value: Optional[int]) -> None:
        injection = self.injection
        if injection is None or injection.aggressor is None:
            return
        victim_state = self._state(injection.victim)
        if wrote:
            assert new_value is not None
            injection.fault.on_aggressor_write(victim_state, old_value, new_value)
        else:
            injection.fault.on_aggressor_read(victim_state, new_value)

    def _apply_coupling_on_victim_access(self) -> None:
        injection = self.injection
        if injection is None or injection.aggressor is None:
            return
        aggressor_state = self._state(injection.aggressor)
        injection.fault.on_aggressor_state(self._state(injection.victim),
                                           aggressor_state.value)

    def _neighbour_values(self) -> Tuple[Optional[int], ...]:
        assert self.injection is not None and self.injection.neighbourhood
        return tuple(self._state(cell).value
                     for cell in self.injection.neighbourhood)

    def _apply_neighbourhood_on_victim_access(self) -> None:
        injection = self.injection
        if injection is None or injection.neighbourhood is None:
            return
        injection.fault.on_neighbourhood_state(self._state(injection.victim),
                                               self._neighbour_values())

    def _victim_prev_kind(self) -> Optional[str]:
        """Kind of the access in the immediately preceding clock cycle,
        when that access hit the victim; ``None`` otherwise."""
        if self._victim_last is None:
            return None
        cycle, kind = self._victim_last
        return kind if cycle == self._cycle - 1 else None

    # ------------------------------------------------------------------
    def write(self, row: int, column: int, value: int) -> None:
        coordinate = (row, column)
        self._cycle += 1
        self._touch(coordinate)
        is_aggressor = (self.injection is not None
                        and self.injection.aggressor == coordinate)
        is_victim = (self.injection is not None
                     and self.injection.victim == coordinate)
        if is_victim:
            self._apply_coupling_on_victim_access()
            self._apply_neighbourhood_on_victim_access()
        state = self._state(coordinate)
        old_value = state.value
        self._model_for(coordinate).on_write(state, value)
        self._bus_value = value
        if is_victim:
            self._victim_last = (self._cycle, "w")
        if is_aggressor:
            self._apply_coupling_after_aggressor(True, old_value, value)
        neighbour = self._neighbour_index.get(coordinate)
        if neighbour is not None:
            assert self.injection is not None
            self.injection.fault.on_neighbourhood_write(
                self._state(self.injection.victim), neighbour,
                old_value, value, self._neighbour_values())

    def read(self, row: int, column: int) -> int:
        coordinate = (row, column)
        self._cycle += 1
        self._touch(coordinate)
        is_aggressor = (self.injection is not None
                        and self.injection.aggressor == coordinate)
        is_victim = (self.injection is not None
                     and self.injection.victim == coordinate)
        if is_victim:
            self._apply_coupling_on_victim_access()
            self._apply_neighbourhood_on_victim_access()
        state = self._state(coordinate)
        model = self._model_for(coordinate)
        if model.is_dynamic:
            observed = model.on_dynamic_read(state, self._victim_prev_kind())
        else:
            observed = model.on_read(state)
        if observed is None:
            observed = self._bus_value
        self._bus_value = observed
        if is_victim:
            self._victim_last = (self._cycle, "r")
        if is_aggressor:
            self._apply_coupling_after_aggressor(False, None, state.value)
        return observed

    def peek(self, row: int, column: int) -> Optional[int]:
        return self._state((row, column)).value


class FaultSimulator:
    """Run March algorithms against injected faults and report detection.

    ``backend`` selects the execution engine:

    * ``"reference"`` — the scalar ground truth: one :class:`LogicalMemory`
      per injection replaying a shared compiled trace.  Supports every
      :class:`~repro.faults.models.FaultModel`, including user subclasses.
    * ``"vectorized"`` — the NumPy campaign engine
      (:class:`repro.engine.fault_campaign.VectorizedFaultCampaign`):
      all injections of a fault class simulated simultaneously as parallel
      state arrays.  Raises
      :class:`repro.engine.fault_campaign.UnsupportedFaultCampaign` for
      fault models it has no kernel for (and needs numpy).
    * ``"auto"`` (default) — vectorized when the campaign qualifies,
      silently falling back to the reference engine otherwise.

    Both engines produce bit-identical :class:`DetectionResult` lists —
    same verdicts, first-detection steps and mismatch counts — which the
    test-suite asserts across every standard fault model, both addressing
    directions and several address orders.  :attr:`last_backend_used`
    reports which engine executed the most recent call.
    """

    def __init__(self, geometry: ArrayGeometry,
                 any_direction: AddressingDirection = AddressingDirection.UP,
                 backend: str = "auto",
                 trace_cache: Optional[TraceCache] = None,
                 kernel: Optional[str] = None) -> None:
        self._dispatch = BackendDispatcher("faults", self._make_engine,
                                           error=FaultSimulationError)
        self.backend = self._dispatch.validate(backend)
        if kernel is not None and kernel not in KERNEL_CHOICES:
            raise FaultSimulationError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}")
        #: kernel tier forwarded to the vectorized campaign (facade
        #: uniformity; fault verdicts are tier-invariant — see
        #: :class:`repro.engine.fault_campaign.VectorizedFaultCampaign`).
        self.kernel = kernel
        self.geometry = geometry
        self.any_direction = any_direction
        # ``trace_cache`` optionally shares compiled traces across
        # simulators (the sweep orchestrator passes its process-local one).
        self._reference = ReferenceFaultBackend(geometry, any_direction,
                                                traces=trace_cache)

    @property
    def last_backend_used(self) -> Optional[str]:
        """Engine that executed the calling thread's most recent simulate
        call ("reference"/"vectorized"; ``None`` before the first call).
        Thread-local so concurrent campaigns through a shared simulator
        never mis-attribute provenance.
        """
        return self._dispatch.last_backend_used

    @last_backend_used.setter
    def last_backend_used(self, backend: Optional[str]) -> None:
        self._dispatch.note_backend_used(backend)

    # ------------------------------------------------------------------
    def _make_engine(self):
        """Build the vectorized campaign engine (imported lazily: numpy)."""
        from ..engine.fault_campaign import VectorizedFaultCampaign

        return VectorizedFaultCampaign(
            self.geometry, any_direction=self.any_direction,
            kernel=self.kernel)

    def trace_for(self, algorithm: MarchAlgorithm,
                  order: AddressOrder) -> OperationTrace:
        """The compiled operation trace shared by both backends (cached)."""
        return self._reference.trace_for(algorithm, order)

    # ------------------------------------------------------------------
    def simulate(self, algorithm: MarchAlgorithm, order: AddressOrder,
                 injection: Optional[FaultInjection]) -> DetectionResult:
        """Simulate one injected fault (or the fault-free memory) under one run."""
        if injection is None:
            # The fault-free run needs no fault kernels; replay directly.
            result = self._reference.simulate_one(algorithm, order, None)
            self.last_backend_used = "reference"
            return result
        return self.simulate_many(algorithm, order, [injection])[0]

    def simulate_many(self, algorithm: MarchAlgorithm, order: AddressOrder,
                      injections: Iterable[FaultInjection]) -> List[DetectionResult]:
        """Simulate a whole fault list under one run (the campaign call).

        Results are returned in input order.  The selected backend (see
        the class docstring) executes the complete batch; ``"auto"`` falls
        back to the reference engine when the vectorized campaign rejects
        the batch (unknown fault model, missing numpy).
        """
        injections = list(injections)
        trace = self.trace_for(algorithm, order)

        def simulate_vectorized(campaign) -> List[DetectionResult]:
            results = campaign.simulate_many(algorithm, order, injections,
                                             trace=trace)
            self.last_backend_used = "vectorized"
            return results

        def simulate_reference() -> List[DetectionResult]:
            results = self._reference.simulate_many(algorithm, order,
                                                    injections, trace=trace)
            self.last_backend_used = "reference"
            return results

        if not injections:
            return simulate_reference()
        # A rejected batch (unknown fault model, unsupported geometry,
        # missing numpy) leaves the engine without corrupt state, so the
        # cached instance stays valid for later batches — no invalidation.
        return self._dispatch.call(
            self.backend, vectorized=simulate_vectorized,
            reference=simulate_reference,
            fallback=(EngineError, ImportError))

    def fault_free_passes(self, algorithm: MarchAlgorithm, order: AddressOrder) -> bool:
        """Sanity check: the fault-free memory must never flag a mismatch."""
        return not self.simulate(algorithm, order, None).mismatches
