"""Crash-durable file-write helpers (mkstemp + fsync + atomic replace).

The durability-bearing layers — sweep exports, the run journal's restart
path, the serving cache — promise that a reader never observes a torn
file: after a crash the target either holds the complete previous
content or the complete new content, nothing in between.  PR 8's
torn-header incident is what happens when that promise is kept by
convention instead of by construction.

These helpers are the construction, written once:

* the new content goes to a ``mkstemp`` sibling in the *target's own
  directory* (same filesystem, so the final rename cannot degrade into a
  copy);
* the temp file is flushed and ``fsync``-ed before it is visible under
  the real name;
* ``os.replace`` publishes it atomically;
* the directory entry is fsync-ed afterwards (best-effort — not every
  platform allows directory fds) so the rename itself survives a crash.

The static-analysis rule RPR003 (``repro.devtools.lint``) flags any raw
truncating write under ``sweep/`` and ``serve/``; routing through this
module is how call sites satisfy it.  This module itself lives outside
the rule's scope on purpose: it is the one place allowed to spell the
raw pattern.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory entry to disk, where the platform allows it."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # e.g. Windows: directories cannot be opened for fsync
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Durably replace ``path``'s content with ``data``; returns the path.

    The write is atomic with respect to concurrent readers (they see the
    old file or the new one, never a mixture) and durable across a crash
    once the call returns.
    """
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> Path:
    """Durably replace ``path``'s content with ``text``; returns the path."""
    return atomic_write_bytes(path, text.encode(encoding))
