"""Technology parameters for the 0.13 µm process used throughout the paper.

The original evaluation ("Minimizing Test Power in SRAM through Reduction of
Pre-charge Activity", DATE 2006) is based on Spice simulations of a
0.13 µm SRAM operated at 1.6 V with a 3 ns clock cycle.  This module carries
the process/operating-point description that every other substrate
(transient solver, SRAM behavioural model, power model) derives its numbers
from, so that the whole repository is calibrated from a single place.

The values are not foundry data; they are representative 0.13 µm-class
parameters chosen so that the qualitative behaviour the paper relies on is
reproduced:

* the bit-line capacitance is two to three orders of magnitude larger than a
  cell's internal node capacitance (this is what makes the faulty swap of
  Figure 7 possible and what makes pre-charge the dominant power consumer);
* a floating bit line driven only by an unselected cell discharges over
  roughly nine clock cycles (Figure 6);
* pre-charge related energy represents the large majority of the per-cycle
  energy of a read or write operation (reference [8] of the paper quotes
  70-80 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class TechnologyParameters:
    """Process and operating-point description of the simulated SRAM.

    All values are SI units (volts, seconds, farads, amperes, ohms) unless
    the attribute name says otherwise.
    """

    name: str = "generic-0.13um"

    # ------------------------------------------------------------------
    # Operating point (paper: 1.6 V supply, 3 ns clock cycle).
    # ------------------------------------------------------------------
    vdd: float = 1.6
    clock_period: float = 3.0e-9
    temperature_c: float = 25.0

    # ------------------------------------------------------------------
    # MOSFET square-law parameters (representative 0.13 µm values).
    # ``kp`` values are the process transconductance (µ Cox) in A/V².
    # ------------------------------------------------------------------
    vth_n: float = 0.35
    vth_p: float = 0.38
    kp_n: float = 300e-6
    kp_p: float = 120e-6
    channel_length_modulation: float = 0.05
    min_length_um: float = 0.13

    # ------------------------------------------------------------------
    # Capacitances.
    # ------------------------------------------------------------------
    #: capacitance added to a bit line by one attached cell (drain junction
    #: of the access transistor plus its share of the metal line).
    bitline_cap_per_cell: float = 1.0e-15
    #: fixed bit-line capacitance (sense amplifier, write driver, column
    #: mux diffusion) independent of the number of rows.
    bitline_cap_fixed: float = 20e-15
    #: internal storage-node capacitance of a 6T cell.
    cell_node_cap: float = 1.6e-15
    #: capacitance a single cell's gates present to the word line.
    wordline_cap_per_cell: float = 1.4e-15
    #: gate capacitance presented by one pre-charge circuit to its control
    #: signal (three PMOS gates).
    precharge_gate_cap: float = 2.4e-15
    #: input capacitance of one added control element (mux + NAND), §4/§5.
    control_element_cap: float = 2.0e-15

    # ------------------------------------------------------------------
    # Transistor sizing (widths in µm) for the cells and periphery.
    # ------------------------------------------------------------------
    cell_access_width_um: float = 0.20
    cell_pulldown_width_um: float = 0.30
    cell_pullup_width_um: float = 0.16
    precharge_pmos_width_um: float = 1.20
    write_driver_width_um: float = 2.0

    #: effective series resistance of the path through which an unselected
    #: cell discharges a floating bit line (access transistor barely driven
    #: plus pull-down).  Calibrated so that the discharge of a full-length
    #: (512-row) bit line spans roughly nine 3 ns clock cycles, as measured
    #: in the paper's Figure 6 (time constant ~4 cycles, logic '0' reached
    #: within ~9).
    floating_discharge_resistance: float = 22e3

    #: effective resistance of an active pre-charge PMOS pulling a bit line
    #: back to VDD (restoration is comfortably done in half a cycle).
    precharge_resistance: float = 0.8e3

    #: short-circuit/equalisation overhead factor applied to pre-charge
    #: energy (models the equalisation transistor and overlap currents).
    precharge_overhead_factor: float = 0.15

    #: quasi-static current a pre-charge circuit supplies while sustaining a
    #: read-equivalent stress on one unselected column (the cell pulls one
    #: bit line down, the pre-charge replaces the charge).  After the initial
    #: transient the fight settles to a small equilibrium current; the value
    #: is calibrated so that the pre-charge activity of the unselected
    #: columns represents roughly half of the functional-mode test power and
    #: the overall pre-charge share lands in the 70-80 % band the paper
    #: quotes from reference [8].
    res_equilibrium_current: float = 3.0e-6

    #: leakage current of one 6T cell (used only for completeness of the
    #: power accounting; negligible at the paper's operating point).
    cell_leakage_current: float = 30e-12

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------
    def bitline_capacitance(self, rows: int) -> float:
        """Total capacitance of a single bit line spanning ``rows`` cells."""
        if rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        return self.bitline_cap_fixed + rows * self.bitline_cap_per_cell

    def wordline_capacitance(self, columns: int) -> float:
        """Total capacitance of a word line spanning ``columns`` cells.

        The LPtest control line of the proposed scheme has, per the paper,
        the same equivalent capacitance as a word line (same length, same
        number of driven gates), so this is reused for it.
        """
        if columns <= 0:
            raise ValueError(f"columns must be positive, got {columns}")
        return columns * self.wordline_cap_per_cell

    def swing_energy(self, capacitance: float, swing: float | None = None) -> float:
        """Energy drawn from the supply to charge ``capacitance`` by ``swing``.

        E = C * V_swing * VDD, the standard expression for the energy drawn
        from a supply at VDD while raising a node by ``swing`` volts.  When
        ``swing`` is omitted a full rail-to-rail transition is assumed.
        """
        if capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        v = self.vdd if swing is None else swing
        if v < 0:
            raise ValueError("voltage swing must be non-negative")
        return capacitance * v * self.vdd

    def clock_frequency(self) -> float:
        """Clock frequency in hertz."""
        return 1.0 / self.clock_period

    def floating_discharge_tau(self, rows: int) -> float:
        """RC time constant of a floating bit line discharged by one cell."""
        return self.floating_discharge_resistance * self.bitline_capacitance(rows)

    def precharge_tau(self, rows: int) -> float:
        """RC time constant of an active pre-charge restoring a bit line."""
        return self.precharge_resistance * self.bitline_capacitance(rows)

    def scaled(self, **overrides: float) -> "TechnologyParameters":
        """Return a copy with selected fields overridden.

        Convenience for ablation sweeps (different supply voltage, different
        bit-line loading, ...).
        """
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view used by reports and experiment logs."""
        return {
            "name": self.name,
            "vdd": self.vdd,
            "clock_period": self.clock_period,
            "temperature_c": self.temperature_c,
            "vth_n": self.vth_n,
            "vth_p": self.vth_p,
            "kp_n": self.kp_n,
            "kp_p": self.kp_p,
            "channel_length_modulation": self.channel_length_modulation,
            "min_length_um": self.min_length_um,
            "bitline_cap_per_cell": self.bitline_cap_per_cell,
            "bitline_cap_fixed": self.bitline_cap_fixed,
            "cell_node_cap": self.cell_node_cap,
            "wordline_cap_per_cell": self.wordline_cap_per_cell,
            "precharge_gate_cap": self.precharge_gate_cap,
            "control_element_cap": self.control_element_cap,
            "floating_discharge_resistance": self.floating_discharge_resistance,
            "precharge_resistance": self.precharge_resistance,
            "precharge_overhead_factor": self.precharge_overhead_factor,
            "res_equilibrium_current": self.res_equilibrium_current,
            "cell_leakage_current": self.cell_leakage_current,
            "cell_access_width_um": self.cell_access_width_um,
            "cell_pulldown_width_um": self.cell_pulldown_width_um,
            "cell_pullup_width_um": self.cell_pullup_width_um,
            "precharge_pmos_width_um": self.precharge_pmos_width_um,
            "write_driver_width_um": self.write_driver_width_um,
        }


#: The operating point used throughout the paper's evaluation section.
PAPER_TECHNOLOGY = TechnologyParameters(name="paper-0.13um-1.6V-3ns")


def default_technology() -> TechnologyParameters:
    """Return the paper's 0.13 µm / 1.6 V / 3 ns operating point."""
    return PAPER_TECHNOLOGY
