"""Fixed-step transient solver — the repository's Spice substitute.

The paper's Figures 2, 6 and 7 are Spice transient simulations of a handful
of cells, bit lines and pre-charge devices.  This module provides the small
nodal transient solver those reproductions run on:

* every node carries an explicit capacitance to ground (bit lines, cell
  storage nodes, gate loads);
* elements (resistors, switches, MOSFETs, current sources) inject currents
  that depend on the instantaneous node voltages;
* ideal piecewise-linear sources pin node voltages (supply rails, word-line
  drivers, pre-charge control signals) and the charge they deliver is
  integrated so supply energy can be reported;
* integration is explicit forward Euler with a conservative default step —
  entirely adequate for RC-dominated behaviour spanning nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from .elements import GROUND, Capacitor, Element, PiecewiseLinearSource
from .mosfet import Mosfet
from .waveform import Waveform


class CircuitError(Exception):
    """Raised for malformed circuits (missing capacitance, unknown nodes...)."""


@dataclass
class SourceEnergy:
    """Energy accounting for one ideal source over a transient run."""

    name: str
    delivered_charge: float = 0.0
    delivered_energy: float = 0.0


class Circuit:
    """A flat netlist: node capacitances, current elements and ideal sources."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._capacitances: Dict[str, float] = {}
        self._elements: List[Element] = []
        self._mosfets: List[Mosfet] = []
        self._sources: Dict[str, PiecewiseLinearSource] = {}
        self._initial_conditions: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def add_capacitor(self, cap: Capacitor) -> None:
        """Add a capacitor; capacitances on the same node accumulate."""
        if cap.other != GROUND:
            # A floating capacitor is represented by its two grounded halves,
            # which is accurate enough for the loosely coupled structures in
            # the SRAM fixtures (the exact coupling is not load-bearing).
            self._capacitances[cap.node] = self._capacitances.get(cap.node, 0.0) + cap.capacitance
            self._capacitances[cap.other] = self._capacitances.get(cap.other, 0.0) + cap.capacitance
            return
        self._capacitances[cap.node] = self._capacitances.get(cap.node, 0.0) + cap.capacitance

    def add_node_capacitance(self, node: str, capacitance: float) -> None:
        """Convenience wrapper for a grounded capacitance on ``node``."""
        self.add_capacitor(Capacitor(name=f"C_{node}", node=node, capacitance=capacitance))

    def add_element(self, element: Element) -> None:
        self._elements.append(element)

    def add_mosfet(self, mosfet: Mosfet) -> None:
        self._mosfets.append(mosfet)

    def add_source(self, source: PiecewiseLinearSource) -> None:
        if source.node in self._sources:
            raise CircuitError(f"node {source.node!r} already driven by a source")
        self._sources[source.node] = source

    def set_initial_condition(self, node: str, voltage: float) -> None:
        self._initial_conditions[node] = voltage

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes(self) -> List[str]:
        """All node names referenced by the netlist (excluding ground)."""
        names = set(self._capacitances)
        for element in self._elements:
            names.update(element.nodes())
        for mosfet in self._mosfets:
            names.update((mosfet.drain, mosfet.gate, mosfet.source))
        names.update(self._sources)
        names.update(self._initial_conditions)
        names.discard(GROUND)
        return sorted(names)

    def free_nodes(self) -> List[str]:
        """Nodes whose voltage is integrated (not pinned by a source)."""
        return [n for n in self.nodes() if n not in self._sources]

    def validate(self) -> None:
        """Check that every free node has charge storage attached."""
        for node in self.free_nodes():
            if self._capacitances.get(node, 0.0) <= 0.0:
                raise CircuitError(
                    f"free node {node!r} has no capacitance; the explicit solver "
                    "needs every undriven node to carry charge storage"
                )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        t_stop: float,
        dt: float = 10e-12,
        record: Optional[Iterable[str]] = None,
        record_every: int = 1,
    ) -> "TransientResult":
        """Integrate the network from t=0 to ``t_stop``.

        ``record`` restricts which node waveforms are stored (default: all
        nodes).  ``record_every`` stores every N-th step to keep waveform
        sizes reasonable in long runs.
        """
        if t_stop <= 0:
            raise ValueError("t_stop must be positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if record_every < 1:
            raise ValueError("record_every must be >= 1")
        self.validate()

        nodes = self.nodes()
        recorded = list(record) if record is not None else list(nodes)
        unknown = [n for n in recorded if n not in nodes and n != GROUND]
        if unknown:
            raise CircuitError(f"cannot record unknown nodes: {unknown}")

        voltages: Dict[str, float] = {GROUND: 0.0}
        for node in nodes:
            if node in self._sources:
                voltages[node] = self._sources[node].value_at(0.0)
            else:
                voltages[node] = self._initial_conditions.get(node, 0.0)

        waveforms = {n: Waveform(name=n, unit="V") for n in recorded}
        source_energy = {s.name: SourceEnergy(name=s.name) for s in self._sources.values()}

        steps = int(round(t_stop / dt))
        time = 0.0
        for step in range(steps + 1):
            if step % record_every == 0:
                for node in recorded:
                    waveforms[node].append(time, voltages.get(node, 0.0))
            if step == steps:
                break

            currents = {n: 0.0 for n in nodes}
            for element in self._elements:
                for node, current in element.node_currents(voltages, time).items():
                    if node != GROUND:
                        currents[node] += current
            for mosfet in self._mosfets:
                for node, current in mosfet.node_currents(voltages).items():
                    if node != GROUND:
                        currents[node] += current

            next_time = time + dt
            new_voltages = dict(voltages)
            for node in nodes:
                source = self._sources.get(node)
                if source is not None:
                    new_voltages[node] = source.value_at(next_time)
                    # Charge delivered by the source: whatever current the
                    # rest of the circuit drew from this node, plus the
                    # charge needed to move its own capacitance.
                    drawn = -currents[node] * dt
                    cap = self._capacitances.get(node, 0.0)
                    drawn += cap * (new_voltages[node] - voltages[node])
                    acct = source_energy[source.name]
                    acct.delivered_charge += drawn
                    acct.delivered_energy += drawn * voltages[node]
                else:
                    cap = self._capacitances[node]
                    dv = currents[node] * dt / cap
                    v = voltages[node] + dv
                    if v != v or abs(v) > 1e3:  # NaN or runaway growth
                        raise CircuitError(
                            f"node {node!r} diverged at t={time:.3e}s; the explicit "
                            "solver needs a smaller time step for this circuit "
                            "(small capacitances driven by strong devices)"
                        )
                    new_voltages[node] = v
            voltages = new_voltages
            voltages[GROUND] = 0.0
            time = next_time

        return TransientResult(
            circuit_name=self.name,
            dt=dt,
            t_stop=t_stop,
            waveforms=waveforms,
            final_voltages={n: voltages[n] for n in nodes},
            source_energy=source_energy,
        )


@dataclass
class TransientResult:
    """Output of :meth:`Circuit.simulate`."""

    circuit_name: str
    dt: float
    t_stop: float
    waveforms: Dict[str, Waveform]
    final_voltages: Dict[str, float]
    source_energy: Dict[str, SourceEnergy] = field(default_factory=dict)

    def waveform(self, node: str) -> Waveform:
        try:
            return self.waveforms[node]
        except KeyError as exc:
            raise KeyError(
                f"node {node!r} was not recorded; recorded nodes: {sorted(self.waveforms)}"
            ) from exc

    def final_voltage(self, node: str) -> float:
        try:
            return self.final_voltages[node]
        except KeyError as exc:
            raise KeyError(f"unknown node {node!r}") from exc

    def total_source_energy(self) -> float:
        """Total energy delivered by all ideal sources during the run."""
        return sum(acct.delivered_energy for acct in self.source_energy.values())

    def source_energy_for(self, name: str) -> float:
        try:
            return self.source_energy[name].delivered_energy
        except KeyError as exc:
            raise KeyError(
                f"unknown source {name!r}; known: {sorted(self.source_energy)}"
            ) from exc
