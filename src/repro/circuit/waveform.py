"""Waveform container used by the Spice-substitute transient simulator.

The paper validates its proposal with Spice waveforms (Figures 2 and 6).
Our transient solver produces :class:`Waveform` objects: uniformly or
non-uniformly sampled time/value series with the handful of analysis
operations the experiments need (value lookup, threshold crossings,
settling detection, simple arithmetic, ASCII rendering for the benchmark
output).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass
class Waveform:
    """A sampled signal: monotonically non-decreasing times and values."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    name: str = ""
    unit: str = "V"

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError(
                f"times ({len(self.times)}) and values ({len(self.values)}) "
                "must have the same length"
            )
        for earlier, later in zip(self.times, self.times[1:]):
            if later < earlier:
                raise ValueError("times must be monotonically non-decreasing")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Iterable[Tuple[float, float]],
        name: str = "",
        unit: str = "V",
    ) -> "Waveform":
        """Build a waveform from an iterable of ``(time, value)`` pairs."""
        times: List[float] = []
        values: List[float] = []
        for t, v in samples:
            times.append(float(t))
            values.append(float(v))
        return cls(times=times, values=values, name=name, unit=unit)

    @classmethod
    def constant(
        cls, value: float, t_start: float, t_stop: float, name: str = "", unit: str = "V"
    ) -> "Waveform":
        """A two-point constant waveform covering ``[t_start, t_stop]``."""
        if t_stop < t_start:
            raise ValueError("t_stop must not precede t_start")
        return cls(times=[t_start, t_stop], values=[value, value], name=name, unit=unit)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def append(self, time: float, value: float) -> None:
        """Append one sample; ``time`` must not precede the last sample."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"cannot append sample at t={time!r} before last t={self.times[-1]!r}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    @property
    def start_time(self) -> float:
        self._require_samples()
        return self.times[0]

    @property
    def end_time(self) -> float:
        self._require_samples()
        return self.times[-1]

    def _require_samples(self) -> None:
        if not self.times:
            raise ValueError(f"waveform {self.name!r} has no samples")

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def value_at(self, time: float) -> float:
        """Linearly interpolated value at ``time`` (clamped at the ends)."""
        self._require_samples()
        times, values = self.times, self.values
        if time <= times[0]:
            return values[0]
        if time >= times[-1]:
            return values[-1]
        lo, hi = 0, len(times) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if times[mid] <= time:
                lo = mid
            else:
                hi = mid
        t0, t1 = times[lo], times[hi]
        v0, v1 = values[lo], values[hi]
        if t1 == t0:
            return v1
        frac = (time - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def minimum(self) -> float:
        self._require_samples()
        return min(self.values)

    def maximum(self) -> float:
        self._require_samples()
        return max(self.values)

    def final_value(self) -> float:
        self._require_samples()
        return self.values[-1]

    def first_crossing(
        self, threshold: float, direction: str = "any", after: float = -math.inf
    ) -> Optional[float]:
        """Time of the first crossing of ``threshold``.

        ``direction`` is ``"rising"``, ``"falling"`` or ``"any"``.  Returns
        ``None`` when the waveform never crosses the threshold after
        ``after``.
        """
        if direction not in ("rising", "falling", "any"):
            raise ValueError(f"invalid direction {direction!r}")
        self._require_samples()
        for (t0, v0), (t1, v1) in zip(self, list(self)[1:]):
            if t1 < after:
                continue
            crossed_up = v0 < threshold <= v1
            crossed_down = v0 > threshold >= v1
            if direction == "rising" and not crossed_up:
                continue
            if direction == "falling" and not crossed_down:
                continue
            if direction == "any" and not (crossed_up or crossed_down):
                continue
            if v1 == v0:
                crossing = t1
            else:
                crossing = t0 + (threshold - v0) * (t1 - t0) / (v1 - v0)
            if crossing >= after:
                return crossing
        return None

    def settling_time(
        self, target: float, tolerance: float, after: float = -math.inf
    ) -> Optional[float]:
        """Earliest time after which the waveform stays within ``tolerance`` of ``target``."""
        self._require_samples()
        settle: Optional[float] = None
        for t, v in self:
            if t < after:
                continue
            if abs(v - target) <= tolerance:
                if settle is None:
                    settle = t
            else:
                settle = None
        return settle

    def time_average(self) -> float:
        """Time-weighted average value (trapezoidal)."""
        self._require_samples()
        if len(self.times) == 1:
            return self.values[0]
        total = 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return self.values[-1]
        for (t0, v0), (t1, v1) in zip(self, list(self)[1:]):
            total += 0.5 * (v0 + v1) * (t1 - t0)
        return total / span

    def integral(self) -> float:
        """Trapezoidal integral of the waveform over its full time span."""
        self._require_samples()
        total = 0.0
        for (t0, v0), (t1, v1) in zip(self, list(self)[1:]):
            total += 0.5 * (v0 + v1) * (t1 - t0)
        return total

    def sample_every(self, period: float) -> "Waveform":
        """Resample at a uniform ``period`` over the original span."""
        if period <= 0:
            raise ValueError("period must be positive")
        self._require_samples()
        t = self.start_time
        out = Waveform(name=self.name, unit=self.unit)
        while t <= self.end_time + 1e-18:
            out.append(t, self.value_at(t))
            t += period
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[float], float], name: str | None = None) -> "Waveform":
        """Apply ``fn`` to every value."""
        return Waveform(
            times=list(self.times),
            values=[fn(v) for v in self.values],
            name=self.name if name is None else name,
            unit=self.unit,
        )

    def scaled(self, factor: float) -> "Waveform":
        return self.map(lambda v: v * factor)

    def shifted(self, offset: float) -> "Waveform":
        """Shift the time axis by ``offset``."""
        return Waveform(
            times=[t + offset for t in self.times],
            values=list(self.values),
            name=self.name,
            unit=self.unit,
        )

    def windowed(self, t_start: float, t_stop: float) -> "Waveform":
        """Restrict to ``[t_start, t_stop]`` (end points interpolated)."""
        if t_stop < t_start:
            raise ValueError("t_stop must not precede t_start")
        self._require_samples()
        out = Waveform(name=self.name, unit=self.unit)
        out.append(t_start, self.value_at(t_start))
        for t, v in self:
            if t_start < t < t_stop:
                out.append(t, v)
        if t_stop > t_start:
            out.append(t_stop, self.value_at(t_stop))
        return out

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 72, height: int = 12) -> str:
        """Render a crude ASCII plot (used by benchmark reports)."""
        self._require_samples()
        if width < 8 or height < 3:
            raise ValueError("width must be >= 8 and height >= 3")
        lo, hi = self.minimum(), self.maximum()
        if hi == lo:
            hi = lo + 1.0
        t0, t1 = self.start_time, self.end_time
        span = (t1 - t0) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for col in range(width):
            t = t0 + span * col / (width - 1)
            v = self.value_at(t)
            row = int(round((hi - v) / (hi - lo) * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = "*"
        label = f"{self.name} [{self.unit}]  min={lo:.3g} max={hi:.3g}"
        lines = [label]
        for r, row in enumerate(grid):
            left = hi - (hi - lo) * r / (height - 1)
            lines.append(f"{left:9.3g} |" + "".join(row))
        lines.append(" " * 11 + "-" * width)
        lines.append(f"{'':9s}  t: {t0:.3g} .. {t1:.3g} s")
        return "\n".join(lines)


def align_waveforms(waveforms: Sequence[Waveform], period: float) -> List[Waveform]:
    """Resample a set of waveforms on a common uniform grid."""
    return [w.sample_every(period) for w in waveforms]
