"""Square-law MOSFET model used by the Spice-substitute transient solver.

The paper's validation relies on transistor-level Spice simulations of the
cell / bit-line / pre-charge interaction.  We do not have Spice (nor the
authors' 0.13 µm model cards), so this module provides a first-order
square-law MOSFET whose drain current is a function of its terminal
voltages.  It is deliberately simple — the experiments only need the right
orders of magnitude and the right qualitative behaviour (strong pre-charge
PMOS, weak cell transistors, sub-threshold cut-off).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .technology import TechnologyParameters


@dataclass(frozen=True)
class MosfetParameters:
    """Electrical parameters of a single MOSFET instance."""

    polarity: str  # "nmos" or "pmos"
    vth: float
    kp: float
    width_um: float
    length_um: float
    channel_length_modulation: float = 0.0

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")
        if self.width_um <= 0 or self.length_um <= 0:
            raise ValueError("width_um and length_um must be positive")
        if self.kp <= 0:
            raise ValueError("kp must be positive")

    @property
    def beta(self) -> float:
        """Device transconductance ``kp * W / L`` in A/V²."""
        return self.kp * self.width_um / self.length_um


class Mosfet:
    """A single MOSFET evaluated with the long-channel square law.

    The device connects ``drain``, ``gate`` and ``source`` node names; the
    bulk is tied to the appropriate rail implicitly.  :meth:`current`
    returns the conventional drain current (positive flowing into the drain
    for NMOS, out of the drain for PMOS), which the network solver converts
    into node charge flows.
    """

    def __init__(self, name: str, params: MosfetParameters,
                 drain: str, gate: str, source: str) -> None:
        self.name = name
        self.params = params
        self.drain = drain
        self.gate = gate
        self.source = source

    # ------------------------------------------------------------------
    def drain_current(self, v_drain: float, v_gate: float, v_source: float) -> float:
        """Drain-to-source current given absolute node voltages.

        Positive return value means conventional current flows from drain to
        source (discharging the drain node, charging the source node).
        """
        p = self.params
        if p.polarity == "nmos":
            return self._nmos_current(v_drain, v_gate, v_source)
        # PMOS: evaluate the symmetric NMOS equations on negated voltages.
        return -self._nmos_current_generic(
            vgs=-(v_gate - v_source),
            vds=-(v_drain - v_source),
            vth=p.vth,
            beta=p.beta,
            lam=p.channel_length_modulation,
        )

    def _nmos_current(self, v_drain: float, v_gate: float, v_source: float) -> float:
        p = self.params
        # An NMOS conducts symmetrically: the terminal at the lower potential
        # acts as the source.  Handle both orientations so that pass
        # transistors (cell access devices) work in either direction.
        if v_drain >= v_source:
            current = self._nmos_current_generic(
                vgs=v_gate - v_source,
                vds=v_drain - v_source,
                vth=p.vth,
                beta=p.beta,
                lam=p.channel_length_modulation,
            )
            return current
        current = self._nmos_current_generic(
            vgs=v_gate - v_drain,
            vds=v_source - v_drain,
            vth=p.vth,
            beta=p.beta,
            lam=p.channel_length_modulation,
        )
        return -current

    @staticmethod
    def _nmos_current_generic(vgs: float, vds: float, vth: float,
                              beta: float, lam: float) -> float:
        """Square-law drain current for a source-referenced NMOS."""
        vov = vgs - vth
        if vov <= 0.0:
            return 0.0
        if vds < 0.0:
            vds = 0.0
        if vds < vov:
            ids = beta * (vov * vds - 0.5 * vds * vds)
        else:
            ids = 0.5 * beta * vov * vov * (1.0 + lam * vds)
        return ids

    # ------------------------------------------------------------------
    def node_currents(self, voltages: dict) -> dict:
        """Return the current *into* each connected node.

        Used by the transient network solver: the drain current leaves the
        drain node and enters the source node; the gate draws no DC current.
        """
        ids = self.drain_current(
            voltages[self.drain], voltages[self.gate], voltages[self.source]
        )
        return {self.drain: -ids, self.source: +ids}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        p = self.params
        return (
            f"Mosfet({self.name!r}, {p.polarity}, W/L={p.width_um}/{p.length_um}, "
            f"d={self.drain}, g={self.gate}, s={self.source})"
        )


# ----------------------------------------------------------------------
# Factory helpers tied to the technology description.
# ----------------------------------------------------------------------
def nmos(tech: TechnologyParameters, name: str, drain: str, gate: str, source: str,
         width_um: float, length_um: float | None = None) -> Mosfet:
    """Create an NMOS sized ``width_um`` at the technology's minimum length."""
    params = MosfetParameters(
        polarity="nmos",
        vth=tech.vth_n,
        kp=tech.kp_n,
        width_um=width_um,
        length_um=tech.min_length_um if length_um is None else length_um,
        channel_length_modulation=tech.channel_length_modulation,
    )
    return Mosfet(name, params, drain, gate, source)


def pmos(tech: TechnologyParameters, name: str, drain: str, gate: str, source: str,
         width_um: float, length_um: float | None = None) -> Mosfet:
    """Create a PMOS sized ``width_um`` at the technology's minimum length."""
    params = MosfetParameters(
        polarity="pmos",
        vth=tech.vth_p,
        kp=tech.kp_p,
        width_um=width_um,
        length_um=tech.min_length_um if length_um is None else length_um,
        channel_length_modulation=tech.channel_length_modulation,
    )
    return Mosfet(name, params, drain, gate, source)


def equivalent_on_resistance(mosfet: Mosfet, vdd: float) -> float:
    """Crude effective on-resistance of a device at full gate drive.

    Evaluated at Vds = VDD/2 with Vgs = VDD, which is good enough for the
    RC-style timing estimates used in the behavioural model calibration.
    """
    half = vdd / 2.0
    if mosfet.params.polarity == "nmos":
        ids = abs(mosfet.drain_current(half, vdd, 0.0))
    else:
        ids = abs(mosfet.drain_current(vdd - half, 0.0, vdd))
    if ids <= 0.0:
        return math.inf
    return half / ids
