"""Spice-substitute circuit simulation substrate.

The original paper validates its low-power test scheme with transistor-level
Spice simulations of a 0.13 µm SRAM.  This subpackage provides the
replacement used throughout the repository:

* :mod:`repro.circuit.technology` — the 0.13 µm / 1.6 V / 3 ns operating
  point every other model is calibrated from;
* :mod:`repro.circuit.mosfet` — square-law MOSFET devices;
* :mod:`repro.circuit.elements` — resistors, switches, sources, capacitors;
* :mod:`repro.circuit.transient` — a fixed-step nodal transient solver with
  per-source energy accounting;
* :mod:`repro.circuit.waveform` — sampled waveforms and their analysis;
* :mod:`repro.circuit.gates` — a combinational gate network model with
  transistor counts, delays and switching energy (used for the modified
  pre-charge control logic of Section 4).
"""

from .technology import TechnologyParameters, PAPER_TECHNOLOGY, default_technology
from .waveform import Waveform, align_waveforms
from .mosfet import Mosfet, MosfetParameters, nmos, pmos, equivalent_on_resistance
from .elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    Element,
    PiecewiseLinearSource,
    Resistor,
    Switch,
    always_off,
    always_on,
    step_control,
)
from .transient import Circuit, CircuitError, SourceEnergy, TransientResult
from .gates import (
    AND2,
    BUFFER,
    EvaluationResult,
    GateInstance,
    GateKind,
    INVERTER,
    LogicError,
    LogicNetwork,
    NAND2,
    NOR2,
    OR2,
    TGATE_MUX2,
    XOR2,
)

__all__ = [
    "TechnologyParameters",
    "PAPER_TECHNOLOGY",
    "default_technology",
    "Waveform",
    "align_waveforms",
    "Mosfet",
    "MosfetParameters",
    "nmos",
    "pmos",
    "equivalent_on_resistance",
    "GROUND",
    "Capacitor",
    "CurrentSource",
    "Element",
    "PiecewiseLinearSource",
    "Resistor",
    "Switch",
    "always_off",
    "always_on",
    "step_control",
    "Circuit",
    "CircuitError",
    "SourceEnergy",
    "TransientResult",
    "GateKind",
    "GateInstance",
    "LogicNetwork",
    "LogicError",
    "EvaluationResult",
    "INVERTER",
    "BUFFER",
    "NAND2",
    "NOR2",
    "AND2",
    "OR2",
    "XOR2",
    "TGATE_MUX2",
]
