"""Passive and ideal circuit elements for the transient network solver.

Together with :mod:`repro.circuit.mosfet` these elements are enough to
describe the structures the paper simulates with Spice: bit lines (large
capacitors), cell storage nodes (small capacitors), pre-charge PMOS
devices, access transistors, and the ideal sources/switches used as test
stimuli.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

#: Name of the ground node; its voltage is pinned to 0 V by the solver.
GROUND = "gnd"


class Element:
    """Base class: anything that injects current into circuit nodes."""

    name: str

    def node_currents(self, voltages: Mapping[str, float], time: float) -> Dict[str, float]:
        """Return current *into* each connected node at ``time``."""
        raise NotImplementedError

    def nodes(self) -> tuple:
        """Names of the nodes this element connects to."""
        raise NotImplementedError


@dataclass
class Resistor(Element):
    """Linear resistor between two nodes."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError("resistance must be positive")

    def nodes(self) -> tuple:
        return (self.node_a, self.node_b)

    def node_currents(self, voltages: Mapping[str, float], time: float) -> Dict[str, float]:
        va = voltages[self.node_a]
        vb = voltages[self.node_b]
        i_ab = (va - vb) / self.resistance
        return {self.node_a: -i_ab, self.node_b: +i_ab}


@dataclass
class Switch(Element):
    """A voltage-controlled ideal switch (finite on/off resistances).

    ``control`` is a callable of time returning True when the switch is
    closed.  Used to model pre-charge enable gating and word-line gating in
    small test fixtures without instantiating the full gate netlist.
    """

    name: str
    node_a: str
    node_b: str
    control: Callable[[float], bool]
    on_resistance: float = 1.0e3
    off_resistance: float = 1.0e12

    def __post_init__(self) -> None:
        if self.on_resistance <= 0 or self.off_resistance <= 0:
            raise ValueError("switch resistances must be positive")

    def nodes(self) -> tuple:
        return (self.node_a, self.node_b)

    def node_currents(self, voltages: Mapping[str, float], time: float) -> Dict[str, float]:
        resistance = self.on_resistance if self.control(time) else self.off_resistance
        va = voltages[self.node_a]
        vb = voltages[self.node_b]
        i_ab = (va - vb) / resistance
        return {self.node_a: -i_ab, self.node_b: +i_ab}


@dataclass
class CurrentSource(Element):
    """Ideal current source pushing ``current(time)`` from ``node_neg`` to ``node_pos``."""

    name: str
    node_pos: str
    node_neg: str
    current: Callable[[float], float]

    def nodes(self) -> tuple:
        return (self.node_pos, self.node_neg)

    def node_currents(self, voltages: Mapping[str, float], time: float) -> Dict[str, float]:
        i = self.current(time)
        return {self.node_pos: +i, self.node_neg: -i}


@dataclass
class Capacitor:
    """Capacitor from ``node`` to ground (or between two nodes).

    Capacitors are handled specially by the solver (they define the node
    charge storage), so they are not :class:`Element` subclasses.
    """

    name: str
    node: str
    capacitance: float
    other: str = GROUND

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError("capacitance must be positive")


class PiecewiseLinearSource:
    """Ideal voltage source defined by ``(time, value)`` breakpoints.

    The solver pins the node voltage to :meth:`value_at` at every step, and
    records the charge it had to supply so that source energy can be
    reported.
    """

    def __init__(self, name: str, node: str, points: list[tuple[float, float]]):
        if not points:
            raise ValueError("a piecewise-linear source needs at least one point")
        times = [t for t, _ in points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("breakpoint times must be non-decreasing")
        self.name = name
        self.node = node
        self.points = [(float(t), float(v)) for t, v in points]

    @classmethod
    def constant(cls, name: str, node: str, value: float) -> "PiecewiseLinearSource":
        return cls(name, node, [(0.0, value)])

    @classmethod
    def pulse(cls, name: str, node: str, low: float, high: float,
              t_rise_start: float, t_fall_start: float,
              transition: float = 50e-12) -> "PiecewiseLinearSource":
        """A single pulse: low until ``t_rise_start``, high until ``t_fall_start``."""
        if t_fall_start < t_rise_start:
            raise ValueError("pulse must rise before it falls")
        return cls(name, node, [
            (0.0, low),
            (t_rise_start, low),
            (t_rise_start + transition, high),
            (t_fall_start, high),
            (t_fall_start + transition, low),
        ])

    @classmethod
    def clock(cls, name: str, node: str, period: float, cycles: int,
              low: float, high: float, duty: float = 0.5,
              transition: float = 50e-12) -> "PiecewiseLinearSource":
        """A clock with ``cycles`` periods, high for ``duty`` of each period."""
        if period <= 0 or cycles <= 0:
            raise ValueError("period and cycles must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must lie strictly between 0 and 1")
        pts: list[tuple[float, float]] = [(0.0, high)]
        for k in range(cycles):
            start = k * period
            fall = start + duty * period
            end = (k + 1) * period
            pts.append((fall, high))
            pts.append((fall + transition, low))
            pts.append((end, low))
            if k + 1 < cycles:
                pts.append((end + transition, high))
        return cls(name, node, pts)

    def value_at(self, time: float) -> float:
        pts = self.points
        if time <= pts[0][0]:
            return pts[0][1]
        if time >= pts[-1][0]:
            return pts[-1][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t0 <= time <= t1:
                if t1 == t0:
                    return v1
                frac = (time - t0) / (t1 - t0)
                return v0 + frac * (v1 - v0)
        return pts[-1][1]


def step_control(t_on: float, t_off: Optional[float] = None) -> Callable[[float], bool]:
    """Return a switch-control callable: closed in ``[t_on, t_off)``."""
    def control(time: float) -> bool:
        if time < t_on:
            return False
        if t_off is not None and time >= t_off:
            return False
        return True
    return control


def always_on(_: float) -> bool:
    """Switch control that is always closed."""
    return True


def always_off(_: float) -> bool:
    """Switch control that is always open."""
    return False
