"""Gate-level logic substrate for the modified pre-charge control circuitry.

Section 4 of the paper implements the low-power test mode with one extra
element per column: a two-transmission-gate multiplexer plus one NAND gate
(ten transistors in total).  This module provides a small combinational
logic network model — gates with transistor counts, output-load
capacitances, propagation delays and per-toggle switching energy — used to

* evaluate the per-column pre-charge enable signals cycle by cycle
  (Figure 4 and Figure 8 behaviour);
* quantify the overhead of the added logic (area in transistors, extra
  delay on the Prj path, switching energy per column change), supporting
  the paper's "negligible impact" claims.

The network is purely combinational and is evaluated by levelisation
(topological order); sequential behaviour, where needed, lives in the
behavioural SRAM model, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from .technology import TechnologyParameters, default_technology


class LogicError(Exception):
    """Raised for malformed logic networks (unknown nets, cycles, ...)."""


@dataclass(frozen=True)
class GateKind:
    """Static description of a gate type."""

    name: str
    inputs: int
    transistors: int
    #: intrinsic delay in seconds (representative 0.13 µm FO1 figures).
    delay: float
    #: output capacitance switched on a toggle, in farads.
    output_cap: float
    #: boolean function of the input tuple.
    function: Callable[[Tuple[bool, ...]], bool]


def _check_arity(values: Tuple[bool, ...], expected: int, name: str) -> None:
    if len(values) != expected:
        raise LogicError(f"{name} expects {expected} inputs, got {len(values)}")


INVERTER = GateKind(
    name="inv", inputs=1, transistors=2, delay=22e-12, output_cap=1.2e-15,
    function=lambda v: not v[0],
)
BUFFER = GateKind(
    name="buf", inputs=1, transistors=4, delay=40e-12, output_cap=1.4e-15,
    function=lambda v: v[0],
)
NAND2 = GateKind(
    name="nand2", inputs=2, transistors=4, delay=30e-12, output_cap=1.6e-15,
    function=lambda v: not (v[0] and v[1]),
)
NOR2 = GateKind(
    name="nor2", inputs=2, transistors=4, delay=34e-12, output_cap=1.6e-15,
    function=lambda v: not (v[0] or v[1]),
)
AND2 = GateKind(
    name="and2", inputs=2, transistors=6, delay=52e-12, output_cap=1.8e-15,
    function=lambda v: v[0] and v[1],
)
OR2 = GateKind(
    name="or2", inputs=2, transistors=6, delay=56e-12, output_cap=1.8e-15,
    function=lambda v: v[0] or v[1],
)
XOR2 = GateKind(
    name="xor2", inputs=2, transistors=8, delay=70e-12, output_cap=2.0e-15,
    function=lambda v: v[0] != v[1],
)
#: Transmission-gate 2:1 multiplexer with local select inverter — the exact
#: structure of Figure 8 (two transmission gates + one inverter = 6
#: transistors).  Inputs: (select, when_select_0, when_select_1).
TGATE_MUX2 = GateKind(
    name="tgmux2", inputs=3, transistors=6, delay=28e-12, output_cap=1.8e-15,
    function=lambda v: v[2] if v[0] else v[1],
)


@dataclass
class GateInstance:
    """One gate placed in a :class:`LogicNetwork`."""

    name: str
    kind: GateKind
    inputs: Tuple[str, ...]
    output: str

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        try:
            input_values = tuple(bool(values[n]) for n in self.inputs)
        except KeyError as exc:
            raise LogicError(f"gate {self.name!r} reads undriven net {exc.args[0]!r}") from exc
        _check_arity(input_values, self.kind.inputs, self.kind.name)
        return bool(self.kind.function(input_values))


@dataclass
class EvaluationResult:
    """Result of one combinational evaluation of a :class:`LogicNetwork`."""

    values: Dict[str, bool]
    toggled_nets: List[str]
    switching_energy: float
    critical_path_delay: float

    def value(self, net: str) -> bool:
        try:
            return self.values[net]
        except KeyError as exc:
            raise LogicError(f"unknown net {net!r}") from exc


class LogicNetwork:
    """A named combinational network with energy and delay book-keeping."""

    def __init__(self, name: str, tech: TechnologyParameters | None = None) -> None:
        self.name = name
        self.tech = tech or default_technology()
        self._gates: List[GateInstance] = []
        self._primary_inputs: List[str] = []
        self._net_loads: Dict[str, float] = {}
        self._previous_values: Dict[str, bool] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        if net in self._primary_inputs:
            raise LogicError(f"primary input {net!r} declared twice")
        self._primary_inputs.append(net)
        return net

    def add_gate(self, kind: GateKind, name: str, inputs: Sequence[str], output: str) -> GateInstance:
        if len(inputs) != kind.inputs:
            raise LogicError(
                f"gate {name!r} of kind {kind.name!r} needs {kind.inputs} inputs, got {len(inputs)}"
            )
        if any(g.output == output for g in self._gates):
            raise LogicError(f"net {output!r} already driven by another gate")
        if output in self._primary_inputs:
            raise LogicError(f"net {output!r} is a primary input and cannot be driven")
        gate = GateInstance(name=name, kind=kind, inputs=tuple(inputs), output=output)
        self._gates.append(gate)
        return gate

    def add_net_load(self, net: str, capacitance: float) -> None:
        """Attach extra load (e.g. the pre-charge PMOS gates) to a net."""
        if capacitance < 0:
            raise LogicError("net load capacitance must be non-negative")
        self._net_loads[net] = self._net_loads.get(net, 0.0) + capacitance

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def gates(self) -> List[GateInstance]:
        return list(self._gates)

    @property
    def primary_inputs(self) -> List[str]:
        return list(self._primary_inputs)

    def transistor_count(self) -> int:
        """Total transistor count of all gates in the network."""
        return sum(g.kind.transistors for g in self._gates)

    def nets(self) -> List[str]:
        names = set(self._primary_inputs)
        for gate in self._gates:
            names.add(gate.output)
            names.update(gate.inputs)
        return sorted(names)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _levelize(self) -> List[GateInstance]:
        """Topologically order the gates; raise on combinational loops."""
        driven_by: Dict[str, GateInstance] = {g.output: g for g in self._gates}
        levels: Dict[str, int] = {n: 0 for n in self._primary_inputs}
        ordered: List[GateInstance] = []
        remaining = list(self._gates)
        progress = True
        while remaining and progress:
            progress = False
            still: List[GateInstance] = []
            for gate in remaining:
                if all(net in levels for net in gate.inputs):
                    levels[gate.output] = 1 + max(levels[n] for n in gate.inputs)
                    ordered.append(gate)
                    progress = True
                else:
                    still.append(gate)
            remaining = still
        if remaining:
            undriven = sorted(
                {net for g in remaining for net in g.inputs
                 if net not in levels and net not in driven_by}
            )
            if undriven:
                raise LogicError(f"nets {undriven} are neither inputs nor gate outputs")
            raise LogicError(
                "combinational loop detected involving gates "
                + ", ".join(sorted(g.name for g in remaining))
            )
        return ordered

    def evaluate(self, inputs: Mapping[str, bool]) -> EvaluationResult:
        """Evaluate the network for one input vector.

        Switching energy is computed against the previous evaluation's net
        values (C·VDD² per toggled net, including explicit net loads); the
        first evaluation reports zero switching energy.
        """
        missing = [n for n in self._primary_inputs if n not in inputs]
        if missing:
            raise LogicError(f"missing values for primary inputs: {missing}")
        values: Dict[str, bool] = {n: bool(inputs[n]) for n in self._primary_inputs}
        arrival: Dict[str, float] = {n: 0.0 for n in self._primary_inputs}
        for gate in self._levelize():
            values[gate.output] = gate.evaluate(values)
            arrival[gate.output] = gate.kind.delay + max(arrival[n] for n in gate.inputs)

        toggled: List[str] = []
        energy = 0.0
        if self._previous_values is not None:
            for net, value in values.items():
                if self._previous_values.get(net) != value:
                    toggled.append(net)
                    cap = self._net_loads.get(net, 0.0)
                    cap += self._output_cap_of(net)
                    energy += cap * self.tech.vdd * self.tech.vdd
        self._previous_values = dict(values)
        critical = max(arrival.values()) if arrival else 0.0
        return EvaluationResult(
            values=values,
            toggled_nets=sorted(toggled),
            switching_energy=energy,
            critical_path_delay=critical,
        )

    def _output_cap_of(self, net: str) -> float:
        for gate in self._gates:
            if gate.output == net:
                return gate.kind.output_cap
        return 0.0

    def reset_state(self) -> None:
        """Forget the previous input vector (next evaluation costs no energy)."""
        self._previous_values = None

    def path_delay(self, output: str) -> float:
        """Worst-case arrival time of ``output`` assuming inputs at t=0."""
        arrival: Dict[str, float] = {n: 0.0 for n in self._primary_inputs}
        for gate in self._levelize():
            arrival[gate.output] = gate.kind.delay + max(arrival[n] for n in gate.inputs)
        if output not in arrival:
            raise LogicError(f"unknown output net {output!r}")
        return arrival[output]
