"""Module discovery and one-shot AST parsing for the lint pass.

A :class:`Project` is the unit every checker receives: the set of scanned
modules, each parsed exactly once, with their *dotted module names*
resolved the way the import system would resolve them (ascending the
directory tree while ``__init__.py`` files are present).  That naming is
what lets checkers scope rules by package segment — ``repro.serve.cache``
is in scope for the durability rule wherever the tree is checked out —
and what the import-graph pass keys its edges on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class LintUsageError(Exception):
    """Raised on unusable input (missing paths, unparseable sources).

    The CLI maps this to exit code 2 — the shared ``error:``-exit-2
    convention of the repo's CLIs (see ``docs/static_analysis.md``).
    """


#: Directory names never descended into.  ``lint_fixtures`` holds the
#: committed violation corpus of the test-suite — deliberately broken
#: modules that must not gate CI runs over ``tests/``.
DEFAULT_EXCLUDED_DIRS = ("__pycache__", "lint_fixtures")


@dataclass(frozen=True)
class LintModule:
    """One parsed source file.

    ``name`` is the dotted module name (``repro.engine.dispatch``); files
    outside any package use their stem (``conftest``).  ``display_path``
    is the stable path findings and baselines carry.
    """

    name: str
    path: Path
    display_path: str
    source: str
    tree: ast.Module

    @property
    def segments(self) -> Tuple[str, ...]:
        """The dotted-name parts (``("repro", "engine", "dispatch")``)."""
        return tuple(self.name.split("."))

    @property
    def is_package(self) -> bool:
        """True for ``__init__.py`` modules."""
        return self.path.name == "__init__.py"

    def in_scope(self, package_segments: Iterable[str]) -> bool:
        """True when any dotted-name part matches a scoping segment."""
        wanted = set(package_segments)
        return any(segment in wanted for segment in self.segments)


@dataclass
class Project:
    """Every scanned module, indexed for the checkers."""

    modules: List[LintModule] = field(default_factory=list)
    by_name: Dict[str, LintModule] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.modules)

    def root_packages(self) -> List[str]:
        """Top-level package names among the scanned modules.

        A root package is a scanned ``__init__.py`` whose dotted name has
        no parent in the scan set — the entry points the import-graph
        rule walks (``repro`` when ``src/repro`` is scanned).
        """
        return sorted(module.name for module in self.modules
                      if module.is_package and "." not in module.name)


def module_name_for(path: Path) -> str:
    """The dotted module name the import system would give ``path``.

    Ascends while the containing directory is a package (``__init__.py``
    present), exactly like package resolution does; a file outside any
    package is a top-level module named after its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:  # filesystem root
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


def _display_path(path: Path) -> str:
    """The stable path findings carry: cwd-relative when possible."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _iter_source_files(root: Path,
                       exclude: Sequence[str]) -> Iterable[Path]:
    """Every ``.py`` file under ``root``, pruning excluded directories."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if any(part in DEFAULT_EXCLUDED_DIRS for part in relative.parts):
            continue
        if any(fnmatch(relative.as_posix(), pattern) or
               fnmatch(path.as_posix(), pattern) for pattern in exclude):
            continue
        yield path


def parse_module(path: Path) -> LintModule:
    """Parse one source file into a :class:`LintModule`.

    A file that does not parse makes the whole run unusable (exit 2): a
    tree that is not valid Python cannot be meaningfully checked, and
    silently skipping it would report "clean" over unchecked code.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintUsageError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintUsageError(
            f"{path}:{exc.lineno}: not valid Python: {exc.msg}") from exc
    return LintModule(name=module_name_for(path), path=path.resolve(),
                      display_path=_display_path(path), source=source,
                      tree=tree)


def load_project(paths: Sequence[Path],
                 exclude: Sequence[str] = ()) -> Project:
    """Discover, parse and index every module under ``paths``.

    ``paths`` may mix files and directories; duplicates (the same file
    reached through two arguments) are scanned once.  An empty scan set
    is a usage error — "checked nothing" must never read as "clean".
    """
    if not paths:
        raise LintUsageError("no paths to lint")
    seen: Dict[Path, None] = {}
    project = Project()
    for root in paths:
        root = Path(root)
        if not root.exists():
            raise LintUsageError(f"path does not exist: {root}")
        for path in _iter_source_files(root, exclude):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen[resolved] = None
            module = parse_module(resolved)
            project.modules.append(module)
            project.by_name[module.name] = module
    if not project.modules:
        raise LintUsageError(
            f"no Python sources found under {[str(p) for p in paths]}")
    project.modules.sort(key=lambda module: module.display_path)
    return project
