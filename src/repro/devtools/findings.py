"""Finding records, baselines and report rendering for the lint pass.

A :class:`Finding` is one rule violation pinned to a file and line.  The
:class:`Baseline` is the *explicit, empty-by-default* suppression file:
the committed ``lint-baseline.json`` holds zero entries — the gate policy
is "fix what the checkers find", and the baseline exists only so that a
future rule landing against a large tree can ratchet instead of blocking
(see ``docs/static_analysis.md`` for the policy).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

#: ``format`` tag of the JSON report the CLI emits with ``--format json``.
REPORT_FORMAT = "repro-lint-report"
#: ``format`` tag of a baseline file.
BASELINE_FORMAT = "repro-lint-baseline"
#: Schema version this module writes (reports and baselines).
LINT_VERSION = 1


class BaselineError(Exception):
    """Raised on malformed or foreign baseline files."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location.

    Ordering is by ``(path, line, rule, message)`` so a report is stable
    across runs and readable file by file.
    """

    path: str
    line: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: ``(rule, path, message)``.

        Line numbers drift with every edit, so they are deliberately not
        part of the identity a baseline entry matches against.
        """
        return (self.rule, self.path, self.message)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (one JSON report/baseline entry)."""
        return {"rule": self.rule, "path": self.path,
                "line": self.line, "message": self.message}

    def render(self) -> str:
        """The canonical one-line human form (``path:line: RULE message``)."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Baseline:
    """Known-and-accepted findings, loaded from an explicit JSON file.

    Matching is by :meth:`Finding.key`; a finding whose key appears here
    is *suppressed* (reported separately, never gating).  The empty
    baseline — the committed default — suppresses nothing.
    """

    keys: Tuple[Tuple[str, str, str], ...] = ()

    @classmethod
    def empty(cls) -> "Baseline":
        """The zero-entry baseline (what an absent ``--baseline`` means)."""
        return cls()

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Load and validate a baseline file; foreign content raises."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) \
                or payload.get("format") != BASELINE_FORMAT:
            raise BaselineError(
                f"baseline {path} is not a {BASELINE_FORMAT} document")
        if payload.get("version") != LINT_VERSION:
            raise BaselineError(
                f"baseline {path} has version {payload.get('version')!r}; "
                f"this reader understands version {LINT_VERSION}")
        entries = payload.get("findings")
        if not isinstance(entries, list):
            raise BaselineError(
                f"baseline {path} has no 'findings' list")
        keys: List[Tuple[str, str, str]] = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise BaselineError(
                    f"baseline {path} entry {index} is not an object")
            try:
                keys.append((str(entry["rule"]), str(entry["path"]),
                             str(entry["message"])))
            except KeyError as exc:
                raise BaselineError(
                    f"baseline {path} entry {index} is missing {exc}"
                ) from exc
        return cls(tuple(keys))

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into ``(gating, suppressed)``."""
        known = set(self.keys)
        gating = [f for f in findings if f.key() not in known]
        suppressed = [f for f in findings if f.key() in known]
        return gating, suppressed

    @staticmethod
    def document(findings: Sequence[Finding]) -> Dict[str, object]:
        """The baseline JSON document that would suppress ``findings``."""
        return {
            "format": BASELINE_FORMAT,
            "version": LINT_VERSION,
            "findings": [{"rule": f.rule, "path": f.path,
                          "message": f.message} for f in sorted(findings)],
        }


def render_human(findings: Sequence[Finding],
                 suppressed: Sequence[Finding],
                 checked_files: int) -> str:
    """The plain-text report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in sorted(findings)]
    summary = (f"{len(findings)} finding(s) in {checked_files} file(s)"
               if findings else f"clean: {checked_files} file(s) checked")
    if suppressed:
        summary += f" ({len(suppressed)} baseline-suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                suppressed: Sequence[Finding],
                checked_files: int,
                rules: Sequence[str]) -> str:
    """The machine-readable report (the CI artifact)."""
    payload: Dict[str, object] = {
        "format": REPORT_FORMAT,
        "version": LINT_VERSION,
        "checked_files": checked_files,
        "rules": list(rules),
        "findings": [finding.as_dict() for finding in sorted(findings)],
        "suppressed": [finding.as_dict() for finding in sorted(suppressed)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
