"""Static-analysis devtools: the repo's invariants as machine-checked rules.

PR 8's serving layer flushed out three shared-state bugs that had silently
survived seven PRs — process-global run provenance, a torn-header crash
and an entry-less-journal refusal — all violations of invariants this
repository had only enforced by convention and after-the-fact tests.
:mod:`repro.devtools.lint` turns those hard-won rules into an AST-based
checker pass (stdlib :mod:`ast` only, honouring the no-hard-deps rule)
gated in CI::

    python -m repro.devtools.lint src/repro benchmarks tests

Architecture (see ``docs/static_analysis.md`` for the rule catalog):

* :mod:`repro.devtools.findings` — :class:`Finding` records (file, line,
  rule id, message), the explicit empty-by-default :class:`Baseline`, and
  the human/JSON report renderers;
* :mod:`repro.devtools.project` — module discovery and one-shot AST
  parsing: a :class:`Project` holds every scanned :class:`LintModule`
  (dotted name, path, source, tree) plus the scope helpers checkers share;
* :mod:`repro.devtools.importgraph` — the whole-package *eager* import
  graph, resolved statically through the repo's PEP 562 ``__getattr__``
  lazy-export seams (what really executes on ``import repro``);
* :mod:`repro.devtools.framework` — the :class:`Checker` protocol and the
  :class:`LintRunner` driving per-file walks and whole-project passes;
* :mod:`repro.devtools.checkers` — the shipped rules, ``RPR001``
  (lazy-import purity) through ``RPR006`` (export-schema consistency);
* :mod:`repro.devtools.lint` — the CLI (``python -m repro.devtools.lint``;
  exit 0 clean / 1 findings / 2 usage or crash).

The framework is the seam later PRs extend: a new invariant (for example
a shard-lease checker for the distributed orchestrator) is one new
:class:`Checker` registered in :func:`repro.devtools.checkers.all_checkers`.
"""

from .findings import Baseline, BaselineError, Finding
from .framework import Checker, LintRunner
from .project import LintModule, LintUsageError, Project, load_project

__all__ = [
    "Baseline",
    "BaselineError",
    "Checker",
    "Finding",
    "LintModule",
    "LintRunner",
    "LintUsageError",
    "Project",
    "load_project",
]
