"""RPR003 — atomic-write discipline in the durability-bearing packages.

The journal/cache/trace layers promise crash-durable files: a reader must
never observe a half-written artifact.  PR 8's torn-header incident is
the canonical failure.  The discipline, enforced here for every module
under ``sweep/`` and ``serve/``:

* a **truncating** write (``open(..., "w"/"x")``, ``Path.write_text``,
  ``Path.write_bytes``) must be the tempfile pattern — ``mkstemp`` +
  ``fsync`` + ``os.replace`` in the *same function* — or be routed
  through the :mod:`repro.durable` helpers (which are exactly that
  pattern, and live outside this rule's scope on purpose);
* an **appending** or read-write open (``"a"``, ``"+"``) must ``fsync``
  in the same function or somewhere in the same class (journal-style
  classes open in one method and flush in another);
* module-level writes are always findings — import time is no place for
  durable I/O.

Only statically-visible string modes are judged; a dynamic mode is
outside what syntax can prove and stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..findings import Finding
from ..project import LintModule, Project
from .common import call_name, enclosing_class, function_calls

#: Package segments this rule applies to (the durability-bearing layers).
SCOPE_SEGMENTS = ("distrib", "serve", "sweep")

_TRUNCATE = "truncate"
_APPEND = "append"


def _static_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an open-style call, if visible."""
    candidates: List[ast.expr] = []
    name = call_name(node)
    if name in {"open", "fdopen"}:
        # ``open(path, mode)`` / ``Path.open(mode)`` / ``os.fdopen(fd, mode)``
        # all take the mode as the second positional argument — except the
        # bound ``Path.open``, where it is the first.
        if isinstance(node.func, ast.Attribute) and name == "open":
            candidates.extend(node.args[:1])
        else:
            candidates.extend(node.args[1:2])
    for keyword in node.keywords:
        if keyword.arg == "mode":
            candidates = [keyword.value]
    for candidate in candidates:
        if isinstance(candidate, ast.Constant) \
                and isinstance(candidate.value, str):
            return candidate.value
    return None


def _write_kind(node: ast.Call) -> Optional[Tuple[str, str]]:
    """``(kind, description)`` when the call is a write-capable open."""
    name = call_name(node)
    if name in {"write_text", "write_bytes"} \
            and isinstance(node.func, ast.Attribute):
        return _TRUNCATE, f".{name}(...)"
    if name in {"open", "fdopen"}:
        mode = _static_mode(node)
        if mode is None:
            return None
        if any(flag in mode for flag in ("w", "x")):
            return _TRUNCATE, f"mode {mode!r} open"
        if "a" in mode or "+" in mode:
            return _APPEND, f"mode {mode!r} open"
    return None


def _has_atomic_pattern(calls: set) -> bool:
    return "mkstemp" in calls and "fsync" in calls and "replace" in calls


class AtomicWriteChecker:
    """Flag write-opens that bypass the tempfile/fsync durability pattern."""

    rule_id = "RPR003"
    title = ("atomic-write discipline: truncating writes need "
             "mkstemp+fsync+replace, appends need fsync")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not module.in_scope(SCOPE_SEGMENTS):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: LintModule) -> Iterator[Finding]:
        for node, parents in _walk_with_scopes(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _write_kind(node)
            if kind is None:
                continue
            style, description = kind
            function = _enclosing_function(parents)
            if function is None:
                yield Finding(
                    path=module.display_path, line=node.lineno,
                    rule=self.rule_id,
                    message=(f"module-level {description}: durable writes "
                             f"do not belong at import time"))
                continue
            calls = function_calls(function)
            if style == _TRUNCATE:
                if _has_atomic_pattern(calls) or _routed(calls):
                    continue
                yield Finding(
                    path=module.display_path, line=node.lineno,
                    rule=self.rule_id,
                    message=(f"non-atomic {description} in "
                             f"'{function.name}': truncating writes must "
                             f"use mkstemp+fsync+os.replace (see "
                             f"repro.durable)"))
            else:
                if "fsync" in calls or _routed(calls):
                    continue
                owner = enclosing_class(tuple(parents))
                if owner is not None and "fsync" in function_calls(owner):
                    continue
                yield Finding(
                    path=module.display_path, line=node.lineno,
                    rule=self.rule_id,
                    message=(f"unfsynced {description} in "
                             f"'{function.name}': appends must fsync "
                             f"before the write is claimed durable (see "
                             f"repro.durable)"))


def _routed(calls: set) -> bool:
    """True when the function delegates to the shared durable helpers."""
    return any("atomic_write" in name or "fsync_append" in name
               for name in calls)


def _enclosing_function(parents: List[ast.AST]
                        ) -> Optional[ast.FunctionDef]:
    for node in reversed(parents):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _walk_with_scopes(tree: ast.Module
                      ) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Every node with its enclosing class/function chain."""

    def walk(node: ast.AST,
             parents: List[ast.AST]) -> Iterator[Tuple[ast.AST,
                                                       List[ast.AST]]]:
        for child in ast.iter_child_nodes(node):
            yield child, parents
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                yield from walk(child, parents + [child])
            else:
                yield from walk(child, parents)

    yield from walk(tree, [])
