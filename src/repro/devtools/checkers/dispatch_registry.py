"""RPR004 — dispatch-registry consistency.

The backend/kernel story has one rule: requests flow to the
:class:`~repro.engine.dispatch.BackendDispatcher`, and results report
what *actually* ran, not what was asked for.  Three statically-checkable
facets of that contract:

* a function accepting a ``backend=`` or ``kernel=`` parameter must
  actually *use* it — an accepted-but-ignored selection parameter is a
  silent lie to the caller;
* a class that constructs a ``BackendDispatcher`` is a facade and must
  expose ``last_backend_used`` (the property routing to the dispatcher's
  thread-local provenance — assigning a bare ``self.last_backend_used``
  without that property was the PR 8 shape);
* a round-tripping record dataclass (``as_dict`` + ``from_dict``) with a
  requested-``backend``/``kernel`` field must also carry the
  ``backend_used``/``kernel_used`` provenance twin.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..findings import Finding
from ..project import LintModule, Project
from .common import decorator_names, enclosing_class, iter_functions

#: Package segments this rule applies to (everything touching dispatch).
SCOPE_SEGMENTS = ("bist", "core", "engine", "faults", "serve", "sweep")

#: Selection parameters that must be threaded, and their provenance twins.
SELECTION_PARAMS = ("backend", "kernel")
PROVENANCE_TWINS = {"backend": "backend_used", "kernel": "kernel_used"}


def _parameter_names(function: ast.AST) -> List[str]:
    args = function.args
    names = [arg.arg for arg in args.posonlyargs + args.args
             + args.kwonlyargs]
    return names


def _loaded_names(function: ast.AST) -> Set[str]:
    loaded: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loaded.add(node.id)
    return loaded


def _class_properties(cls: ast.ClassDef) -> Set[str]:
    """Names defined as ``@property`` (or ``@x.setter``) in the class."""
    names: Set[str] = set()
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = decorator_names(node)
            if "property" in decorators or "setter" in decorators:
                names.add(node.name)
    return names


def _constructs_dispatcher(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else None
            if name == "BackendDispatcher":
                return True
    return False


def _dataclass_fields(cls: ast.ClassDef) -> List[str]:
    fields: List[str] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            annotation = ast.dump(node.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append(node.target.id)
    return fields


def _method_names(cls: ast.ClassDef) -> Set[str]:
    return {node.name for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


class DispatchRegistryChecker:
    """Flag facades and records that break the dispatch provenance contract."""

    rule_id = "RPR004"
    title = ("dispatch-registry consistency: selection params must be "
             "threaded and results must carry *_used provenance")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not module.in_scope(SCOPE_SEGMENTS):
                continue
            yield from self._check_parameters(module)
            yield from self._check_classes(module)

    def _check_parameters(self, module: LintModule) -> Iterator[Finding]:
        for function, parents in iter_functions(module.tree):
            parameters = _parameter_names(function)
            wanted = [name for name in SELECTION_PARAMS
                      if name in parameters]
            if not wanted:
                continue
            loaded = _loaded_names(function)
            for name in wanted:
                if name in loaded:
                    continue
                owner = enclosing_class(parents)
                where = f"{owner.name}.{function.name}" if owner \
                    else function.name
                yield Finding(
                    path=module.display_path, line=function.lineno,
                    rule=self.rule_id,
                    message=(f"'{where}' accepts a '{name}' parameter but "
                             f"never uses it; selection must thread to the "
                             f"dispatcher"))

    def _check_classes(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            properties = _class_properties(node)
            if _constructs_dispatcher(node) \
                    and "last_backend_used" not in properties:
                yield Finding(
                    path=module.display_path, line=node.lineno,
                    rule=self.rule_id,
                    message=(f"class '{node.name}' constructs a "
                             f"BackendDispatcher but does not expose a "
                             f"'last_backend_used' property routing to its "
                             f"thread-local provenance"))
            if "last_backend_used" not in properties:
                yield from self._check_bare_assignment(node, module)
            yield from self._check_record_fields(node, module)

    def _check_bare_assignment(self, cls: ast.ClassDef,
                               module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr == "last_backend_used" \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    yield Finding(
                        path=module.display_path, line=node.lineno,
                        rule=self.rule_id,
                        message=(f"class '{cls.name}' assigns bare "
                                 f"'self.last_backend_used' without a "
                                 f"property+setter routing to dispatcher "
                                 f"provenance (process-global in PR 8)"))

    def _check_record_fields(self, cls: ast.ClassDef,
                             module: LintModule) -> Iterator[Finding]:
        if "dataclass" not in decorator_names(cls):
            return
        methods = _method_names(cls)
        if "as_dict" not in methods or "from_dict" not in methods:
            return
        fields = _dataclass_fields(cls)
        for requested, used in PROVENANCE_TWINS.items():
            if requested in fields and used not in fields:
                yield Finding(
                    path=module.display_path, line=cls.lineno,
                    rule=self.rule_id,
                    message=(f"record '{cls.name}' has a '{requested}' "
                             f"field but no '{used}' provenance twin; "
                             f"results must report requested vs used"))
