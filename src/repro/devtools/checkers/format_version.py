"""RPR007 — format-version discipline for on-disk document tags.

Every durable artifact family in this repo names itself with a pair of
module constants: a ``*_FORMAT`` string tag (``"repro-sweep-journal"``,
``"repro-serve-trace"``, ``"repro-distrib-ledger"``, ...) and a
``*_VERSION`` schema number, and every loader validates both before
trusting a document.  The failure mode this rule exists for is silent
schema drift: a format whose version constant was never minted (so a
breaking layout change cannot be signalled at all), or a loader that
checks the format tag but not the version — which resumes, merges or
serves documents written by an incompatible writer without a peep.

Two checks per module:

* **definition twin** — a module-level ``X_FORMAT = "..."`` constant
  needs a version constant: the exact twin ``X_VERSION``, or the
  module's single shared ``*_VERSION`` (families like the journal whose
  entry and header formats share one schema version), or a ``*_VERSION``
  whose stem prefixes the format's stem (``JOURNAL_VERSION`` covers
  ``JOURNAL_HEADER_FORMAT``);
* **loader discipline** — any function that compares a ``*_FORMAT``
  constant (the signature of a document loader validating its tag) must
  also compare a ``*_VERSION`` constant; tag-only validation is exactly
  the drift hole.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Union

from ..findings import Finding
from ..project import LintModule, Project

FORMAT_SUFFIX = "_FORMAT"
VERSION_SUFFIX = "_VERSION"


def _module_constants(tree: ast.Module, suffix: str
                      ) -> Dict[str, int]:
    """Module-level ``*<suffix>`` assignment names -> first line."""
    names: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) \
                    and target.id.endswith(suffix) \
                    and not target.id.startswith("_"):
                names.setdefault(target.id, node.lineno)
    return names


def _stem(name: str, suffix: str) -> str:
    return name[:-len(suffix)]


def _has_version_twin(format_name: str, versions: Set[str]) -> bool:
    if not versions:
        return False
    format_stem = _stem(format_name, FORMAT_SUFFIX)
    if f"{format_stem}{VERSION_SUFFIX}" in versions:
        return True
    if len(versions) == 1:
        # One shared schema version for every format the module defines
        # (the journal's entry+header pair, the lint report+baseline).
        return True
    return any(format_stem.startswith(_stem(version, VERSION_SUFFIX))
               for version in versions)


def _compared_names(node: ast.AST, suffix: str) -> Iterator[ast.Name]:
    """Every ``Name`` ending in ``suffix`` used inside a comparison."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Compare):
            continue
        for operand in [child.left, *child.comparators]:
            for name in ast.walk(operand):
                if isinstance(name, ast.Name) \
                        and name.id.endswith(suffix):
                    yield name


class FormatVersionChecker:
    """Flag version-less ``*_FORMAT`` tags and version-blind loaders."""

    rule_id = "RPR007"
    title = ("format-version discipline: every *_FORMAT tag needs a "
             "*_VERSION constant, and loaders must validate both")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_definitions(module)
            yield from self._check_loaders(module)

    # ------------------------------------------------------------------
    def _check_definitions(self, module: LintModule) -> Iterator[Finding]:
        formats = _module_constants(module.tree, FORMAT_SUFFIX)
        if not formats:
            return
        versions = set(_module_constants(module.tree, VERSION_SUFFIX))
        for name, line in sorted(formats.items(), key=lambda kv: kv[1]):
            if _has_version_twin(name, versions):
                continue
            stem = _stem(name, FORMAT_SUFFIX)
            yield Finding(
                path=module.display_path, line=line, rule=self.rule_id,
                message=(f"format tag '{name}' has no version constant; "
                         f"define '{stem}{VERSION_SUFFIX}' (and validate "
                         f"it in the loader) so a breaking schema change "
                         f"can be signalled instead of silently "
                         f"mis-parsed"))

    def _check_loaders(self, module: LintModule) -> Iterator[Finding]:
        for function in _all_functions(module.tree):
            format_use = next(
                _compared_names(function, FORMAT_SUFFIX), None)
            if format_use is None:
                continue
            version_use = next(
                _compared_names(function, VERSION_SUFFIX), None)
            if version_use is not None:
                continue
            yield Finding(
                path=module.display_path, line=format_use.lineno,
                rule=self.rule_id,
                message=(f"'{function.name}' validates the format tag "
                         f"('{format_use.id}') but never compares a "
                         f"*{VERSION_SUFFIX} constant; a version-blind "
                         f"loader silently accepts documents written by "
                         f"an incompatible schema"))


def _all_functions(tree: ast.Module
                   ) -> Iterator[Union[ast.FunctionDef,
                                       ast.AsyncFunctionDef]]:
    """Every (possibly nested/async) function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
