"""RPR001 — lazy-import purity.

``import repro`` must stay cheap and optional-dependency-free: the heavy
numerics stacks (numpy, numba, cupy) load behind the PEP 562
``__getattr__`` seams and the engine dispatcher, never at package import
time.  The dynamic test (``tests/test_lazy_imports.py``) proves it for
one interpreter run; this rule proves it for the whole *static* eager
import graph, including edges that only materialise through lazy-export
maps (``from repro.engine import KERNEL_CHOICES`` eagerly loads
``repro.engine.dispatch``).
"""

from __future__ import annotations

from typing import Iterator, List

from ..findings import Finding
from ..importgraph import ImportGraph
from ..project import Project

#: Top-level modules the eager graph of a scanned package must not reach.
FORBIDDEN_ROOTS = ("cupy", "numba", "numpy")


class LazyImportChecker:
    """Prove no scanned root package eagerly reaches a forbidden module."""

    rule_id = "RPR001"
    title = ("lazy-import purity: package import graphs must not eagerly "
             "reach numpy/numba/cupy")

    def check(self, project: Project) -> Iterator[Finding]:
        graph = ImportGraph(project)
        for root in project.root_packages():
            parents = graph.reachable_from(root)
            for target in sorted(parents):
                if target not in FORBIDDEN_ROOTS:
                    continue
                importer, edge = parents[target]
                module = project.by_name.get(edge.importer)
                if module is None:  # pragma: no cover - importer is scanned
                    continue
                chain: List[str] = graph.chain_to(parents, target, root)
                yield Finding(
                    path=module.display_path,
                    line=edge.line,
                    rule=self.rule_id,
                    message=(
                        f"'import {root}' eagerly reaches '{target}' "
                        f"(chain: {' -> '.join(chain)}); heavy numerics "
                        f"must stay behind the lazy-import seams"),
                )
