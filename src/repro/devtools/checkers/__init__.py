"""The shipped rules — one module per invariant class, registered here.

Adding a rule is the extension seam this package exists for: write a
module with a class satisfying :class:`repro.devtools.framework.Checker`
(stable ``rule_id``, one-line ``title``, a ``check(project)`` pass) and
list it in :func:`all_checkers`; the CLI, baseline machinery, report
formats and CI gate pick it up unchanged.
"""

from __future__ import annotations

from typing import List

from ..framework import Checker
from .atomic_write import AtomicWriteChecker
from .dispatch_registry import DispatchRegistryChecker
from .export_schema import ExportSchemaChecker
from .format_version import FormatVersionChecker
from .global_state import GlobalStateChecker
from .lazy_import import LazyImportChecker
from .warn_once import WarnOnceChecker

__all__ = [
    "AtomicWriteChecker",
    "DispatchRegistryChecker",
    "ExportSchemaChecker",
    "FormatVersionChecker",
    "GlobalStateChecker",
    "LazyImportChecker",
    "WarnOnceChecker",
    "all_checkers",
]


def all_checkers() -> List[Checker]:
    """Every shipped checker, in rule-id order."""
    return [
        LazyImportChecker(),
        GlobalStateChecker(),
        AtomicWriteChecker(),
        DispatchRegistryChecker(),
        WarnOnceChecker(),
        ExportSchemaChecker(),
        FormatVersionChecker(),
    ]
