"""RPR002 — no process-global mutable provenance.

The PR 8 bug class: a module- or class-level name that hot-path code
rebinds or mutates is process-global state — two concurrent sessions
trample each other's view of it (the original incident was a
process-global ``last_backend_used``).  In the concurrency-bearing
packages (``engine``, ``serve``, ``sweep``, ``bist``, ``faults``) such
state is only legal when it is a ``threading.local`` slot or every write
sits inside a lock-guarded ``with`` region.

Three write shapes are flagged, all from *function* bodies (module-level
initialisation is fine — it runs once, under the import lock):

* rebinding a module global (``global NAME`` + assignment);
* mutating a module-level container (subscript/del/augmented assignment,
  or a mutator method such as ``.update()``/``.append()``);
* writing a class attribute through ``Cls.attr``/``type(self).attr``/
  ``self.__class__.attr``.

Module-level ``__getattr__``/``__dir__`` hooks are exempt: PEP 562 lazy
caching rebinds module globals by design, idempotently.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..importgraph import iter_eager_statements
from ..project import LintModule, Project
from .common import MUTATOR_METHODS, call_name, looks_like_lock

#: Package segments this rule applies to (the concurrency-bearing layers).
SCOPE_SEGMENTS = ("bist", "distrib", "engine", "faults", "serve", "sweep")

_MUTABLE_CONSTRUCTORS = frozenset({
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set",
})

_SIMPLE_STATEMENTS = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr,
                      ast.Return, ast.Delete, ast.Assert, ast.Raise)


def _is_mutable_value(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return call_name(value) in _MUTABLE_CONSTRUCTORS
    return False


def _constructed_by(value: Optional[ast.expr], names: Set[str]) -> bool:
    return isinstance(value, ast.Call) and call_name(value) in names


class _ModuleState:
    """Module-level facts RPR002 judges function bodies against."""

    def __init__(self, module: LintModule) -> None:
        self.mutables: Set[str] = set()
        self.thread_locals: Set[str] = set()
        self.locks: Set[str] = set()
        self.classes: Set[str] = set()
        self.exempt_functions: Set[str] = {"__getattr__", "__dir__"}
        for node in iter_eager_statements(module.tree.body):
            if isinstance(node, ast.ClassDef):
                self.classes.add(node.name)
                continue
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _constructed_by(value, {"local"}):
                    self.thread_locals.add(target.id)
                elif _constructed_by(value, {"Lock", "RLock"}):
                    self.locks.add(target.id)
                elif _is_mutable_value(value):
                    self.mutables.add(target.id)


class GlobalStateChecker:
    """Flag unguarded writes to module/class-level state in hot paths."""

    rule_id = "RPR002"
    title = ("no process-global mutable provenance: module/class state "
             "written from functions must be thread-local or lock-guarded")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not module.in_scope(SCOPE_SEGMENTS):
                continue
            state = _ModuleState(module)
            yield from self._check_module(module, state)

    def _check_module(self, module: LintModule,
                      state: _ModuleState) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name in state.exempt_functions:
                continue
            yield from self._walk(node, module, state, func=None,
                                  globals_declared=set(), locked=False)

    def _walk(self, node: ast.AST, module: LintModule, state: _ModuleState,
              func: Optional[str], globals_declared: Set[str],
              locked: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            declared = {name for sub in ast.walk(node)
                        if isinstance(sub, ast.Global) for name in sub.names}
            for child in node.body:
                yield from self._walk(child, module, state, node.name,
                                      declared, locked=False)
            return
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                yield from self._walk(child, module, state, func,
                                      globals_declared, locked)
            return
        if func is None:
            # Module/class level: initialisation, runs once under the
            # import lock — only function bodies are hot paths.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                    yield from self._walk(child, module, state, func,
                                          globals_declared, locked)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            guarded = locked or any(
                looks_like_lock(item.context_expr, state.locks)
                for item in node.items)
            for item in node.items:
                yield from self._scan_expressions(
                    item.context_expr, node.lineno, module, state, func,
                    locked)
            for child in node.body:
                yield from self._walk(child, module, state, func,
                                      globals_declared, guarded)
            return
        if isinstance(node, _SIMPLE_STATEMENTS):
            yield from self._scan_statement(node, module, state, func,
                                            globals_declared, locked)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                yield from self._walk(child, module, state, func,
                                      globals_declared, locked)
            elif isinstance(child, ast.expr):
                yield from self._scan_expressions(
                    child, node.lineno, module, state, func, locked)

    def _scan_statement(self, node: ast.stmt, module: LintModule,
                        state: _ModuleState, func: str,
                        globals_declared: Set[str],
                        locked: bool) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            yield from self._check_target(target, node.lineno, module, state,
                                          func, globals_declared, locked)
        yield from self._scan_expressions(node, node.lineno, module, state,
                                          func, locked)

    def _check_target(self, target: ast.expr, line: int, module: LintModule,
                      state: _ModuleState, func: str,
                      globals_declared: Set[str],
                      locked: bool) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(element, line, module, state,
                                              func, globals_declared, locked)
            return
        if locked:
            return
        if isinstance(target, ast.Name) and target.id in globals_declared:
            yield Finding(
                path=module.display_path, line=line, rule=self.rule_id,
                message=(f"function '{func}' rebinds module global "
                         f"'{target.id}' outside a lock-guarded region; "
                         f"use thread-local state or guard with a lock"))
        elif isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name) \
                and target.value.id in state.mutables:
            yield Finding(
                path=module.display_path, line=line, rule=self.rule_id,
                message=(f"function '{func}' mutates module-level container "
                         f"'{target.value.id}' outside a lock-guarded "
                         f"region"))
        else:
            described = _class_attr_target(target, state.classes)
            if described is not None:
                yield Finding(
                    path=module.display_path, line=line, rule=self.rule_id,
                    message=(f"function '{func}' writes class attribute "
                             f"'{described}' outside a lock-guarded region; "
                             f"class-level state is process-global"))

    def _scan_expressions(self, node: ast.AST, line: int, module: LintModule,
                          state: _ModuleState, func: str,
                          locked: bool) -> Iterator[Finding]:
        if locked:
            return
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call) \
                    or not isinstance(sub.func, ast.Attribute):
                continue
            base = sub.func.value
            if isinstance(base, ast.Name) and base.id in state.mutables \
                    and sub.func.attr in MUTATOR_METHODS:
                yield Finding(
                    path=module.display_path, line=getattr(sub, "lineno",
                                                           line),
                    rule=self.rule_id,
                    message=(f"function '{func}' mutates module-level "
                             f"container '{base.id}' via .{sub.func.attr}() "
                             f"outside a lock-guarded region"))


def _class_attr_target(target: ast.expr,
                       module_classes: Set[str]) -> Optional[str]:
    if not isinstance(target, ast.Attribute):
        return None
    base = target.value
    if isinstance(base, ast.Name) and base.id in module_classes:
        return f"{base.id}.{target.attr}"
    if isinstance(base, ast.Call) and isinstance(base.func, ast.Name) \
            and base.func.id == "type":
        return f"type(...).{target.attr}"
    if isinstance(base, ast.Attribute) and base.attr == "__class__":
        return f"__class__.{target.attr}"
    return None
