"""Small AST helpers the checkers share.

Everything here is deliberately syntactic: the checkers reason about what
the source *says*, not what it would do at runtime, so helpers extract
names, decorators, and literal strings conservatively — when a construct
is too dynamic to read statically, they return nothing and the rule stays
silent rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

#: Mutating container methods — calling one on a module-level container
#: from hot-path code is a cross-thread write (the RPR002 bug class).
MUTATOR_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update",
})


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``foo`` for ``foo()`` and ``a.b.foo()`` alike."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_call_name(node: ast.Call) -> Optional[str]:
    """``os.replace`` for ``os.replace(...)``; ``None`` when dynamic."""
    parts: List[str] = []
    func: ast.expr = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


def decorator_names(node: ast.AST) -> Set[str]:
    """Bare decorator names (``dataclass`` for ``@dataclass(frozen=True)``)."""
    names: Set[str] = set()
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def iter_functions(tree: ast.Module
                   ) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Every function/method in the module with its enclosing scope chain.

    Yields ``(function, parents)`` where ``parents`` is the tuple of
    enclosing ``ClassDef``/function nodes, outermost first (empty for
    module-level functions).
    """

    def walk(node: ast.AST,
             parents: Tuple[ast.AST, ...]) -> Iterator[
                 Tuple[ast.AST, Tuple[ast.AST, ...]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, parents
                yield from walk(child, parents + (child,))
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, parents + (child,))
            else:
                yield from walk(child, parents)

    yield from walk(tree, ())


def enclosing_class(parents: Tuple[ast.AST, ...]) -> Optional[ast.ClassDef]:
    """The nearest enclosing class of a function, if any."""
    for node in reversed(parents):
        if isinstance(node, ast.ClassDef):
            return node
    return None


def literal_text(node: ast.expr) -> str:
    """All string-literal fragments inside an expression, concatenated.

    Reads through f-strings, ``+`` concatenation, ``%``/``.format`` calls —
    enough to see the static words of a warning message without evaluating
    anything.  Dynamic parts contribute nothing.
    """
    fragments: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            fragments.append(sub.value)
    return " ".join(fragments)


def looks_like_lock(expr: ast.expr, module_locks: Set[str]) -> bool:
    """True when a ``with`` context expression is plausibly a lock.

    Module-level ``threading.Lock()``/``RLock()`` names are known exactly;
    beyond those, any name or attribute containing ``lock`` (``self._lock``,
    ``_REGISTRY_LOCK``) is accepted — the rule is about *unguarded* state,
    and a mis-named lock is a different review problem.
    """
    if isinstance(expr, ast.Name):
        return expr.id in module_locks or "lock" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    return False


def function_calls(node: ast.AST) -> Set[str]:
    """Every called name inside ``node`` (nested defs included)."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = call_name(sub)
            if name is not None:
                names.add(name)
    return names
