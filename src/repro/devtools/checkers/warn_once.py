"""RPR005 — warn-once registry usage for backend/kernel fallback.

Fallback warnings ("kernel tier 'gpu' unavailable, falling back to
'jit'") fire on hot paths: without deduplication a long sweep emits
thousands of identical lines, and with naive module-level deduplication
the seen-set is the RPR002 bug all over again.  The repo's answer is the
lock-guarded warn-once registry (``_claim_fallback_warning`` in
``repro.engine.vectorized``): claim first, warn only when the claim is
fresh.  This rule flags any ``warnings.warn`` whose static message text
talks about backend/kernel fallback from a function that never consults
a claim helper.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..findings import Finding
from ..project import LintModule, Project
from .common import call_name, function_calls, literal_text


def _is_warn_call(node: ast.Call) -> bool:
    return call_name(node) == "warn"


def _is_fallback_message(text: str) -> bool:
    lowered = text.lower()
    return "fall" in lowered and ("kernel" in lowered or "backend" in lowered)


def _claims_fallback(calls: set) -> bool:
    return any("claim_fallback" in name for name in calls)


class WarnOnceChecker:
    """Flag raw backend/kernel fallback warnings outside the registry."""

    rule_id = "RPR005"
    title = ("warn-once registry usage: backend/kernel fallback warnings "
             "must go through the lock-guarded claim helper")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: LintModule) -> Iterator[Finding]:
        for node, function in _calls_with_functions(module.tree):
            if not _is_warn_call(node) or not node.args:
                continue
            if not _is_fallback_message(literal_text(node.args[0])):
                continue
            if function is not None \
                    and _claims_fallback(function_calls(function)):
                continue
            where = f"in '{function.name}'" if function is not None \
                else "at module level"
            yield Finding(
                path=module.display_path, line=node.lineno,
                rule=self.rule_id,
                message=(f"raw backend/kernel fallback warning {where}; "
                         f"route through the warn-once claim helper "
                         f"(_claim_fallback_warning) so repeats dedupe "
                         f"without process-global state"))


def _calls_with_functions(tree: ast.Module
                          ) -> Iterator[Tuple[ast.Call,
                                              Optional[ast.FunctionDef]]]:
    """Every call in the module paired with its enclosing function."""

    def walk(node: ast.AST, function: Optional[ast.FunctionDef]
             ) -> Iterator[Tuple[ast.Call, Optional[ast.FunctionDef]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                yield child, function
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, child)
            else:
                yield from walk(child, function)

    yield from walk(tree, None)
