"""RPR006 — export-schema consistency.

Sweep records travel through four representations: dataclass fields,
``as_dict`` payloads, exporter columns, and journal lines.  Drift between
them is silent until an old journal refuses to load (the PR 8
entry-less-journal incident was exactly a schema-evolution gap).  Four
statically-checkable agreements:

* a dataclass ``as_dict`` building a *dict literal* must export every
  declared field's value — renaming keys (paper notation like ``P_r``)
  is presentation, a field that never reaches the payload is drift
  (``dataclasses.asdict`` is trivially consistent);
* a class with ``to_line``/``from_line`` must only *read* keys it also
  *writes* — a key parsed but never serialised can never round-trip;
* sibling ``*_KINDS`` registries in one module must agree on their key
  sets (a record kind without a case kind is unreachable);
* ``from_dict`` must not splat the raw mapping into the constructor
  (``cls(**data)``) — that crashes on any journal written before a field
  was added; route through the defaults-tolerant ``_record_from_dict``
  or ``dataclasses.fields`` instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..findings import Finding
from ..importgraph import iter_eager_statements
from ..project import LintModule, Project
from .common import call_name, decorator_names


def _literal_str_keys(node: ast.Dict) -> Optional[Set[str]]:
    keys: Set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            return None  # dynamic key — stay silent
    return keys


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node
    return None


def _field_names(cls: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            if "ClassVar" in ast.dump(node.annotation):
                continue
            if node.target.id.startswith("_"):
                continue
            names.append(node.target.id)
    return names


def _returned_dict_literals(function: ast.FunctionDef
                            ) -> Iterator[ast.Dict]:
    for node in ast.walk(function):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            yield node.value


def _self_attribute_reads(function: ast.FunctionDef) -> Set[str]:
    """Attributes read off ``self`` anywhere in ``function``."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            names.add(node.attr)
    return names


def _string_subscript_reads(function: ast.FunctionDef) -> Set[str]:
    """Keys read as ``mapping["key"]`` or ``mapping.get("key")``."""
    keys: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Load) \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            keys.add(node.slice.value)
        elif isinstance(node, ast.Call) and call_name(node) == "get" \
                and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            keys.add(node.args[0].value)
    return keys


def _written_dict_keys(function: ast.FunctionDef) -> Optional[Set[str]]:
    """Keys of every dict literal built inside ``function``."""
    keys: Set[str] = set()
    saw_literal = False
    for node in ast.walk(function):
        if isinstance(node, ast.Dict):
            literal = _literal_str_keys(node)
            if literal is None:
                return None  # dynamic construction — stay silent
            keys |= literal
            saw_literal = True
    return keys if saw_literal else None


class ExportSchemaChecker:
    """Flag schema drift between record fields, exports and journal lines."""

    rule_id = "RPR006"
    title = ("export-schema consistency: record fields, exporter columns "
             "and journal keys must agree, with defaults for old data")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_kind_registries(module)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(node, module)

    def _check_class(self, cls: ast.ClassDef,
                     module: LintModule) -> Iterator[Finding]:
        if "dataclass" in decorator_names(cls):
            yield from self._check_as_dict(cls, module)
            yield from self._check_from_dict(cls, module)
        yield from self._check_line_round_trip(cls, module)

    def _check_as_dict(self, cls: ast.ClassDef,
                       module: LintModule) -> Iterator[Finding]:
        as_dict = _method(cls, "as_dict")
        if as_dict is None:
            return
        if not any(_returned_dict_literals(as_dict)):
            return  # asdict(self)-style bodies are trivially consistent
        exported = _self_attribute_reads(as_dict)
        missing = sorted(name for name in _field_names(cls)
                         if name not in exported)
        if missing:
            yield Finding(
                path=module.display_path, line=as_dict.lineno,
                rule=self.rule_id,
                message=(f"'{cls.name}.as_dict' never exports field(s) "
                         f"{', '.join(missing)}; every declared field must "
                         f"reach the payload (rename keys if needed, but "
                         f"do not drop values)"))

    def _check_from_dict(self, cls: ast.ClassDef,
                         module: LintModule) -> Iterator[Finding]:
        from_dict = _method(cls, "from_dict")
        if from_dict is None:
            return
        args = [arg.arg for arg in from_dict.args.args]
        data_params = set(args[1:2])  # the mapping parameter after cls/self
        tolerant = any(
            "record_from_dict" in name or name == "fields"
            for name in _called_names(from_dict))
        if tolerant:
            return
        for node in ast.walk(from_dict):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg is None \
                        and isinstance(keyword.value, ast.Name) \
                        and keyword.value.id in data_params:
                    yield Finding(
                        path=module.display_path, line=node.lineno,
                        rule=self.rule_id,
                        message=(f"'{cls.name}.from_dict' splats the raw "
                                 f"mapping into the constructor; old "
                                 f"journals without newer fields will "
                                 f"crash — filter through dataclasses."
                                 f"fields or _record_from_dict"))
                    return

    def _check_line_round_trip(self, cls: ast.ClassDef,
                               module: LintModule) -> Iterator[Finding]:
        to_line = _method(cls, "to_line")
        from_line = _method(cls, "from_line")
        if to_line is None or from_line is None:
            return
        written = _written_dict_keys(to_line)
        if written is None:
            return
        read = _string_subscript_reads(from_line)
        orphaned = sorted(read - written)
        if orphaned:
            yield Finding(
                path=module.display_path, line=from_line.lineno,
                rule=self.rule_id,
                message=(f"'{cls.name}.from_line' reads key(s) "
                         f"{', '.join(orphaned)} that '{cls.name}.to_line' "
                         f"never writes; the round-trip cannot succeed"))

    def _check_kind_registries(self,
                               module: LintModule) -> Iterator[Finding]:
        registries: Dict[str, Set[str]] = {}
        lines: Dict[str, int] = {}
        for node in iter_eager_statements(module.tree.body):
            if not isinstance(node, ast.Assign) \
                    or not isinstance(node.value, ast.Dict):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id.endswith("_KINDS"):
                    keys = _literal_str_keys(node.value)
                    if keys is not None:
                        registries[target.id] = keys
                        lines[target.id] = node.lineno
        if len(registries) < 2:
            return
        names = sorted(registries)
        reference = names[0]
        for name in names[1:]:
            if registries[name] != registries[reference]:
                missing = sorted(registries[reference] - registries[name])
                extra = sorted(registries[name] - registries[reference])
                detail = "; ".join(part for part in (
                    f"missing: {', '.join(missing)}" if missing else "",
                    f"extra: {', '.join(extra)}" if extra else "") if part)
                yield Finding(
                    path=module.display_path, line=lines[name],
                    rule=self.rule_id,
                    message=(f"kind registry '{name}' disagrees with "
                             f"'{reference}' ({detail}); every record kind "
                             f"needs a matching case kind"))


def _called_names(function: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None:
                names.add(name)
    return names
