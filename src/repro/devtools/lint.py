"""The lint CLI: ``python -m repro.devtools.lint [paths]``.

Exit-code contract (shared with the sweep CLI and documented in
``docs/static_analysis.md``):

* ``0`` — every selected checker ran and nothing gates (clean tree, or
  findings fully covered by the explicit baseline);
* ``1`` — at least one gating finding;
* ``2`` — the run itself was unusable (bad arguments, missing paths,
  unparseable sources, malformed baseline), reported as ``error: ...``
  on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .checkers import all_checkers
from .findings import Baseline, BaselineError, render_human, render_json
from .framework import LintRunner
from .project import LintUsageError, load_project

#: The tree linted when no paths are given (from a repo checkout).
DEFAULT_TARGET = "src/repro"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=("Check the repro tree against its machine-enforced "
                     "invariants (lazy imports, thread-safe state, atomic "
                     "writes, dispatch provenance, warn-once fallback, "
                     "export schemas)."))
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help=f"files or directories to lint (default: {DEFAULT_TARGET})")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (json is the CI artifact)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="explicit baseline of accepted findings (default: none — "
             "every finding gates)")
    parser.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help="write a baseline suppressing the current findings, then "
             "exit 0 (a ratchet for landing new rules, not a fix)")
    parser.add_argument(
        "--rules", nargs="*", default=None, metavar="RULE",
        help="restrict the run to these rule ids; with no ids, list "
             "every known rule and exit")
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="glob of paths to skip (repeatable)")
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="also write the report to FILE (stdout is unchanged)")
    return parser


def _resolve_paths(paths: Sequence[Path]) -> List[Path]:
    if paths:
        return list(paths)
    default = Path(DEFAULT_TARGET)
    if not default.exists():
        raise LintUsageError(
            f"no paths given and default target '{DEFAULT_TARGET}' does "
            f"not exist here; pass the tree to lint explicitly")
    return [default]


def _list_rules(runner: LintRunner) -> str:
    lines = []
    for checker in sorted(runner.checkers, key=lambda c: c.rule_id):
        lines.append(f"{checker.rule_id}  {checker.title}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    runner = LintRunner(all_checkers())
    if options.rules is not None and not options.rules:
        print(_list_rules(runner))
        return EXIT_CLEAN
    try:
        runner = runner.select(options.rules)
        targets = _resolve_paths(options.paths)
        project = load_project(targets, exclude=options.exclude)
        baseline = Baseline.load(options.baseline) \
            if options.baseline is not None else Baseline.empty()
    except (LintUsageError, BaselineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    findings = runner.run(project)
    if options.write_baseline is not None:
        import json

        document = Baseline.document(findings)
        options.write_baseline.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"wrote baseline with {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to "
              f"{options.write_baseline}")
        return EXIT_CLEAN
    gating, suppressed = baseline.split(findings)
    if options.format == "json":
        report = render_json(gating, suppressed, len(project),
                             runner.rule_ids())
    else:
        report = render_human(gating, suppressed, len(project))
    print(report)
    if options.output is not None:
        options.output.write_text(report + "\n", encoding="utf-8")
    return EXIT_FINDINGS if gating else EXIT_CLEAN


def console_main() -> None:
    """Entry point for the ``repro-lint`` console script."""
    raise SystemExit(main())


if __name__ == "__main__":
    raise SystemExit(main())
